//! Declarative GPU architecture descriptions.
//!
//! The paper's central observation (§II, Table I) is that latency *structure*
//! varies by generation: which cache levels exist, which address spaces each
//! serves (Tesla: uncached global; Kepler: L1 local-only; Maxwell: no L1),
//! and how deep the queues between them are. An [`ArchDesc`] captures that
//! structure as data — an ordered list of [`LevelDesc`] entries plus SM,
//! fabric and DRAM timing — so a new generation is a new table, not new
//! `match` arms scattered across the simulator.
//!
//! The `gpu-sim` crate constructs its `GpuConfig` *from* a description
//! (`GpuConfig::from_arch`) and can reconstruct the description from any
//! config (`GpuConfig::arch_desc`); the two forms are interconvertible.
//! Validation lives here ([`ArchDesc::validate`], typed [`ConfigError`]),
//! as do the generic level-list walks for unloaded latencies
//! ([`ArchDesc::unloaded_latency`]) and the derivation of the paper's
//! Figure-1 stage labels ([`ArchDesc::fig1_stage_labels`]).

use std::fmt;

use gpu_icnt::IcntConfig;
use gpu_mem::{CacheConfig, DramSched, DramTiming, MshrConfig, PipelineSpace, Replacement};
use gpu_snapshot::{Decoder, Encoder, SnapshotError, StableHasher};

/// Version tag of the [`ArchDesc`] snapshot frame. Bumped whenever the
/// encoded field set changes; [`ArchDesc::decode`] rejects mismatches with a
/// typed error instead of misreading the stream.
///
/// Version 2 adds the modern-generation geometry: an optional per-level
/// sector size ([`CacheGeom::sector_bytes`]) and a per-level slice count
/// ([`LevelDesc::slices`]). Version-1 frames are still accepted and
/// up-convert losslessly (unsectored = no sector, one slice); any other
/// version is rejected with a typed error.
pub const ARCH_DESC_VERSION: u32 = 2;

/// Upper bound on [`LevelDesc::slices`]. Static so the per-slice sanitizer
/// queue labels can live in `&'static str` tables (the violation codec
/// round-trips labels by table index).
pub const MAX_L2_SLICES: usize = 8;

/// Warp scheduling policy of an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Loose round-robin: rotate priority one slot past the last issuer.
    Lrr,
    /// Greedy-then-oldest: keep issuing the same warp until it stalls, then
    /// fall back to the oldest ready warp.
    Gto,
}

/// How a cache level handles stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write-through, no-allocate, write-evict: every store goes to DRAM
    /// (the workspace default, and the policy the Table-I calibration
    /// assumes).
    WriteThrough,
    /// Write-back with write-allocate (no fetch-on-write): stores complete
    /// at the cache and dirty victims are written back on eviction — closer
    /// to real Fermi's L2 and available as an ablation (experiment E8).
    WriteBack,
}

/// The position a level occupies in the memory pipeline. The kind fixes a
/// level's structural role (where its queues sit, which stamps delimit it);
/// everything tunable about it lives in its [`LevelDesc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelKind {
    /// Per-SM first-level cache, probed before the interconnect.
    L1,
    /// Per-partition second-level slice behind the ROP pipeline.
    L2,
    /// The DRAM channel front: controller queue + banked timing. Always the
    /// last level; never carries a tag array.
    DramFront,
}

impl LevelKind {
    /// Every kind, in pipeline order.
    pub const ALL: [LevelKind; 3] = [LevelKind::L1, LevelKind::L2, LevelKind::DramFront];

    /// Display label used in error messages and derived stage names.
    pub const fn label(self) -> &'static str {
        match self {
            LevelKind::L1 => "L1",
            LevelKind::L2 => "L2",
            LevelKind::DramFront => "DRAM",
        }
    }

    /// Sanitizer label of the bounded queue feeding this level (the L1's
    /// miss queue toward the interconnect, the L2's input queue from the
    /// ROP, the DRAM controller queue). These are `&'static str` so the
    /// sanitizer's violation codec can round-trip them by table index.
    pub const fn queue_label(self) -> &'static str {
        match self {
            LevelKind::L1 => "miss",
            LevelKind::L2 => "l2-input",
            LevelKind::DramFront => "dram",
        }
    }

    /// Sanitizer label of this level's hit-return pipe.
    pub const fn hit_pipe_label(self) -> &'static str {
        match self {
            LevelKind::L1 => "l1-hit",
            LevelKind::L2 => "l2-hit",
            LevelKind::DramFront => "dram-return",
        }
    }

    /// Sanitizer label of the input queue of one slice of this level. Only
    /// the L2 slices ([`MAX_L2_SLICES`] at most), so only it has per-slice
    /// labels; a single-slice level keeps the legacy [`Self::queue_label`]
    /// so existing traces and goldens are untouched.
    pub const fn sliced_queue_label(self, slice: usize) -> &'static str {
        const LABELS: [&str; MAX_L2_SLICES] = [
            "l2-input.0",
            "l2-input.1",
            "l2-input.2",
            "l2-input.3",
            "l2-input.4",
            "l2-input.5",
            "l2-input.6",
            "l2-input.7",
        ];
        match self {
            LevelKind::L2 if slice < MAX_L2_SLICES => LABELS[slice],
            _ => self.queue_label(),
        }
    }

    /// Sanitizer label of the hit-return pipe of one slice of this level
    /// (see [`Self::sliced_queue_label`]).
    pub const fn sliced_hit_pipe_label(self, slice: usize) -> &'static str {
        const LABELS: [&str; MAX_L2_SLICES] = [
            "l2-hit.0", "l2-hit.1", "l2-hit.2", "l2-hit.3", "l2-hit.4", "l2-hit.5", "l2-hit.6",
            "l2-hit.7",
        ];
        match self {
            LevelKind::L2 if slice < MAX_L2_SLICES => LABELS[slice],
            _ => self.hit_pipe_label(),
        }
    }

    fn tag(self) -> u8 {
        match self {
            LevelKind::L1 => 0,
            LevelKind::L2 => 1,
            LevelKind::DramFront => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        match tag {
            0 => Ok(LevelKind::L1),
            1 => Ok(LevelKind::L2),
            2 => Ok(LevelKind::DramFront),
            _ => Err(SnapshotError::InvalidValue("unknown level-kind tag")),
        }
    }
}

impl fmt::Display for LevelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which pipeline address spaces a cache level serves — the per-generation
/// routing table at the heart of the paper's §II discussion (Fermi L1:
/// global+local; Kepler L1: local only; GK110 read-only path: global too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Routing {
    /// Serve global-space accesses?
    pub global: bool,
    /// Serve local-space accesses?
    pub local: bool,
}

impl Routing {
    /// Serves every pipeline space.
    pub const ALL: Routing = Routing {
        global: true,
        local: true,
    };
    /// Serves nothing (the routing of an absent cache).
    pub const NONE: Routing = Routing {
        global: false,
        local: false,
    };

    /// Returns `true` if accesses of `space` are routed through this level.
    pub fn serves(self, space: PipelineSpace) -> bool {
        match space {
            PipelineSpace::Global => self.global,
            PipelineSpace::Local => self.local,
        }
    }
}

/// Tag-array geometry of a cache level: the part of a [`LevelDesc`] that
/// exists only when the level actually has a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeom {
    /// Set/way/line geometry.
    pub cache: CacheConfig,
    /// MSHR table (entries × merge depth).
    pub mshr: MshrConfig,
    /// Hit latency: probe-to-data, in cycles.
    pub hit_latency: u64,
    /// Fill/tag granularity in bytes. `None` models the classic unsectored
    /// line (fills move whole lines — equivalently, one sector per line);
    /// `Some(s)` models a sectored cache à la Pascal and later, where a miss
    /// only fetches the `s`-byte sectors a warp touched, tags track per-sector
    /// validity, and miss traffic is counted in sectors. Must be a power of
    /// two strictly dividing the line size.
    pub sector_bytes: Option<u64>,
}

impl CacheGeom {
    /// The memory-transaction granule of this level: the sector size when
    /// sectored, else the full line.
    pub fn granule(&self) -> u64 {
        self.sector_bytes.unwrap_or(self.cache.line_size)
    }

    /// Sectors per line (1 for an unsectored cache).
    pub fn sectors_per_line(&self) -> usize {
        match self.sector_bytes {
            Some(s) if s > 0 => (self.cache.line_size / s) as usize,
            _ => 1,
        }
    }
}

/// One level of the memory hierarchy. The simulator instantiates the level's
/// structural skeleton (its bounded queue, its hit pipe) whether or not the
/// tag array exists — a Tesla partition still has an input queue in front of
/// its DRAM path — so `queue` and the labels are always meaningful, while
/// `geom` and `routing` matter only for levels that cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelDesc {
    /// Structural role of this level.
    pub kind: LevelKind,
    /// Tag array, MSHRs and hit latency; `None` for generations without
    /// this cache (and always `None` for the DRAM front).
    pub geom: Option<CacheGeom>,
    /// Capacity of the bounded queue feeding this level: the L1's miss
    /// queue toward the interconnect (the paper's `L1toICNT` queue), the
    /// L2's input queue behind the ROP, the DRAM controller queue.
    pub queue: usize,
    /// Address spaces this level serves ([`Routing::NONE`] when `geom` is
    /// absent).
    pub routing: Routing,
    /// Store handling at this level (meaningful for the L2).
    pub write_policy: WritePolicy,
    /// Number of independent slices this level is hash-interleaved across
    /// (1 = the classic monolithic bank). Only the L2 may exceed 1, up to
    /// [`MAX_L2_SLICES`]; each slice owns its own input queue, tag array,
    /// MSHR table and hit pipe behind the partition's shared ROP, and `geom`
    /// then describes ONE slice (total capacity = `slices` × slice capacity).
    /// Addresses map to slices via [`slice_of`].
    pub slices: usize,
}

impl LevelDesc {
    /// The MSHR configuration to size this level's table with: the real one
    /// when a cache exists, or a 1×1 placeholder for the always-empty table
    /// of a cacheless level (the simulator instantiates the table either
    /// way so the fill path is uniform).
    pub fn mshr_config(&self) -> MshrConfig {
        self.geom.map_or(
            MshrConfig {
                entries: 1,
                max_merged: 1,
            },
            |g| g.mshr,
        )
    }

    /// This level's routing, masked by cache presence: an absent cache
    /// serves nothing regardless of what the routing table says.
    pub fn effective_routing(&self) -> Routing {
        if self.geom.is_some() {
            self.routing
        } else {
            Routing::NONE
        }
    }
}

/// SM core timing and geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmDesc {
    /// Threads per warp (≤ 32).
    pub warp_size: u32,
    /// Warp slots per SM.
    pub max_warps: usize,
    /// Maximum concurrent CTAs per SM.
    pub max_ctas: usize,
    /// Instructions issued per SM per cycle (distinct warps).
    pub issue_width: usize,
    /// Warp scheduler policy.
    pub scheduler: SchedPolicy,
    /// Integer-ALU result latency.
    pub alu_latency: u64,
    /// FP32 result latency.
    pub fp_latency: u64,
    /// SFU (div/transcendental) result latency.
    pub sfu_latency: u64,
    /// Shared-memory access latency.
    pub shared_latency: u64,
    /// Fixed in-SM front-end time for a memory access (the head of the
    /// paper's "SM Base" component).
    pub base_latency: u64,
    /// Capacity of the in-SM memory front-end pipeline.
    pub lsu_queue: usize,
    /// Response-side writeback latency at the SM (tail of "Fetch2SM").
    pub fill_latency: u64,
}

/// Interconnect and ROP timing between the SMs and the partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricDesc {
    /// Crossbar configuration (applied to both request and reply networks).
    pub icnt: IcntConfig,
    /// Fixed raster-operations pipeline latency in front of the L2.
    pub rop_latency: u64,
    /// ROP pipeline slot capacity.
    pub rop_queue: usize,
}

/// DRAM channel timing and the partition-interleaved address map geometry.
/// The controller queue capacity lives in the [`LevelKind::DramFront`]
/// level's `queue`, with the rest of the hierarchy's queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDesc {
    /// Channel timing (per partition).
    pub timing: DramTiming,
    /// Request scheduling algorithm.
    pub sched: DramSched,
    /// Number of memory partitions.
    pub num_partitions: usize,
    /// Partition interleave chunk in bytes.
    pub partition_chunk: u64,
    /// DRAM banks per partition.
    pub banks: usize,
    /// DRAM row size in bytes.
    pub row_bytes: u64,
}

/// Complete declarative description of one GPU generation.
///
/// # Examples
///
/// Walk a description's hierarchy:
///
/// ```
/// use gpu_arch::{ArchDesc, LevelKind};
/// # fn demo(desc: &ArchDesc) {
/// for level in &desc.levels {
///     println!("{}: queue {}", level.kind, level.queue);
/// }
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArchDesc {
    /// Human-readable name ("GF100-like (Fermi)", …) used in reports.
    /// Excluded from [`ArchDesc::hash_desc`] — renaming a generation must
    /// not invalidate cached results.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Cache-line / memory-transaction size in bytes, shared by every level.
    pub line_size: u64,
    /// SM core timing.
    pub sm: SmDesc,
    /// The memory hierarchy, in pipeline order: L1, L2, DRAM front. Levels
    /// whose cache a generation lacks keep their entry (the structural
    /// queues still exist) with `geom: None`.
    pub levels: Vec<LevelDesc>,
    /// Interconnect and ROP timing.
    pub fabric: FabricDesc,
    /// DRAM channel timing and address-map geometry.
    pub mem: MemDesc,
}

impl ArchDesc {
    /// The level of the given kind, if the description lists it.
    pub fn level(&self, kind: LevelKind) -> Option<&LevelDesc> {
        self.levels.iter().find(|l| l.kind == kind)
    }

    /// Returns `true` if the level of `kind` exists, has a cache, and its
    /// routing serves `space`.
    pub fn serves(&self, kind: LevelKind, space: PipelineSpace) -> bool {
        self.level(kind)
            .is_some_and(|l| l.effective_routing().serves(space))
    }

    /// The hierarchy levels at which an access of `space` can be *served*
    /// (hit, or reach DRAM), in pipeline order: the L1 when it exists and
    /// its routing covers the space (and the access does not bypass it, as
    /// atomics do), the L2 when it carries a tag array, and always the DRAM
    /// front. This is the static counterpart of the per-request level span
    /// the tracer records — a traced request can only ever be served at one
    /// of these levels.
    pub fn feasible_levels(&self, space: PipelineSpace, bypass_l1: bool) -> Vec<LevelKind> {
        let mut out = Vec::with_capacity(3);
        if !bypass_l1 && self.serves(LevelKind::L1, space) {
            out.push(LevelKind::L1);
        }
        if self.level(LevelKind::L2).is_some_and(|l| l.geom.is_some()) {
            out.push(LevelKind::L2);
        }
        out.push(LevelKind::DramFront);
        out
    }

    /// The first level an access of `space` can be served at — the shallowest
    /// entry of [`ArchDesc::feasible_levels`].
    pub fn entry_level(&self, space: PipelineSpace, bypass_l1: bool) -> LevelKind {
        self.feasible_levels(space, bypass_l1)[0]
    }

    /// Analytic unloaded-latency floor for an access of `space`: the
    /// [`ArchDesc::unloaded_latency`] of its entry level (the best case — a
    /// hit at the first level that can serve it). No traced access of this
    /// space can complete faster.
    pub fn unloaded_floor(&self, space: PipelineSpace, bypass_l1: bool) -> u64 {
        self.unloaded_latency(self.entry_level(space, bypass_l1))
            .expect("entry level is always servable")
    }

    /// The microbenchmark transform: the same machine shrunk to one SM and
    /// one partition. Every pipeline latency, queue depth and cache
    /// geometry is untouched, so a single-threaded pointer chase measures
    /// identical per-access latencies while the simulator does a fraction
    /// of the work. This is the documented relationship between
    /// `ArchPreset::config()` and `ArchPreset::config_microbench()`: one
    /// description, two machine sizes.
    pub fn microbench(&self) -> ArchDesc {
        let mut d = self.clone();
        d.num_sms = 1;
        d.mem.num_partitions = 1;
        d
    }

    /// The machine-wide memory-transaction granule: the smallest sector any
    /// cached level declares, or the full line when nothing is sectored.
    /// The coalescer, the MSHR keyspace and per-warp miss-traffic accounting
    /// all work at this granularity, so an unsectored machine behaves
    /// exactly as before (granule == line).
    pub fn transaction_granule(&self) -> u64 {
        self.levels
            .iter()
            .filter_map(|l| l.geom.as_ref().and_then(|g| g.sector_bytes))
            .min()
            .unwrap_or(self.line_size)
    }

    /// Validates structural invariants, returning the first problem found
    /// in a fixed order: machine geometry, SM front-end, fabric queues,
    /// then each level in pipeline order.
    ///
    /// # Errors
    ///
    /// Returns the violated invariant as a typed [`ConfigError`] (its
    /// `Display` text names the problem).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.validate_topology()?;
        if self.num_sms == 0 {
            return Err(ConfigError::NoSms);
        }
        if self.mem.num_partitions == 0 {
            return Err(ConfigError::NoPartitions);
        }
        if !(1..=32).contains(&self.sm.warp_size) {
            return Err(ConfigError::WarpSize);
        }
        if self.sm.issue_width == 0 {
            return Err(ConfigError::IssueWidth);
        }
        if self.sm.max_warps == 0 {
            return Err(ConfigError::NoWarpSlots);
        }
        if self.sm.max_ctas == 0 {
            return Err(ConfigError::NoCtaSlots);
        }
        if self.line_size == 0 || !self.line_size.is_power_of_two() {
            return Err(ConfigError::LineSize);
        }
        // The coalescer emits up to warp_size + 1 transactions per access
        // and the issue stage requires that much free space, so a smaller
        // front-end pipe could never issue a memory instruction.
        if self.sm.lsu_queue <= self.sm.warp_size as usize {
            return Err(ConfigError::LsuQueue);
        }
        if self.fabric.rop_queue == 0 {
            return Err(ConfigError::RopQueue);
        }
        if self.fabric.icnt.output_queue == 0 {
            return Err(ConfigError::IcntQueue);
        }
        // A zero-capacity queue is a pipeline stage that can never hold a
        // request: the machine deadlocks. The DRAM front's queue is checked
        // first (matching the historical check order); cache levels follow
        // in pipeline order.
        let dram = self.level(LevelKind::DramFront).expect("topology checked");
        if dram.queue == 0 {
            return Err(ConfigError::LevelQueue(LevelKind::DramFront));
        }
        for level in &self.levels {
            let Some(geom) = &level.geom else { continue };
            if geom.cache.line_size != self.line_size {
                return Err(ConfigError::LevelLineSize(level.kind));
            }
            if level.queue == 0 {
                return Err(ConfigError::LevelQueue(level.kind));
            }
            if geom.mshr.entries == 0 {
                return Err(ConfigError::MshrEntries(level.kind));
            }
            if geom.mshr.max_merged == 0 {
                return Err(ConfigError::MshrMergeDepth(level.kind));
            }
            if let Some(sector) = geom.sector_bytes {
                // An unsectored line is expressed as `None`, so a declared
                // sector must be a strict subdivision of the line.
                if !sector.is_power_of_two() || sector >= geom.cache.line_size {
                    return Err(ConfigError::SectorSize(level.kind));
                }
            }
        }
        for level in &self.levels {
            if level.slices == 0 || level.slices > MAX_L2_SLICES {
                return Err(ConfigError::LevelSlices(level.kind));
            }
            if level.slices > 1 && level.kind != LevelKind::L2 {
                return Err(ConfigError::SlicedLevel(level.kind));
            }
        }
        // Adjacent cache levels must be ordered: a hit further out can
        // never be faster than a hit closer in.
        let caches: Vec<&LevelDesc> = self.levels.iter().filter(|l| l.geom.is_some()).collect();
        for pair in caches.windows(2) {
            let (upper, lower) = (pair[0], pair[1]);
            let (ug, lg) = (upper.geom.expect("filtered"), lower.geom.expect("filtered"));
            if ug.hit_latency >= lg.hit_latency {
                return Err(ConfigError::LevelOrdering {
                    upper: upper.kind,
                    upper_hit: ug.hit_latency,
                    lower: lower.kind,
                    lower_hit: lg.hit_latency,
                });
            }
        }
        Ok(())
    }

    /// The level list must name each kind exactly once, in pipeline order,
    /// and the DRAM front can never carry a tag array — the shape the
    /// simulator's component skeleton is built around.
    fn validate_topology(&self) -> Result<(), ConfigError> {
        if self.levels.len() != LevelKind::ALL.len()
            || self
                .levels
                .iter()
                .zip(LevelKind::ALL)
                .any(|(l, k)| l.kind != k)
        {
            return Err(ConfigError::UnsupportedTopology(
                "level list must name L1, L2 and the DRAM front exactly once, in pipeline order",
            ));
        }
        let dram = self.level(LevelKind::DramFront).expect("length checked");
        if dram.geom.is_some() {
            return Err(ConfigError::UnsupportedTopology(
                "the DRAM front never carries a tag array",
            ));
        }
        Ok(())
    }

    // ---- generic latency walks --------------------------------------------

    /// Analytic unloaded (zero-contention) latency of a hit at the level of
    /// the given kind, as one generic walk over the level list:
    ///
    /// - The first (SM-side) level resolves hits locally over the direct
    ///   writeback path: `base + hit`.
    /// - A miss is detected by a same-cycle tag probe, and the miss queue
    ///   drains into interconnect injection without a residency cycle, so
    ///   leaving the SM costs the fabric alone: request traversal + ROP +
    ///   reply traversal.
    /// - Every partition-side level is entered through a bounded queue that
    ///   costs one cycle of residency whether or not its tag array exists
    ///   (a Tesla partition still queues in front of its DRAM path).
    /// - The target level's access cost is its hit latency — or, for the
    ///   DRAM front, the steady-state row-*conflict* path plus the data
    ///   burst (a pointer-chase ring revisits each bank with a new row).
    /// - Responses re-enter the SM through the fill stage.
    ///
    /// Returns `None` when the target level has no cache (and is not the
    /// DRAM front), or is not listed.
    pub fn unloaded_latency(&self, target: LevelKind) -> Option<u64> {
        let mut levels = self.levels.iter();
        let mut cost = self.sm.base_latency;
        if let Some(first) = levels.next() {
            if first.kind == target {
                return Some(cost + first.geom?.hit_latency);
            }
        }
        cost += 2 * self.fabric.icnt.latency + self.fabric.rop_latency;
        for level in levels {
            cost += 1;
            if level.kind != target {
                continue;
            }
            let access = match level.kind {
                LevelKind::DramFront => self.mem.timing.row_conflict() + self.mem.timing.burst,
                _ => level.geom?.hit_latency,
            };
            return Some(cost + access + self.sm.fill_latency);
        }
        None
    }

    /// The eight Figure-1 stage labels, derived from the level list: the
    /// SM-side level names the injection queue, the partition-side levels
    /// name the queue-to-queue hops and the DRAM scheduling/access stages.
    /// For every paper generation this yields exactly the paper's labels
    /// ("SM Base", "L1toICNT", …, "Fetch2SM") because the structural
    /// skeleton — and therefore the level list — is the same; a description
    /// with a different hierarchy would label its stages after its own
    /// levels.
    pub fn fig1_stage_labels(&self) -> [String; 8] {
        let name = |kind: LevelKind| {
            self.level(kind)
                .map_or(kind.label(), |l| l.kind.label())
                .to_string()
        };
        let (l1, l2, dram) = (
            name(LevelKind::L1),
            name(LevelKind::L2),
            name(LevelKind::DramFront),
        );
        [
            "SM Base".to_string(),
            format!("{l1}toICNT"),
            "ICNTtoROP".to_string(),
            format!("ROPto{l2}Q"),
            format!("{l2}Qto{dram}Q"),
            format!("{dram}(QtoSch)"),
            format!("{dram}(SchToA)"),
            "Fetch2SM".to_string(),
        ]
    }

    // ---- hashing and snapshot codec ---------------------------------------

    /// Feeds every timing- and structure-relevant field into `h`, in a
    /// fixed order. Deliberately excludes the display `name`: renaming a
    /// generation must not invalidate cached results keyed on the
    /// description.
    pub fn hash_desc(&self, h: &mut StableHasher) {
        h.usize(self.num_sms);
        h.u64(self.line_size);
        h.u32(self.sm.warp_size);
        h.usize(self.sm.max_warps);
        h.usize(self.sm.max_ctas);
        h.usize(self.sm.issue_width);
        h.u8(sched_tag(self.sm.scheduler));
        h.u64(self.sm.alu_latency);
        h.u64(self.sm.fp_latency);
        h.u64(self.sm.sfu_latency);
        h.u64(self.sm.shared_latency);
        h.u64(self.sm.base_latency);
        h.usize(self.sm.lsu_queue);
        h.u64(self.sm.fill_latency);
        h.usize(self.levels.len());
        for level in &self.levels {
            h.u8(level.kind.tag());
            h.bool(level.geom.is_some());
            if let Some(g) = &level.geom {
                h.usize(g.cache.sets);
                h.usize(g.cache.ways);
                h.u64(g.cache.line_size);
                h.u8(replacement_tag(g.cache.replacement));
                h.usize(g.mshr.entries);
                h.usize(g.mshr.max_merged);
                h.u64(g.hit_latency);
            }
            h.usize(level.queue);
            h.bool(level.routing.global);
            h.bool(level.routing.local);
            h.u8(write_policy_tag(level.write_policy));
            // The v2 geometry contributes to the digest only when it
            // deviates from the v1 defaults (unsectored, one slice), so
            // every pre-sector description keeps its historical hash and
            // the preset goldens stay bit-identical. The tag bytes keep a
            // sectored stream from aliasing an unsectored one.
            if let Some(sector) = level.geom.as_ref().and_then(|g| g.sector_bytes) {
                h.u8(0xA1);
                h.u64(sector);
            }
            if level.slices > 1 {
                h.u8(0xA2);
                h.usize(level.slices);
            }
        }
        h.u64(self.fabric.icnt.latency);
        h.usize(self.fabric.icnt.output_queue);
        h.usize(self.fabric.icnt.inject_per_src);
        h.usize(self.fabric.icnt.eject_per_dst);
        h.u64(self.fabric.rop_latency);
        h.usize(self.fabric.rop_queue);
        h.u64(self.mem.timing.t_rcd);
        h.u64(self.mem.timing.t_rp);
        h.u64(self.mem.timing.t_cl);
        h.u64(self.mem.timing.burst);
        h.u8(dram_sched_tag(self.mem.sched));
        h.usize(self.mem.num_partitions);
        h.u64(self.mem.partition_chunk);
        h.usize(self.mem.banks);
        h.u64(self.mem.row_bytes);
    }

    /// Serializes the description as a self-versioned frame (the
    /// [`ARCH_DESC_VERSION`] tag first, then every field).
    pub fn encode_state(&self, e: &mut Encoder) {
        e.u32(ARCH_DESC_VERSION);
        e.str(&self.name);
        e.usize(self.num_sms);
        e.u64(self.line_size);
        e.u32(self.sm.warp_size);
        e.usize(self.sm.max_warps);
        e.usize(self.sm.max_ctas);
        e.usize(self.sm.issue_width);
        e.u8(sched_tag(self.sm.scheduler));
        e.u64(self.sm.alu_latency);
        e.u64(self.sm.fp_latency);
        e.u64(self.sm.sfu_latency);
        e.u64(self.sm.shared_latency);
        e.u64(self.sm.base_latency);
        e.usize(self.sm.lsu_queue);
        e.u64(self.sm.fill_latency);
        e.usize(self.levels.len());
        for level in &self.levels {
            e.u8(level.kind.tag());
            match &level.geom {
                None => e.bool(false),
                Some(g) => {
                    e.bool(true);
                    e.usize(g.cache.sets);
                    e.usize(g.cache.ways);
                    e.u64(g.cache.line_size);
                    e.u8(replacement_tag(g.cache.replacement));
                    e.usize(g.mshr.entries);
                    e.usize(g.mshr.max_merged);
                    e.u64(g.hit_latency);
                    e.bool(g.sector_bytes.is_some());
                    if let Some(sector) = g.sector_bytes {
                        e.u64(sector);
                    }
                }
            }
            e.usize(level.queue);
            e.bool(level.routing.global);
            e.bool(level.routing.local);
            e.u8(write_policy_tag(level.write_policy));
            e.usize(level.slices);
        }
        e.u64(self.fabric.icnt.latency);
        e.usize(self.fabric.icnt.output_queue);
        e.usize(self.fabric.icnt.inject_per_src);
        e.usize(self.fabric.icnt.eject_per_dst);
        e.u64(self.fabric.rop_latency);
        e.usize(self.fabric.rop_queue);
        e.u64(self.mem.timing.t_rcd);
        e.u64(self.mem.timing.t_rp);
        e.u64(self.mem.timing.t_cl);
        e.u64(self.mem.timing.burst);
        e.u8(dram_sched_tag(self.mem.sched));
        e.usize(self.mem.num_partitions);
        e.u64(self.mem.partition_chunk);
        e.usize(self.mem.banks);
        e.u64(self.mem.row_bytes);
    }

    /// Decodes a description written by [`ArchDesc::encode_state`].
    ///
    /// # Errors
    ///
    /// Rejects unknown frame versions and enum tags (typed
    /// [`SnapshotError`], never a panic) and propagates decoder errors.
    pub fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        let version = d.u32()?;
        if version != 1 && version != ARCH_DESC_VERSION {
            return Err(SnapshotError::InvalidValue(
                "unsupported architecture-description frame version",
            ));
        }
        let name = d.str()?.to_string();
        let num_sms = d.usize()?;
        let line_size = d.u64()?;
        let sm = SmDesc {
            warp_size: d.u32()?,
            max_warps: d.usize()?,
            max_ctas: d.usize()?,
            issue_width: d.usize()?,
            scheduler: sched_from_tag(d.u8()?)?,
            alu_latency: d.u64()?,
            fp_latency: d.u64()?,
            sfu_latency: d.u64()?,
            shared_latency: d.u64()?,
            base_latency: d.u64()?,
            lsu_queue: d.usize()?,
            fill_latency: d.u64()?,
        };
        let mut levels = Vec::new();
        for _ in 0..d.usize()? {
            let kind = LevelKind::from_tag(d.u8()?)?;
            let geom = if d.bool()? {
                Some(CacheGeom {
                    cache: CacheConfig {
                        sets: d.usize()?,
                        ways: d.usize()?,
                        line_size: d.u64()?,
                        replacement: replacement_from_tag(d.u8()?)?,
                    },
                    mshr: MshrConfig {
                        entries: d.usize()?,
                        max_merged: d.usize()?,
                    },
                    hit_latency: d.u64()?,
                    // v1 frames predate sectoring: up-convert to the
                    // unsectored line they always meant.
                    sector_bytes: if version >= 2 {
                        if d.bool()? {
                            Some(d.u64()?)
                        } else {
                            None
                        }
                    } else {
                        None
                    },
                })
            } else {
                None
            };
            levels.push(LevelDesc {
                kind,
                geom,
                queue: d.usize()?,
                routing: Routing {
                    global: d.bool()?,
                    local: d.bool()?,
                },
                write_policy: write_policy_from_tag(d.u8()?)?,
                // v1 levels are always monolithic single-bank levels.
                slices: if version >= 2 { d.usize()? } else { 1 },
            });
        }
        let fabric = FabricDesc {
            icnt: IcntConfig {
                latency: d.u64()?,
                output_queue: d.usize()?,
                inject_per_src: d.usize()?,
                eject_per_dst: d.usize()?,
            },
            rop_latency: d.u64()?,
            rop_queue: d.usize()?,
        };
        let mem = MemDesc {
            timing: DramTiming {
                t_rcd: d.u64()?,
                t_rp: d.u64()?,
                t_cl: d.u64()?,
                burst: d.u64()?,
            },
            sched: dram_sched_from_tag(d.u8()?)?,
            num_partitions: d.usize()?,
            partition_chunk: d.u64()?,
            banks: d.usize()?,
            row_bytes: d.u64()?,
        };
        Ok(ArchDesc {
            name,
            num_sms,
            line_size,
            sm,
            levels,
            fabric,
            mem,
        })
    }
}

fn sched_tag(s: SchedPolicy) -> u8 {
    match s {
        SchedPolicy::Lrr => 0,
        SchedPolicy::Gto => 1,
    }
}

fn sched_from_tag(tag: u8) -> Result<SchedPolicy, SnapshotError> {
    match tag {
        0 => Ok(SchedPolicy::Lrr),
        1 => Ok(SchedPolicy::Gto),
        _ => Err(SnapshotError::InvalidValue("unknown scheduler tag")),
    }
}

fn write_policy_tag(w: WritePolicy) -> u8 {
    match w {
        WritePolicy::WriteThrough => 0,
        WritePolicy::WriteBack => 1,
    }
}

fn write_policy_from_tag(tag: u8) -> Result<WritePolicy, SnapshotError> {
    match tag {
        0 => Ok(WritePolicy::WriteThrough),
        1 => Ok(WritePolicy::WriteBack),
        _ => Err(SnapshotError::InvalidValue("unknown write-policy tag")),
    }
}

fn replacement_tag(r: Replacement) -> u8 {
    match r {
        Replacement::Lru => 0,
        Replacement::Fifo => 1,
    }
}

fn replacement_from_tag(tag: u8) -> Result<Replacement, SnapshotError> {
    match tag {
        0 => Ok(Replacement::Lru),
        1 => Ok(Replacement::Fifo),
        _ => Err(SnapshotError::InvalidValue("unknown replacement tag")),
    }
}

fn dram_sched_tag(s: DramSched) -> u8 {
    match s {
        DramSched::FrFcfs => 0,
        DramSched::Fcfs => 1,
    }
}

fn dram_sched_from_tag(tag: u8) -> Result<DramSched, SnapshotError> {
    match tag {
        0 => Ok(DramSched::FrFcfs),
        1 => Ok(DramSched::Fcfs),
        _ => Err(SnapshotError::InvalidValue("unknown DRAM scheduler tag")),
    }
}

/// Deterministic address-to-slice hash for a multi-slice level: XOR-folds
/// the line index in 3-bit groups (3 = log2 [`MAX_L2_SLICES`]) and reduces
/// modulo `slices`. The fold mixes high index bits into the low ones, so
/// power-of-two strides spread across slices instead of camping on one; a
/// single-slice level always maps to slice 0.
pub fn slice_of(addr: u64, line_size: u64, slices: usize) -> usize {
    if slices <= 1 {
        return 0;
    }
    let mut line = addr / line_size.max(1);
    let mut folded = 0u64;
    while line != 0 {
        folded ^= line;
        line >>= 3;
    }
    (folded % slices as u64) as usize
}

/// A violated structural invariant of an [`ArchDesc`] (or of the
/// `GpuConfig` built from one). The `Display` text is stable — downstream
/// panics and tests match on it — and reproduces the historical
/// string-error messages verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The machine has no SMs.
    NoSms,
    /// The machine has no memory partitions.
    NoPartitions,
    /// Warp size outside `1..=32`.
    WarpSize,
    /// Zero issue width.
    IssueWidth,
    /// No warp slots per SM.
    NoWarpSlots,
    /// No CTA slots per SM.
    NoCtaSlots,
    /// Line size zero or not a power of two.
    LineSize,
    /// LSU front-end pipe too small for a worst-case warp.
    LsuQueue,
    /// Zero-capacity ROP pipeline.
    RopQueue,
    /// Zero-capacity interconnect output queue.
    IcntQueue,
    /// A level's cache line size disagrees with the machine line size.
    LevelLineSize(LevelKind),
    /// A level's feeding queue has zero capacity.
    LevelQueue(LevelKind),
    /// A level's MSHR table has no entries.
    MshrEntries(LevelKind),
    /// A level's MSHR merge depth is zero.
    MshrMergeDepth(LevelKind),
    /// An outer cache level is not slower than the level before it.
    LevelOrdering {
        /// The closer-to-the-SM level.
        upper: LevelKind,
        /// Its hit latency.
        upper_hit: u64,
        /// The further-from-the-SM level.
        lower: LevelKind,
        /// Its hit latency.
        lower_hit: u64,
    },
    /// A level declares a sector size that is not a power of two strictly
    /// below its line size.
    SectorSize(LevelKind),
    /// A level's slice count is zero or above [`MAX_L2_SLICES`].
    LevelSlices(LevelKind),
    /// A level other than the L2 declares multiple slices.
    SlicedLevel(LevelKind),
    /// Zero trace sample interval (checked at the `GpuConfig` layer, where
    /// the observability knobs live).
    TraceSampleInterval,
    /// The level list does not describe a hierarchy the simulator can
    /// instantiate.
    UnsupportedTopology(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoSms => f.write_str("need at least one SM"),
            ConfigError::NoPartitions => f.write_str("need at least one partition"),
            ConfigError::WarpSize => f.write_str("warp size must be 1..=32"),
            ConfigError::IssueWidth => f.write_str("issue width must be positive"),
            ConfigError::NoWarpSlots => f.write_str("need at least one warp slot"),
            ConfigError::NoCtaSlots => f.write_str("need at least one CTA slot"),
            ConfigError::LineSize => f.write_str("line size must be a nonzero power of two"),
            ConfigError::LsuQueue => {
                f.write_str("LSU queue must hold a worst-case warp's transactions (> warp_size)")
            }
            ConfigError::RopQueue => f.write_str("ROP queue capacity must be positive"),
            ConfigError::IcntQueue => {
                f.write_str("interconnect output queue capacity must be positive")
            }
            ConfigError::LevelLineSize(k) => write!(f, "{k} line size mismatch"),
            ConfigError::LevelQueue(LevelKind::L1) => {
                f.write_str("L1 miss queue capacity must be positive")
            }
            ConfigError::LevelQueue(LevelKind::L2) => {
                f.write_str("L2 input queue capacity must be positive")
            }
            ConfigError::LevelQueue(LevelKind::DramFront) => {
                f.write_str("DRAM controller queue capacity must be positive")
            }
            ConfigError::MshrEntries(k) => write!(f, "{k} MSHR table needs entries"),
            ConfigError::MshrMergeDepth(k) => write!(f, "{k} MSHR merge depth must be positive"),
            ConfigError::LevelOrdering {
                upper,
                upper_hit,
                lower,
                lower_hit,
            } => write!(
                f,
                "{upper} hit latency ({upper_hit}) must be below {lower} hit latency ({lower_hit})"
            ),
            ConfigError::SectorSize(k) => write!(
                f,
                "{k} sector size must be a power of two strictly below the line size"
            ),
            ConfigError::LevelSlices(k) => {
                write!(f, "{k} slice count must be between 1 and {MAX_L2_SLICES}")
            }
            ConfigError::SlicedLevel(k) => {
                write!(
                    f,
                    "{k} cannot be sliced (only the L2 may have multiple slices)"
                )
            }
            ConfigError::TraceSampleInterval => {
                f.write_str("trace sample interval must be positive")
            }
            ConfigError::UnsupportedTopology(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A Fermi-GF100-shaped description used by the unit tests.
    fn fermi() -> ArchDesc {
        ArchDesc {
            name: "test (Fermi)".to_string(),
            num_sms: 15,
            line_size: 128,
            sm: SmDesc {
                warp_size: 32,
                max_warps: 48,
                max_ctas: 8,
                issue_width: 2,
                scheduler: SchedPolicy::Lrr,
                alu_latency: 18,
                fp_latency: 18,
                sfu_latency: 40,
                shared_latency: 30,
                base_latency: 28,
                lsu_queue: 34,
                fill_latency: 10,
            },
            levels: vec![
                LevelDesc {
                    kind: LevelKind::L1,
                    geom: Some(CacheGeom {
                        cache: CacheConfig {
                            sets: 32,
                            ways: 4,
                            line_size: 128,
                            replacement: Replacement::Lru,
                        },
                        mshr: MshrConfig {
                            entries: 32,
                            max_merged: 8,
                        },
                        hit_latency: 17,
                        sector_bytes: None,
                    }),
                    queue: 8,
                    routing: Routing::ALL,
                    write_policy: WritePolicy::WriteThrough,
                    slices: 1,
                },
                LevelDesc {
                    kind: LevelKind::L2,
                    geom: Some(CacheGeom {
                        cache: CacheConfig {
                            sets: 128,
                            ways: 8,
                            line_size: 128,
                            replacement: Replacement::Lru,
                        },
                        mshr: MshrConfig {
                            entries: 32,
                            max_merged: 8,
                        },
                        hit_latency: 115,
                        sector_bytes: None,
                    }),
                    queue: 8,
                    routing: Routing::ALL,
                    write_policy: WritePolicy::WriteThrough,
                    slices: 1,
                },
                LevelDesc {
                    kind: LevelKind::DramFront,
                    geom: None,
                    queue: 128,
                    routing: Routing::ALL,
                    write_policy: WritePolicy::WriteThrough,
                    slices: 1,
                },
            ],
            fabric: FabricDesc {
                icnt: IcntConfig {
                    latency: 48,
                    output_queue: 8,
                    inject_per_src: 1,
                    eject_per_dst: 1,
                },
                rop_latency: 60,
                rop_queue: 16,
            },
            mem: MemDesc {
                timing: DramTiming {
                    t_rcd: 80,
                    t_rp: 80,
                    t_cl: 321,
                    burst: 8,
                },
                sched: DramSched::FrFcfs,
                num_partitions: 6,
                partition_chunk: 256,
                banks: 16,
                row_bytes: 2048,
            },
        }
    }

    fn level_mut(d: &mut ArchDesc, kind: LevelKind) -> &mut LevelDesc {
        d.levels.iter_mut().find(|l| l.kind == kind).unwrap()
    }

    #[test]
    fn fermi_description_is_valid() {
        fermi().validate().unwrap();
    }

    #[test]
    fn unloaded_walk_reproduces_fermi_formulas() {
        let d = fermi();
        // sm_base + l1_hit.
        assert_eq!(d.unloaded_latency(LevelKind::L1), Some(28 + 17));
        // sm_base + 2*icnt + rop + 1 (L2 input-queue hop) + hit + fill.
        assert_eq!(
            d.unloaded_latency(LevelKind::L2),
            Some(28 + 2 * 48 + 60 + 1 + 115 + 10)
        );
        // sm_base + 2*icnt + rop + 2 hops + row conflict + burst + fill.
        assert_eq!(
            d.unloaded_latency(LevelKind::DramFront),
            Some(28 + 2 * 48 + 60 + 2 + (80 + 80 + 321) + 8 + 10)
        );
    }

    #[test]
    fn unloaded_walk_skips_absent_caches() {
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L1).geom = None;
        level_mut(&mut d, LevelKind::L2).geom = None;
        assert_eq!(d.unloaded_latency(LevelKind::L1), None);
        assert_eq!(d.unloaded_latency(LevelKind::L2), None);
        // The structural queues of the absent levels still cost their hops.
        assert_eq!(
            d.unloaded_latency(LevelKind::DramFront),
            Some(28 + 2 * 48 + 60 + 2 + (80 + 80 + 321) + 8 + 10)
        );
    }

    #[test]
    fn routing_masks_absent_caches() {
        let mut d = fermi();
        assert!(d.serves(LevelKind::L1, PipelineSpace::Global));
        level_mut(&mut d, LevelKind::L1).geom = None;
        assert!(!d.serves(LevelKind::L1, PipelineSpace::Global));
        assert!(!d.serves(LevelKind::L1, PipelineSpace::Local));
    }

    #[test]
    fn microbench_shrinks_machine_only() {
        let d = fermi();
        let m = d.microbench();
        assert_eq!(m.num_sms, 1);
        assert_eq!(m.mem.num_partitions, 1);
        assert_eq!(m.levels, d.levels);
        assert_eq!(m.sm, d.sm);
        assert_eq!(m.fabric, d.fabric);
        assert_eq!(
            m.unloaded_latency(LevelKind::DramFront),
            d.unloaded_latency(LevelKind::DramFront)
        );
    }

    #[test]
    fn fig1_labels_match_the_paper() {
        assert_eq!(
            fermi().fig1_stage_labels(),
            [
                "SM Base",
                "L1toICNT",
                "ICNTtoROP",
                "ROPtoL2Q",
                "L2QtoDRAMQ",
                "DRAM(QtoSch)",
                "DRAM(SchToA)",
                "Fetch2SM",
            ]
        );
    }

    #[test]
    fn hash_ignores_name_but_sees_structure() {
        let d = fermi();
        let digest = |d: &ArchDesc| {
            let mut h = StableHasher::new();
            d.hash_desc(&mut h);
            h.finish()
        };
        let mut renamed = d.clone();
        renamed.name = "same machine, new name".to_string();
        assert_eq!(digest(&d), digest(&renamed));
        let mut rerouted = d.clone();
        level_mut(&mut rerouted, LevelKind::L1).routing.global = false;
        assert_ne!(digest(&d), digest(&rerouted));
        let mut retimed = d.clone();
        retimed.mem.timing.t_cl += 1;
        assert_ne!(digest(&d), digest(&retimed));
    }

    #[test]
    fn codec_roundtrips() {
        let d = fermi();
        let mut e = Encoder::new();
        d.encode_state(&mut e);
        let bytes = e.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        let back = ArchDesc::decode(&mut dec).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn codec_rejects_wrong_frame_version() {
        let d = fermi();
        let mut e = Encoder::new();
        e.u32(ARCH_DESC_VERSION + 1);
        d.encode_state(&mut e); // payload after a bogus version tag
        let bytes = e.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert!(matches!(
            ArchDesc::decode(&mut dec),
            Err(SnapshotError::InvalidValue(_))
        ));
    }

    /// Hand-writes the historical version-1 frame layout (no sector flag,
    /// no slice count) for an unsectored description.
    fn encode_v1(d: &ArchDesc, e: &mut Encoder) {
        e.u32(1);
        e.str(&d.name);
        e.usize(d.num_sms);
        e.u64(d.line_size);
        e.u32(d.sm.warp_size);
        e.usize(d.sm.max_warps);
        e.usize(d.sm.max_ctas);
        e.usize(d.sm.issue_width);
        e.u8(sched_tag(d.sm.scheduler));
        e.u64(d.sm.alu_latency);
        e.u64(d.sm.fp_latency);
        e.u64(d.sm.sfu_latency);
        e.u64(d.sm.shared_latency);
        e.u64(d.sm.base_latency);
        e.usize(d.sm.lsu_queue);
        e.u64(d.sm.fill_latency);
        e.usize(d.levels.len());
        for level in &d.levels {
            e.u8(level.kind.tag());
            match &level.geom {
                None => e.bool(false),
                Some(g) => {
                    e.bool(true);
                    e.usize(g.cache.sets);
                    e.usize(g.cache.ways);
                    e.u64(g.cache.line_size);
                    e.u8(replacement_tag(g.cache.replacement));
                    e.usize(g.mshr.entries);
                    e.usize(g.mshr.max_merged);
                    e.u64(g.hit_latency);
                }
            }
            e.usize(level.queue);
            e.bool(level.routing.global);
            e.bool(level.routing.local);
            e.u8(write_policy_tag(level.write_policy));
        }
        e.u64(d.fabric.icnt.latency);
        e.usize(d.fabric.icnt.output_queue);
        e.usize(d.fabric.icnt.inject_per_src);
        e.usize(d.fabric.icnt.eject_per_dst);
        e.u64(d.fabric.rop_latency);
        e.usize(d.fabric.rop_queue);
        e.u64(d.mem.timing.t_rcd);
        e.u64(d.mem.timing.t_rp);
        e.u64(d.mem.timing.t_cl);
        e.u64(d.mem.timing.burst);
        e.u8(dram_sched_tag(d.mem.sched));
        e.usize(d.mem.num_partitions);
        e.u64(d.mem.partition_chunk);
        e.usize(d.mem.banks);
        e.u64(d.mem.row_bytes);
    }

    fn digest(d: &ArchDesc) -> u64 {
        let mut h = StableHasher::new();
        d.hash_desc(&mut h);
        h.finish()
    }

    #[test]
    fn codec_up_converts_v1_frames_to_the_same_hash() {
        // A v1 frame decodes to exactly the hand-written v2 equivalent
        // (unsectored lines, one slice) — same struct, same hash_desc — so
        // every pre-sector snapshot and cache key survives the bump.
        let v2 = fermi();
        let mut e = Encoder::new();
        encode_v1(&v2, &mut e);
        let bytes = e.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        let up = ArchDesc::decode(&mut dec).unwrap();
        assert_eq!(up, v2);
        assert_eq!(digest(&up), digest(&v2));
    }

    /// The fermi fixture with 32 B sectors on both caches and a four-slice
    /// L2 — the shape of a modern-generation description.
    fn sectored_fermi() -> ArchDesc {
        let mut d = fermi();
        for kind in [LevelKind::L1, LevelKind::L2] {
            level_mut(&mut d, kind).geom.as_mut().unwrap().sector_bytes = Some(32);
        }
        level_mut(&mut d, LevelKind::L2).slices = 4;
        d
    }

    #[test]
    fn sectored_sliced_description_is_valid_and_roundtrips() {
        let d = sectored_fermi();
        d.validate().unwrap();
        let mut e = Encoder::new();
        d.encode_state(&mut e);
        let bytes = e.finish();
        let mut dec = Decoder::open(&bytes).unwrap();
        assert_eq!(ArchDesc::decode(&mut dec).unwrap(), d);
    }

    #[test]
    fn hash_sees_sectors_and_slices() {
        let base = fermi();
        let mut sectored = base.clone();
        level_mut(&mut sectored, LevelKind::L1)
            .geom
            .as_mut()
            .unwrap()
            .sector_bytes = Some(32);
        let mut sliced = base.clone();
        level_mut(&mut sliced, LevelKind::L2).slices = 2;
        assert_ne!(digest(&base), digest(&sectored));
        assert_ne!(digest(&base), digest(&sliced));
        assert_ne!(digest(&sectored), digest(&sliced));
    }

    #[test]
    fn transaction_granule_is_smallest_sector_or_line() {
        assert_eq!(fermi().transaction_granule(), 128);
        assert_eq!(sectored_fermi().transaction_granule(), 32);
        let mut l2_only = fermi();
        level_mut(&mut l2_only, LevelKind::L2)
            .geom
            .as_mut()
            .unwrap()
            .sector_bytes = Some(64);
        assert_eq!(l2_only.transaction_granule(), 64);
    }

    #[test]
    fn sectors_per_line_and_granule() {
        let d = sectored_fermi();
        let g = d.level(LevelKind::L1).unwrap().geom.unwrap();
        assert_eq!(g.granule(), 32);
        assert_eq!(g.sectors_per_line(), 4);
        let plain = fermi().level(LevelKind::L1).unwrap().geom.unwrap();
        assert_eq!(plain.granule(), 128);
        assert_eq!(plain.sectors_per_line(), 1);
    }

    #[test]
    fn slice_hash_is_deterministic_in_range_and_spreads_strides() {
        // Single slice: everything maps to 0.
        assert_eq!(slice_of(0x1234_5678, 128, 1), 0);
        // Deterministic and in range.
        for addr in (0..1024u64).map(|i| i * 128) {
            let s = slice_of(addr, 128, 4);
            assert!(s < 4);
            assert_eq!(s, slice_of(addr, 128, 4));
        }
        // A power-of-two stride (512 B on 128 B lines) must still reach
        // every slice of a 4-slice L2, not camp on one.
        let mut seen = [false; 4];
        for i in 0..64u64 {
            seen[slice_of(i * 512, 128, 4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn sliced_labels_are_stable_and_fall_back() {
        assert_eq!(LevelKind::L2.sliced_queue_label(0), "l2-input.0");
        assert_eq!(LevelKind::L2.sliced_queue_label(7), "l2-input.7");
        assert_eq!(LevelKind::L2.sliced_hit_pipe_label(3), "l2-hit.3");
        // Out-of-range slices and non-L2 levels fall back to the legacy
        // labels, so single-slice machines are indistinguishable from v1.
        assert_eq!(LevelKind::L2.sliced_queue_label(8), "l2-input");
        assert_eq!(LevelKind::L1.sliced_queue_label(2), "miss");
        assert_eq!(LevelKind::L1.sliced_hit_pipe_label(2), "l1-hit");
    }

    #[test]
    fn error_sector_size() {
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L1)
            .geom
            .as_mut()
            .unwrap()
            .sector_bytes = Some(48);
        assert_eq!(d.validate(), Err(ConfigError::SectorSize(LevelKind::L1)));
        // A "sector" covering the whole line must be spelled None.
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L2)
            .geom
            .as_mut()
            .unwrap()
            .sector_bytes = Some(128);
        assert_eq!(d.validate(), Err(ConfigError::SectorSize(LevelKind::L2)));
        assert_eq!(
            ConfigError::SectorSize(LevelKind::L1).to_string(),
            "L1 sector size must be a power of two strictly below the line size"
        );
    }

    #[test]
    fn error_level_slices() {
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L2).slices = 0;
        assert_eq!(d.validate(), Err(ConfigError::LevelSlices(LevelKind::L2)));
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L2).slices = MAX_L2_SLICES + 1;
        assert_eq!(d.validate(), Err(ConfigError::LevelSlices(LevelKind::L2)));
        assert_eq!(
            ConfigError::LevelSlices(LevelKind::L2).to_string(),
            "L2 slice count must be between 1 and 8"
        );
    }

    #[test]
    fn error_sliced_level() {
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L1).slices = 2;
        assert_eq!(d.validate(), Err(ConfigError::SlicedLevel(LevelKind::L1)));
        assert_eq!(
            ConfigError::SlicedLevel(LevelKind::L1).to_string(),
            "L1 cannot be sliced (only the L2 may have multiple slices)"
        );
    }

    // ---- one test per ConfigError variant ---------------------------------

    #[test]
    fn error_no_sms() {
        let mut d = fermi();
        d.num_sms = 0;
        assert_eq!(d.validate(), Err(ConfigError::NoSms));
        assert_eq!(ConfigError::NoSms.to_string(), "need at least one SM");
    }

    #[test]
    fn error_no_partitions() {
        let mut d = fermi();
        d.mem.num_partitions = 0;
        assert_eq!(d.validate(), Err(ConfigError::NoPartitions));
        assert_eq!(
            ConfigError::NoPartitions.to_string(),
            "need at least one partition"
        );
    }

    #[test]
    fn error_warp_size() {
        let mut d = fermi();
        d.sm.warp_size = 33;
        assert_eq!(d.validate(), Err(ConfigError::WarpSize));
        assert_eq!(
            ConfigError::WarpSize.to_string(),
            "warp size must be 1..=32"
        );
    }

    #[test]
    fn error_issue_width() {
        let mut d = fermi();
        d.sm.issue_width = 0;
        assert_eq!(d.validate(), Err(ConfigError::IssueWidth));
        assert_eq!(
            ConfigError::IssueWidth.to_string(),
            "issue width must be positive"
        );
    }

    #[test]
    fn error_no_warp_slots() {
        let mut d = fermi();
        d.sm.max_warps = 0;
        assert_eq!(d.validate(), Err(ConfigError::NoWarpSlots));
        assert_eq!(
            ConfigError::NoWarpSlots.to_string(),
            "need at least one warp slot"
        );
    }

    #[test]
    fn error_no_cta_slots() {
        let mut d = fermi();
        d.sm.max_ctas = 0;
        assert_eq!(d.validate(), Err(ConfigError::NoCtaSlots));
        assert_eq!(
            ConfigError::NoCtaSlots.to_string(),
            "need at least one CTA slot"
        );
    }

    #[test]
    fn error_line_size() {
        let mut d = fermi();
        d.line_size = 96;
        assert_eq!(d.validate(), Err(ConfigError::LineSize));
        assert_eq!(
            ConfigError::LineSize.to_string(),
            "line size must be a nonzero power of two"
        );
    }

    #[test]
    fn error_lsu_queue() {
        let mut d = fermi();
        d.sm.lsu_queue = d.sm.warp_size as usize;
        assert_eq!(d.validate(), Err(ConfigError::LsuQueue));
        assert_eq!(
            ConfigError::LsuQueue.to_string(),
            "LSU queue must hold a worst-case warp's transactions (> warp_size)"
        );
    }

    #[test]
    fn error_rop_queue() {
        let mut d = fermi();
        d.fabric.rop_queue = 0;
        assert_eq!(d.validate(), Err(ConfigError::RopQueue));
        assert_eq!(
            ConfigError::RopQueue.to_string(),
            "ROP queue capacity must be positive"
        );
    }

    #[test]
    fn error_icnt_queue() {
        let mut d = fermi();
        d.fabric.icnt.output_queue = 0;
        assert_eq!(d.validate(), Err(ConfigError::IcntQueue));
        assert_eq!(
            ConfigError::IcntQueue.to_string(),
            "interconnect output queue capacity must be positive"
        );
    }

    #[test]
    fn error_level_line_size() {
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L1)
            .geom
            .as_mut()
            .unwrap()
            .cache
            .line_size = 64;
        assert_eq!(d.validate(), Err(ConfigError::LevelLineSize(LevelKind::L1)));
        assert_eq!(
            ConfigError::LevelLineSize(LevelKind::L2).to_string(),
            "L2 line size mismatch"
        );
    }

    #[test]
    fn error_level_queue() {
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L1).queue = 0;
        assert_eq!(d.validate(), Err(ConfigError::LevelQueue(LevelKind::L1)));
        assert_eq!(
            ConfigError::LevelQueue(LevelKind::L1).to_string(),
            "L1 miss queue capacity must be positive"
        );
        assert_eq!(
            ConfigError::LevelQueue(LevelKind::L2).to_string(),
            "L2 input queue capacity must be positive"
        );
        let mut d = fermi();
        level_mut(&mut d, LevelKind::DramFront).queue = 0;
        assert_eq!(
            d.validate(),
            Err(ConfigError::LevelQueue(LevelKind::DramFront))
        );
        assert_eq!(
            ConfigError::LevelQueue(LevelKind::DramFront).to_string(),
            "DRAM controller queue capacity must be positive"
        );
    }

    #[test]
    fn error_mshr_entries() {
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L2)
            .geom
            .as_mut()
            .unwrap()
            .mshr
            .entries = 0;
        assert_eq!(d.validate(), Err(ConfigError::MshrEntries(LevelKind::L2)));
        assert_eq!(
            ConfigError::MshrEntries(LevelKind::L2).to_string(),
            "L2 MSHR table needs entries"
        );
    }

    #[test]
    fn error_mshr_merge_depth() {
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L1)
            .geom
            .as_mut()
            .unwrap()
            .mshr
            .max_merged = 0;
        assert_eq!(
            d.validate(),
            Err(ConfigError::MshrMergeDepth(LevelKind::L1))
        );
        assert_eq!(
            ConfigError::MshrMergeDepth(LevelKind::L1).to_string(),
            "L1 MSHR merge depth must be positive"
        );
    }

    #[test]
    fn error_level_ordering() {
        let mut d = fermi();
        level_mut(&mut d, LevelKind::L1)
            .geom
            .as_mut()
            .unwrap()
            .hit_latency = 115;
        assert_eq!(
            d.validate(),
            Err(ConfigError::LevelOrdering {
                upper: LevelKind::L1,
                upper_hit: 115,
                lower: LevelKind::L2,
                lower_hit: 115,
            })
        );
        let msg = ConfigError::LevelOrdering {
            upper: LevelKind::L1,
            upper_hit: 17,
            lower: LevelKind::L2,
            lower_hit: 15,
        }
        .to_string();
        assert_eq!(msg, "L1 hit latency (17) must be below L2 hit latency (15)");
    }

    #[test]
    fn error_trace_sample_interval_text() {
        // The invariant itself is checked at the GpuConfig layer (the trace
        // knobs are not part of the description); the variant and its text
        // live here with the rest of the enum.
        assert_eq!(
            ConfigError::TraceSampleInterval.to_string(),
            "trace sample interval must be positive"
        );
    }

    #[test]
    fn error_unsupported_topology() {
        let mut d = fermi();
        d.levels.swap(0, 1);
        let err = d.validate().unwrap_err();
        assert!(matches!(err, ConfigError::UnsupportedTopology(_)));
        assert!(err.to_string().contains("pipeline order"));

        let mut d = fermi();
        d.levels.remove(1);
        assert!(matches!(
            d.validate(),
            Err(ConfigError::UnsupportedTopology(_))
        ));

        let mut d = fermi();
        level_mut(&mut d, LevelKind::DramFront).geom = level_mut(&mut d, LevelKind::L1).geom;
        let err = d.validate().unwrap_err();
        assert!(err.to_string().contains("tag array"));
    }

    #[test]
    fn absent_levels_size_placeholder_mshrs() {
        let mut d = fermi();
        let l1 = level_mut(&mut d, LevelKind::L1);
        l1.geom = None;
        assert_eq!(
            l1.mshr_config(),
            MshrConfig {
                entries: 1,
                max_merged: 1
            }
        );
        assert_eq!(d.level(LevelKind::L2).unwrap().mshr_config().entries, 32);
    }
}
