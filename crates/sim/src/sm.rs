//! Streaming-multiprocessor timing model.
//!
//! An [`Sm`] owns warp slots (each wrapping a functional
//! [`gpu_isa::WarpExec`]), a scoreboard, ALU/SFU writeback tracking, and the
//! in-SM half of the memory pipeline: the front-end (address
//! generation/coalescing, the head of the paper's "SM Base" component), the
//! L1 data cache with MSHRs, the L1 miss queue toward the interconnect (the
//! paper's "L1toICNT" queue), and the response fill/writeback path (the tail
//! of "Fetch2SM").

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use gpu_arch::{LevelDesc, LevelKind, Routing};
use gpu_isa::{
    InstrClass, Kernel, Launch, LocalMap, MemBackend, Pc, Reg, Space, StepOutcome, ThreadCtx,
    WarpExec,
};
use gpu_mem::{AccessKind, Cache, MemRequest, MshrTable, PipelineSpace, RequestId, Stamp};
use gpu_trace::{EventKind, StallBreakdown, StallReason, TraceEvent, TraceSite, Tracer};
use gpu_types::{BoundedQueue, CtaId, Cycle, DelayQueue, SmId};

use gpu_snapshot::{Decoder, Encoder, SnapshotError};

use crate::coalesce::coalesce;
use crate::codec;
use crate::config::{GpuConfig, SchedPolicy};
use crate::sanitizer::{Sanitizer, Site, Violation};
use crate::scoreboard::Scoreboard;
use crate::stats::{self, CompletedRequest, LoadInstrRecord, SmStats, TraceSink};

/// Token value for requests with no pending-load entry (stores).
const NO_TOKEN: u64 = u64::MAX;

/// Where a deferred device-memory access patches its result once it is
/// replayed in serial memory order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchTarget {
    /// Warp slot that issued the access.
    pub warp: usize,
    /// Lane within the warp.
    pub lane: usize,
    /// Destination register to overwrite with the replayed value.
    pub reg: Reg,
}

/// One device-memory access buffered during a parallel issue stage instead
/// of being applied immediately. The parallel tick executor replays these in
/// SM-index order (then buffer order) against the shared [`DeviceMemory`],
/// reproducing exactly the access order a serial tick performs — the proof
/// that parallel ticking stays bit-identical (see DESIGN.md).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeferredDeviceOp {
    /// A global/local-space lane load; `patch` receives the loaded value.
    Load {
        /// Byte address.
        addr: gpu_types::Addr,
        /// Access width.
        width: gpu_isa::Width,
        /// Register to patch with the loaded value.
        patch: Option<PatchTarget>,
    },
    /// A global/local-space lane store.
    Store {
        /// Byte address.
        addr: gpu_types::Addr,
        /// Access width.
        width: gpu_isa::Width,
        /// Value to store.
        value: u64,
    },
    /// A global-space atomic add; `patch` receives the old value.
    Atomic {
        /// Byte address.
        addr: gpu_types::Addr,
        /// Access width.
        width: gpu_isa::Width,
        /// Addend.
        value: u64,
        /// Register to patch with the pre-add value.
        patch: Option<PatchTarget>,
    },
}

impl DeferredDeviceOp {
    fn set_patch(&mut self, target: PatchTarget) {
        match self {
            DeferredDeviceOp::Load { patch, .. } | DeferredDeviceOp::Atomic { patch, .. } => {
                *patch = Some(target);
            }
            DeferredDeviceOp::Store { .. } => {}
        }
    }

    /// Applies this op to `device`, returning any register patch to perform:
    /// `(target, value)`.
    pub fn replay(self, device: &mut gpu_mem::DeviceMemory) -> Option<(PatchTarget, u64)> {
        match self {
            DeferredDeviceOp::Load { addr, width, patch } => {
                let v = device.read_le(addr, width.bytes());
                patch.map(|p| (p, v))
            }
            DeferredDeviceOp::Store { addr, width, value } => {
                device.write_le(addr, width.bytes(), value);
                None
            }
            DeferredDeviceOp::Atomic {
                addr,
                width,
                value,
                patch,
            } => {
                let old = device.fetch_add(addr, width.bytes(), value);
                patch.map(|p| (p, old))
            }
        }
    }
}

/// How the issue stage reaches functional device memory: directly (the
/// serial tick), or buffered into a deferred-op list (a parallel tick, where
/// SMs issue concurrently and cannot share `&mut DeviceMemory`).
#[derive(Debug)]
pub enum DeviceAccess<'a> {
    /// Serial ticking: apply loads/stores/atomics immediately.
    Direct(&'a mut gpu_mem::DeviceMemory),
    /// Parallel ticking: buffer accesses for an in-order replay. Loads and
    /// atomics return a placeholder `0` during issue; the true value is
    /// patched into the destination register at replay, before any
    /// instruction can observe it (the scoreboard holds the register until
    /// the response returns, and a warp issues at most once per cycle).
    Deferred(&'a mut Vec<DeferredDeviceOp>),
}

#[derive(Debug)]
struct WarpSlot {
    exec: WarpExec,
    cta_index: usize,
    age: u64,
    pending_ops: u32,
}

#[derive(Debug)]
struct CtaRt {
    shared: Vec<u8>,
    slots: Vec<usize>,
    live: usize,
    arrived: usize,
}

#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    warp: usize,
    dst: Option<Reg>,
    pc: Pc,
    remaining: u32,
    lines: u32,
    issue: Cycle,
    stalls_at_issue: u64,
    stall_reasons_at_issue: StallBreakdown,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: SmId,
    cfg: Arc<GpuConfig>,
    slots: Vec<Option<WarpSlot>>,
    ctas: Vec<Option<CtaRt>>,
    scoreboard: Scoreboard,
    alu_wb: BinaryHeap<Reverse<(u64, usize, Reg)>>,
    front: DelayQueue<MemRequest>,
    /// The SM-side level descriptor (cached at construction; structural, not
    /// serialized). Audit labels derive from its kind.
    l1_desc: LevelDesc,
    /// Effective routing of the SM-side level, precomputed so the per-access
    /// hot path is a field read, not a descriptor walk.
    l1_routing: Routing,
    /// Machine-wide memory-transaction granule (sector size when any level
    /// is sectored, else the line size), cached at construction. The
    /// coalescer, L1/MSHR keys and request sizes all use it.
    granule: u64,
    l1_cache: Option<Cache>,
    l1_mshr: MshrTable<MemRequest>,
    l1_hit_pipe: DelayQueue<MemRequest>,
    miss_queue: BoundedQueue<MemRequest>,
    fill_pipe: DelayQueue<MemRequest>,
    pending_loads: HashMap<u64, PendingLoad>,
    next_token: u64,
    next_req_id: u64,
    last_issued: usize,
    greedy: Option<usize>,
    age_counter: u64,
    stats: SmStats,
}

impl Sm {
    /// Creates an SM per the configuration.
    pub fn new(id: SmId, cfg: Arc<GpuConfig>) -> Self {
        let slots = cfg.max_warps_per_sm;
        let l1_desc = cfg.level_desc(LevelKind::L1);
        let (l1_cache, l1_hit_latency) = match l1_desc.geom {
            Some(g) => (
                Some(Cache::with_sectors(g.cache, g.sector_bytes)),
                g.hit_latency,
            ),
            None => (None, 0),
        };
        Sm {
            id,
            slots: (0..slots).map(|_| None).collect(),
            ctas: (0..cfg.max_ctas_per_sm).map(|_| None).collect(),
            scoreboard: Scoreboard::new(slots),
            alu_wb: BinaryHeap::new(),
            front: DelayQueue::new(cfg.lsu_queue, cfg.sm_base_latency),
            l1_desc,
            l1_routing: l1_desc.effective_routing(),
            granule: cfg.transaction_granule(),
            l1_cache,
            l1_mshr: MshrTable::new(l1_desc.mshr_config()),
            l1_hit_pipe: DelayQueue::new(cfg.lsu_queue, l1_hit_latency),
            miss_queue: BoundedQueue::new(l1_desc.queue),
            fill_pipe: DelayQueue::new(512, cfg.fill_latency),
            pending_loads: HashMap::new(),
            next_token: 0,
            next_req_id: 0,
            last_issued: 0,
            greedy: None,
            age_counter: 0,
            stats: SmStats::default(),
            cfg,
        }
    }

    /// This SM's id.
    pub fn id(&self) -> SmId {
        self.id
    }

    /// Per-SM statistics.
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// L1 hit/miss counts, if an L1 exists.
    pub fn l1_counts(&self) -> Option<(u64, u64)> {
        self.l1_cache.as_ref().map(|c| (c.hits(), c.misses()))
    }

    /// Number of occupied warp slots.
    pub fn live_warps(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    // ---- counter gauges --------------------------------------------------

    /// Transactions in the memory front-end pipe (counter gauge).
    pub fn front_depth(&self) -> usize {
        self.front.len()
    }

    /// Requests waiting in the L1 miss queue (counter gauge).
    pub fn miss_queue_depth(&self) -> usize {
        self.miss_queue.len()
    }

    /// Occupied L1 MSHR entries (counter gauge).
    pub fn l1_mshr_occupancy(&self) -> usize {
        self.l1_mshr.len()
    }

    /// Returns `true` when the SM holds no warps and no in-flight memory
    /// state.
    pub fn is_idle(&self) -> bool {
        self.live_warps() == 0
            && self.pending_loads.is_empty()
            && self.front.is_empty()
            && self.miss_queue.is_empty()
            && self.l1_hit_pipe.is_empty()
            && self.fill_pipe.is_empty()
    }

    // ---- sanitizer hooks -------------------------------------------------

    /// Memory requests currently inside this SM: front-end pipe, hit pipe,
    /// miss queue, fill pipe, and waiters parked in L1 MSHR merge lists
    /// (primary misses travel downstream and are counted wherever they are).
    pub fn in_flight_requests(&self) -> u64 {
        (self.front.len()
            + self.l1_hit_pipe.len()
            + self.miss_queue.len()
            + self.fill_pipe.len()
            + self.l1_mshr.waiters()) as u64
    }

    /// Per-cycle structural audit: queue occupancies against their
    /// capacities, MSHR occupancy against its configuration.
    pub fn audit(&self, san: &mut Sanitizer) {
        let site = Site::Sm(self.id.index());
        san.check_queue(site, "front", self.front.len(), self.front.capacity());
        san.check_queue(
            site,
            self.l1_desc.kind.hit_pipe_label(),
            self.l1_hit_pipe.len(),
            self.l1_hit_pipe.capacity(),
        );
        san.check_queue(
            site,
            self.l1_desc.kind.queue_label(),
            self.miss_queue.len(),
            self.miss_queue.capacity(),
        );
        san.check_queue(
            site,
            "fill",
            self.fill_pipe.len(),
            self.fill_pipe.capacity(),
        );
        san.check_mshr_occupancy(
            site,
            self.l1_mshr.len(),
            self.l1_mshr.max_list_len(),
            self.l1_mshr.config(),
        );
    }

    /// End-of-run audit: after a drained run nothing may linger in the MSHR
    /// table or the pending-load map. The idle check deliberately ignores
    /// the MSHR table (a leaked entry blocks no queue), so this is the only
    /// place such a leak becomes visible.
    pub fn audit_drained(&self, san: &mut Sanitizer) {
        let site = Site::Sm(self.id.index());
        if !self.l1_mshr.is_empty() {
            san.record(Violation::MshrLeak {
                site,
                lines: self.l1_mshr.pending_lines(),
            });
        }
        if !self.pending_loads.is_empty() {
            san.record(Violation::PendingLoadLeak {
                site,
                entries: self.pending_loads.len(),
            });
        }
    }

    /// Test hook: allocates an L1 MSHR entry that no fill will ever release,
    /// modeling the classic lost-fill bug. The run still drains (the entry
    /// holds no queue slot), so only the sanitizer's end-of-run audit can
    /// catch it.
    pub fn debug_seed_mshr_leak(&mut self, line: gpu_types::Addr) {
        assert!(
            self.l1_mshr.allocate(line),
            "seeding requires a free MSHR entry"
        );
    }

    /// Returns `true` if a CTA of `warps_needed` warps can be dispatched.
    pub fn can_dispatch(&self, warps_needed: usize) -> bool {
        self.ctas.iter().any(|c| c.is_none())
            && self.slots.iter().filter(|s| s.is_none()).count() >= warps_needed
    }

    /// Dispatches one CTA onto this SM.
    ///
    /// # Panics
    ///
    /// Panics if capacity is insufficient; check [`Sm::can_dispatch`].
    pub fn dispatch(
        &mut self,
        cta: CtaId,
        kernel: &Arc<Kernel>,
        params: &Arc<[u64]>,
        launch: &Launch,
        local_map: LocalMap,
    ) {
        let cta_index = self
            .ctas
            .iter()
            .position(|c| c.is_none())
            .expect("no free CTA slot");
        let warp_size = self.cfg.warp_size;
        let warps_needed = launch.warps_per_cta(warp_size) as usize;
        let mut slot_ids = Vec::with_capacity(warps_needed);
        let mut tid = 0u32;
        for _ in 0..warps_needed {
            let slot = self
                .slots
                .iter()
                .position(|s| s.is_none())
                .expect("no free warp slot");
            let lanes = (launch.block_dim - tid).min(warp_size);
            let ctxs: Vec<ThreadCtx> = (0..lanes)
                .map(|lane| ThreadCtx {
                    tid: tid + lane,
                    ctaid: cta.get(),
                    ntid: launch.block_dim,
                    nctaid: launch.grid_dim,
                    lane,
                })
                .collect();
            tid += lanes;
            let exec = WarpExec::new(Arc::clone(kernel), Arc::clone(params), ctxs, local_map);
            self.age_counter += 1;
            self.slots[slot] = Some(WarpSlot {
                exec,
                cta_index,
                age: self.age_counter,
                pending_ops: 0,
            });
            slot_ids.push(slot);
        }
        self.ctas[cta_index] = Some(CtaRt {
            shared: vec![0u8; kernel.shared_bytes() as usize],
            live: slot_ids.len(),
            slots: slot_ids,
            arrived: 0,
        });
    }

    /// Retires CTAs whose warps have all exited and drained their pending
    /// memory operations; returns the number retired.
    pub fn maintain(&mut self) -> u64 {
        let mut retired = 0;
        for ci in 0..self.ctas.len() {
            let done = match &self.ctas[ci] {
                Some(c) => {
                    c.live == 0
                        && c.slots.iter().all(|&s| {
                            self.slots[s]
                                .as_ref()
                                .is_none_or(|slot| slot.pending_ops == 0)
                        })
                }
                None => false,
            };
            if done {
                let c = self.ctas[ci].take().expect("checked above");
                for s in c.slots {
                    self.slots[s] = None;
                    self.scoreboard.clear(s);
                }
                self.stats.ctas_retired += 1;
                retired += 1;
            }
        }
        retired
    }

    // ---- response path --------------------------------------------------

    /// Returns `true` if the fill pipe can accept a network response (plus
    /// any MSHR waiters it may wake).
    pub fn fill_space(&self) -> bool {
        // A response can wake up to `max_merged` waiters.
        self.fill_pipe.capacity() - self.fill_pipe.len() > self.l1_mshr.config().max_merged
    }

    /// Accepts a response ejected from the reply network: fills the L1 (if
    /// this space is cached), wakes MSHR waiters, and queues everything for
    /// writeback.
    pub fn accept_response(&mut self, req: MemRequest, now: Cycle, tracer: &mut Tracer) {
        let mut wake = Vec::new();
        if req.is_load() && !req.bypass_l1 && self.l1_routing.serves(req.space) {
            if let Some(l1) = self.l1_cache.as_mut() {
                let line = req.addr.align_down(self.granule);
                l1.fill(line);
                wake = self.l1_mshr.fill(line);
                if tracer.enabled() {
                    tracer.record(TraceEvent {
                        cycle: now.get(),
                        site: TraceSite::Sm(self.id.get()),
                        kind: EventKind::MshrFill {
                            line: line.get(),
                            waiters: wake.len() as u32,
                        },
                    });
                }
            }
        }
        self.fill_pipe
            .push(now, req)
            .unwrap_or_else(|_| panic!("fill pipe overflow; fill_space not checked"));
        for w in wake {
            self.fill_pipe
                .push(now, w)
                .unwrap_or_else(|_| panic!("fill pipe overflow on MSHR wake"));
        }
    }

    /// Writeback stage: releases completed ALU results and retires returned
    /// memory responses. Returns the number of memory requests retired.
    /// When the sanitizer is active, every retired request's timeline is
    /// audited on its way out.
    pub fn tick_writeback(
        &mut self,
        now: Cycle,
        sink: &mut TraceSink,
        mut sanitizer: Option<&mut Sanitizer>,
    ) -> u64 {
        while let Some(&Reverse((c, w, r))) = self.alu_wb.peek() {
            if c > now.get() {
                break;
            }
            self.alu_wb.pop();
            self.scoreboard.release(w, r);
        }
        let mut retired = 0;
        // Two writeback ports: returned fills and L1 hits.
        for _ in 0..2 {
            match self.fill_pipe.pop_ready(now) {
                Some(req) => {
                    self.complete_response(req, now, sink, sanitizer.as_deref_mut());
                    retired += 1;
                }
                None => break,
            }
        }
        if let Some(req) = self.l1_hit_pipe.pop_ready(now) {
            self.complete_response(req, now, sink, sanitizer);
            retired += 1;
        }
        retired
    }

    fn complete_response(
        &mut self,
        mut req: MemRequest,
        now: Cycle,
        sink: &mut TraceSink,
        sanitizer: Option<&mut Sanitizer>,
    ) {
        // L1 hits reach writeback without an L1Access stamp; set it here so
        // their whole lifetime is attributed to the SM Base component.
        req.timeline.record(Stamp::L1Access, now);
        req.timeline.record(Stamp::Returned, now);
        if let Some(san) = sanitizer {
            san.check_retired(&req);
        }
        if !req.is_load() {
            return;
        }
        if !req.l1_merged {
            sink.record_request(CompletedRequest {
                timeline: req.timeline,
                space: req.space,
                sm: self.id,
            });
        }
        if req.token == NO_TOKEN {
            return;
        }
        let finished = match self.pending_loads.get_mut(&req.token) {
            Some(pl) => {
                pl.remaining -= 1;
                pl.remaining == 0
            }
            None => panic!("response for unknown load token {}", req.token),
        };
        if finished {
            let pl = self.pending_loads.remove(&req.token).expect("entry exists");
            if let Some(d) = pl.dst {
                self.scoreboard.release(pl.warp, d);
            }
            if let Some(slot) = self.slots[pl.warp].as_mut() {
                slot.pending_ops -= 1;
            }
            let exposed = self.stats.stall_cycles - pl.stalls_at_issue;
            // The SM can stall at most once per cycle, so the exposure
            // counted against a load can never exceed its lifetime.
            debug_assert!(
                exposed <= now.since(pl.issue),
                "exposed {} exceeds load lifetime {}",
                exposed,
                now.since(pl.issue)
            );
            sink.record_load(LoadInstrRecord {
                sm: self.id,
                pc: pl.pc,
                issue: pl.issue,
                complete: now,
                exposed,
                lines: pl.lines,
                stall_reasons: self.stats.stalls.since(&pl.stall_reasons_at_issue),
            });
        }
    }

    // ---- L1 stage --------------------------------------------------------

    /// L1 access stage: moves at most one transaction from the front-end
    /// pipe into the hit pipe or the miss queue.
    pub fn tick_memory(&mut self, now: Cycle, tracer: &mut Tracer) {
        let Some(head) = self.front.front_ready(now) else {
            return;
        };
        // Cache lines and MSHR entries are keyed by the transaction granule
        // (the sector on sectored machines, else the line); the coalescer
        // always sends aligned transactions, but align defensively.
        let addr = head.addr.align_down(self.granule);
        let kind = head.kind;
        let bypass = head.bypass_l1;
        let space = head.space;
        // Effective routing is masked by cache presence, so `served` implies
        // the L1 exists.
        let served = !bypass && self.l1_routing.serves(space);

        if kind == AccessKind::Store {
            if self.miss_queue.is_full() {
                return;
            }
            let mut req = self.front.pop_ready(now).expect("front head ready");
            req.timeline.record(Stamp::L1Access, now);
            if served {
                self.l1_cache
                    .as_mut()
                    .expect("served implies L1")
                    .store_invalidate(addr);
            }
            self.miss_queue.push(req).expect("capacity checked");
            return;
        }

        if !served {
            if self.miss_queue.is_full() {
                return;
            }
            let mut req = self.front.pop_ready(now).expect("front head ready");
            req.timeline.record(Stamp::L1Access, now);
            self.miss_queue.push(req).expect("capacity checked");
            return;
        }

        let l1 = self.l1_cache.as_mut().expect("served implies L1");
        if l1.probe(addr) {
            let req = self.front.pop_ready(now).expect("front head ready");
            // No stamp here: a hit never leaves the SM, so its entire
            // lifetime counts as "SM Base" (the L1Access stamp is set at
            // writeback; see `complete_response`), matching the paper's
            // all-SM-Base short-latency buckets.
            let _ = l1.load(addr); // records the hit
            self.l1_hit_pipe
                .push(now, req)
                .expect("hit pipe sized like the front pipe");
        } else if self.l1_mshr.is_pending(addr) {
            if !self.l1_mshr.can_merge(addr) {
                return; // merge list full: stall
            }
            let mut req = self.front.pop_ready(now).expect("front head ready");
            req.timeline.record(Stamp::L1Access, now);
            req.l1_merged = true;
            let _ = l1.load(addr); // records the miss
            self.l1_mshr
                .try_merge(addr, req)
                .expect("merge space checked");
            if tracer.enabled() {
                tracer.record(TraceEvent {
                    cycle: now.get(),
                    site: TraceSite::Sm(self.id.get()),
                    kind: EventKind::MshrMerge { line: addr.get() },
                });
            }
        } else {
            if !self.l1_mshr.can_allocate() || self.miss_queue.is_full() {
                return; // structural stall
            }
            if !l1.reserve(addr) {
                return; // every way reserved by in-flight fills
            }
            let mut req = self.front.pop_ready(now).expect("front head ready");
            req.timeline.record(Stamp::L1Access, now);
            let _ = l1.load(addr); // records the miss
            assert!(self.l1_mshr.allocate(addr), "capacity checked");
            self.miss_queue.push(req).expect("capacity checked");
            if tracer.enabled() {
                tracer.record(TraceEvent {
                    cycle: now.get(),
                    site: TraceSite::Sm(self.id.get()),
                    kind: EventKind::MshrAllocate { line: addr.get() },
                });
            }
        }
    }

    /// Overwrites one lane register of a live warp. Used by the parallel
    /// tick executor to land deferred load/atomic results during the
    /// in-order replay (see [`DeferredDeviceOp`]).
    ///
    /// # Panics
    ///
    /// Panics if the warp slot is empty — a deferred patch always targets a
    /// warp with a pending memory op, which [`Sm::maintain`] cannot retire.
    pub fn poke_warp_reg(&mut self, warp: usize, lane: usize, reg: Reg, value: u64) {
        self.slots[warp]
            .as_mut()
            .expect("deferred patch targets a live warp")
            .exec
            .poke_reg(lane, reg, value);
    }

    /// Oldest request waiting to enter the interconnect, if any.
    pub fn peek_miss(&self) -> Option<&MemRequest> {
        self.miss_queue.front()
    }

    /// Removes the oldest miss-queue request for network injection.
    pub fn pop_miss(&mut self) -> Option<MemRequest> {
        self.miss_queue.pop()
    }

    // ---- issue stage ------------------------------------------------------

    /// Issue stage: schedules up to `issue_width` ready warps and executes
    /// one instruction each. Returns the number of new memory requests
    /// created (the caller tracks global outstanding counts).
    pub fn tick_issue(
        &mut self,
        now: Cycle,
        mut device: DeviceAccess<'_>,
        sink: &mut TraceSink,
        tracer: &mut Tracer,
    ) -> u64 {
        let mut new_requests = 0;
        let mut issued = 0u64;
        let mut lsu_used = false;
        let mut issued_mask = vec![false; self.slots.len()];
        for _ in 0..self.cfg.issue_width {
            let Some(w) = self.pick_warp(&issued_mask, lsu_used) else {
                break;
            };
            issued_mask[w] = true;
            new_requests += self.issue_warp(w, now, &mut device, sink, tracer, &mut lsu_used);
            issued += 1;
        }
        if issued > 0 {
            self.stats.active_cycles += 1;
            self.stats.instructions += issued;
        } else if self.live_warps() > 0 {
            self.stats.stall_cycles += 1;
            let reason = self.classify_stall();
            self.stats.stalls.bump(reason);
            if tracer.enabled() {
                tracer.record(TraceEvent {
                    cycle: now.get(),
                    site: TraceSite::Sm(self.id.get()),
                    kind: EventKind::Stall { reason },
                });
            }
        }
        new_requests
    }

    /// Names the dominant reason this SM issued nothing despite live warps:
    /// every blocked warp votes for the first condition that blocks it, and
    /// the reason with the most votes wins (ties break in
    /// [`StallReason::ALL`] order). This refines the paper's Fig. 2
    /// exposed/hidden split — a zero-issue cycle becomes exposed *because
    /// of* something.
    fn classify_stall(&self) -> StallReason {
        let mut votes = [0u64; StallReason::COUNT];
        for (w, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot.as_ref() else { continue };
            if slot.exec.is_finished() {
                // Drained warps waiting for CTA retirement don't vote.
                continue;
            }
            let reason = if slot.exec.at_barrier() {
                StallReason::Barrier
            } else {
                match slot.exec.peek() {
                    None => StallReason::Other,
                    Some((_, instr)) => {
                        if !self.scoreboard.can_issue(w, instr) {
                            StallReason::Scoreboard
                        } else if matches!(
                            instr.class(),
                            InstrClass::Mem { space, .. } if space != Space::Shared
                        ) {
                            let need = self.cfg.warp_size as usize + 1;
                            if self.front.capacity() - self.front.len() < need {
                                if !self.l1_mshr.can_allocate() {
                                    StallReason::MshrFull
                                } else if self.miss_queue.is_full() {
                                    StallReason::IcntBackpressure
                                } else {
                                    StallReason::Other
                                }
                            } else {
                                StallReason::Other
                            }
                        } else {
                            StallReason::Other
                        }
                    }
                }
            };
            votes[reason.index()] += 1;
        }
        let mut best = StallReason::Other;
        let mut best_votes = 0u64;
        for r in StallReason::ALL {
            if votes[r.index()] > best_votes {
                best = r;
                best_votes = votes[r.index()];
            }
        }
        best
    }

    fn warp_ready(&self, w: usize, issued_mask: &[bool], lsu_used: bool) -> bool {
        if issued_mask[w] {
            return false;
        }
        let Some(slot) = self.slots[w].as_ref() else {
            return false;
        };
        if slot.exec.is_finished() || slot.exec.at_barrier() {
            return false;
        }
        let Some((_, instr)) = slot.exec.peek() else {
            return false;
        };
        if !self.scoreboard.can_issue(w, instr) {
            return false;
        }
        if let InstrClass::Mem { space, .. } = instr.class() {
            if lsu_used {
                return false;
            }
            if space != Space::Shared {
                // Worst case: one line per lane plus one boundary crossing.
                let need = self.cfg.warp_size as usize + 1;
                if self.front.capacity() - self.front.len() < need {
                    return false;
                }
            }
        }
        true
    }

    fn pick_warp(&mut self, issued_mask: &[bool], lsu_used: bool) -> Option<usize> {
        let n = self.slots.len();
        match self.cfg.scheduler {
            SchedPolicy::Lrr => {
                for off in 1..=n {
                    let w = (self.last_issued + off) % n;
                    if self.warp_ready(w, issued_mask, lsu_used) {
                        self.last_issued = w;
                        return Some(w);
                    }
                }
                None
            }
            SchedPolicy::Gto => {
                if let Some(g) = self.greedy {
                    if self.warp_ready(g, issued_mask, lsu_used) {
                        return Some(g);
                    }
                }
                let oldest = (0..n)
                    .filter(|&w| self.warp_ready(w, issued_mask, lsu_used))
                    .min_by_key(|&w| self.slots[w].as_ref().expect("ready implies live").age);
                if let Some(w) = oldest {
                    self.greedy = Some(w);
                }
                oldest
            }
        }
    }

    fn issue_warp(
        &mut self,
        w: usize,
        now: Cycle,
        device: &mut DeviceAccess<'_>,
        sink: &mut TraceSink,
        tracer: &mut Tracer,
        lsu_used: &mut bool,
    ) -> u64 {
        let mut slot = self.slots[w].take().expect("scheduler picked a live warp");
        let cta_index = slot.cta_index;
        let (_, instr) = slot.exec.peek().expect("scheduler checked peek");
        let class = instr.class();
        let dst = instr.def_reg();

        let ops_before = match device {
            DeviceAccess::Direct(_) => 0,
            DeviceAccess::Deferred(ops) => ops.len(),
        };
        let outcome = {
            let cta = self.ctas[cta_index]
                .as_mut()
                .expect("warp belongs to a live CTA");
            match device {
                DeviceAccess::Direct(dev) => slot.exec.step(&mut IssueBackend {
                    device: dev,
                    shared: &mut cta.shared,
                }),
                DeviceAccess::Deferred(ops) => slot.exec.step(&mut DeferBackend {
                    ops,
                    shared: &mut cta.shared,
                }),
            }
        };
        // Annotate the deferred ops this step buffered (one per lane access,
        // in lane order) with their register-patch targets, so the replay
        // can land loaded/old values exactly where the direct backend would
        // have written them.
        if let (DeviceAccess::Deferred(ops), StepOutcome::Mem(op)) = (&mut *device, &outcome) {
            if op.space != Space::Shared {
                debug_assert_eq!(ops.len() - ops_before, op.accesses.len());
                if let Some(d) = op.dst {
                    for (defop, acc) in ops[ops_before..].iter_mut().zip(&op.accesses) {
                        defop.set_patch(PatchTarget {
                            warp: w,
                            lane: acc.lane as usize,
                            reg: d,
                        });
                    }
                }
            }
        }

        let mut new_requests = 0;
        match outcome {
            StepOutcome::Ready => {
                let lat = match class {
                    InstrClass::IntAlu => Some(self.cfg.alu_latency),
                    InstrClass::FpAlu => Some(self.cfg.fp_latency),
                    InstrClass::Sfu => Some(self.cfg.sfu_latency),
                    _ => None,
                };
                if let (Some(d), Some(lat)) = (dst, lat) {
                    self.scoreboard.reserve(w, d);
                    self.alu_wb.push(Reverse((now.get() + lat, w, d)));
                }
            }
            StepOutcome::Mem(op) => {
                *lsu_used = true;
                if op.space == Space::Shared {
                    if let Some(d) = op.dst {
                        self.scoreboard.reserve(w, d);
                        self.alu_wb
                            .push(Reverse((now.get() + self.cfg.shared_latency, w, d)));
                    }
                } else {
                    // Atomics are read-modify-writes: each lane's operation
                    // is a separate transaction that serializes at the
                    // memory partition (same-address atomics do not
                    // coalesce, unlike plain loads/stores).
                    let lines = if op.is_atomic {
                        op.accesses
                            .iter()
                            .map(|a| a.addr.align_down(self.granule))
                            .collect()
                    } else {
                        coalesce(&op.accesses, self.granule)
                    };
                    self.stats.transactions += lines.len() as u64;
                    if tracer.enabled() {
                        tracer.record(TraceEvent {
                            cycle: now.get(),
                            site: TraceSite::Sm(self.id.get()),
                            kind: EventKind::Coalesce {
                                warp: w as u32,
                                accesses: op.accesses.len() as u32,
                                lines: lines.len() as u32,
                            },
                        });
                    }
                    let pspace = match op.space {
                        Space::Global => PipelineSpace::Global,
                        Space::Local => PipelineSpace::Local,
                        Space::Shared => unreachable!("handled above"),
                    };
                    // Atomics need a response (they release a register), so
                    // they ride the load path; plain stores are fire-and-
                    // forget write-throughs.
                    let kind = if op.is_store && !op.is_atomic {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    let token = if kind == AccessKind::Load {
                        let token = self.next_token;
                        self.next_token += 1;
                        if let Some(d) = op.dst {
                            self.scoreboard.reserve(w, d);
                        }
                        self.pending_loads.insert(
                            token,
                            PendingLoad {
                                warp: w,
                                dst: op.dst,
                                pc: op.pc,
                                remaining: lines.len() as u32,
                                lines: lines.len() as u32,
                                issue: now,
                                stalls_at_issue: self.stats.stall_cycles,
                                stall_reasons_at_issue: self.stats.stalls,
                            },
                        );
                        slot.pending_ops += 1;
                        self.stats.global_loads += 1;
                        token
                    } else {
                        self.stats.global_stores += 1;
                        NO_TOKEN
                    };
                    for line in lines {
                        let id = RequestId::new(((self.id.get() as u64) << 40) | self.next_req_id);
                        self.next_req_id += 1;
                        let mut req = MemRequest::new(
                            id,
                            line,
                            self.granule as u32,
                            kind,
                            pspace,
                            self.id,
                            token,
                            now,
                        );
                        req.bypass_l1 = op.is_atomic;
                        self.front
                            .push(now, req)
                            .unwrap_or_else(|_| panic!("front capacity checked at ready"));
                        new_requests += 1;
                    }
                }
            }
            StepOutcome::Barrier => {
                let release = {
                    let cta = self.ctas[cta_index].as_mut().expect("live CTA");
                    cta.arrived += 1;
                    cta.arrived >= cta.live
                };
                if release {
                    self.release_cta_barrier(cta_index, w, &mut slot);
                }
            }
            StepOutcome::Finished => {
                let release = {
                    let cta = self.ctas[cta_index].as_mut().expect("live CTA");
                    cta.live -= 1;
                    cta.live > 0 && cta.arrived >= cta.live
                };
                if release {
                    self.release_cta_barrier(cta_index, w, &mut slot);
                }
            }
        }
        let _ = sink; // latency traces are recorded at writeback, not at issue
        self.slots[w] = Some(slot);
        new_requests
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes the SM's complete dynamic state: warp slots (each warp's
    /// functional state via [`WarpExec::encode_state`]), CTA runtimes with
    /// their shared-memory contents, the scoreboard, ALU writeback heap (in
    /// sorted order — the heap's internal layout is not deterministic), all
    /// memory-pipeline queues with absolute ready times, the MSHR table,
    /// pending-load bookkeeping (in token order) and statistics. Structural
    /// configuration (capacities, latencies) is *not* serialized — the GPU
    /// checkpoint stores the full [`GpuConfig`] once and rebuilds each SM
    /// from it before restoring.
    pub fn encode_state(&self, e: &mut Encoder) {
        e.usize(self.slots.len());
        for slot in &self.slots {
            match slot {
                None => e.bool(false),
                Some(s) => {
                    e.bool(true);
                    s.exec.encode_state(e);
                    e.usize(s.cta_index);
                    e.u64(s.age);
                    e.u32(s.pending_ops);
                }
            }
        }
        e.usize(self.ctas.len());
        for cta in &self.ctas {
            match cta {
                None => e.bool(false),
                Some(c) => {
                    e.bool(true);
                    e.bytes(&c.shared);
                    e.usize(c.slots.len());
                    for &s in &c.slots {
                        e.usize(s);
                    }
                    e.usize(c.live);
                    e.usize(c.arrived);
                }
            }
        }
        self.scoreboard.encode_state(e);
        let mut wb: Vec<(u64, usize, Reg)> = self.alu_wb.iter().map(|r| r.0).collect();
        wb.sort_unstable();
        e.usize(wb.len());
        for (at, warp, reg) in wb {
            e.u64(at);
            e.usize(warp);
            e.u32(u32::from(reg));
        }
        codec::encode_req_queue(e, &self.front);
        match &self.l1_cache {
            None => e.bool(false),
            Some(c) => {
                e.bool(true);
                c.encode_state(e);
            }
        }
        self.l1_mshr
            .encode_state_with(e, |req, e| req.encode_state(e));
        codec::encode_req_queue(e, &self.l1_hit_pipe);
        codec::encode_req_fifo(e, &self.miss_queue);
        codec::encode_req_queue(e, &self.fill_pipe);
        let mut tokens: Vec<u64> = self.pending_loads.keys().copied().collect();
        tokens.sort_unstable();
        e.usize(tokens.len());
        for t in tokens {
            let pl = &self.pending_loads[&t];
            e.u64(t);
            e.usize(pl.warp);
            e.opt_u64(pl.dst.map(u64::from));
            e.usize(pl.pc);
            e.u32(pl.remaining);
            e.u32(pl.lines);
            e.u64(pl.issue.get());
            e.u64(pl.stalls_at_issue);
            stats::encode_breakdown(e, &pl.stall_reasons_at_issue);
        }
        e.u64(self.next_token);
        e.u64(self.next_req_id);
        e.usize(self.last_issued);
        e.opt_u64(self.greedy.map(|g| g as u64));
        e.u64(self.age_counter);
        self.stats.encode_state(e);
    }

    /// Overwrites this SM's dynamic state with a decoded checkpoint.
    /// `kernel` supplies the shared kernel and parameters live warps
    /// re-attach to (`None` when the checkpoint holds no launch, in which
    /// case any live warp is rejected).
    ///
    /// # Errors
    ///
    /// Rejects structural mismatches with this SM's configuration (slot and
    /// CTA counts, queue capacities, L1 presence), out-of-range indices and
    /// duplicate tokens, and propagates decoder errors.
    pub fn restore_state(
        &mut self,
        d: &mut Decoder,
        kernel: Option<(&Arc<Kernel>, &Arc<[u64]>)>,
    ) -> Result<(), SnapshotError> {
        use SnapshotError::InvalidValue;
        let n_slots = self.slots.len();
        let n_ctas = self.ctas.len();
        if d.usize()? != n_slots {
            return Err(InvalidValue("warp slot count mismatch"));
        }
        for i in 0..n_slots {
            self.slots[i] = if d.bool()? {
                let Some((k, p)) = kernel else {
                    return Err(InvalidValue("live warp state without a launched kernel"));
                };
                let exec = WarpExec::decode(d, Arc::clone(k), Arc::clone(p))?;
                let cta_index = d.usize()?;
                if cta_index >= n_ctas {
                    return Err(InvalidValue("warp CTA index out of range"));
                }
                Some(WarpSlot {
                    exec,
                    cta_index,
                    age: d.u64()?,
                    pending_ops: d.u32()?,
                })
            } else {
                None
            };
        }
        if d.usize()? != n_ctas {
            return Err(InvalidValue("CTA slot count mismatch"));
        }
        for i in 0..n_ctas {
            self.ctas[i] = if d.bool()? {
                let shared = d.bytes()?.to_vec();
                let mut slot_ids = Vec::new();
                for _ in 0..d.usize()? {
                    let s = d.usize()?;
                    if s >= n_slots {
                        return Err(InvalidValue("CTA warp-slot index out of range"));
                    }
                    slot_ids.push(s);
                }
                let live = d.usize()?;
                let arrived = d.usize()?;
                if live > slot_ids.len() {
                    return Err(InvalidValue("CTA live-warp count exceeds its slots"));
                }
                Some(CtaRt {
                    shared,
                    slots: slot_ids,
                    live,
                    arrived,
                })
            } else {
                None
            };
        }
        self.scoreboard.restore_state(d)?;
        self.alu_wb.clear();
        for _ in 0..d.usize()? {
            let at = d.u64()?;
            let warp = d.usize()?;
            if warp >= n_slots {
                return Err(InvalidValue("writeback warp index out of range"));
            }
            let reg =
                Reg::try_from(d.u32()?).map_err(|_| InvalidValue("register number overflow"))?;
            self.alu_wb.push(Reverse((at, warp, reg)));
        }
        codec::restore_req_queue(&mut self.front, d, "front pipe occupancy exceeds capacity")?;
        match (d.bool()?, &mut self.l1_cache) {
            (true, Some(c)) => c.restore_state(d)?,
            (false, None) => {}
            _ => return Err(InvalidValue("L1 presence mismatch with configuration")),
        }
        self.l1_mshr.restore_state_with(d, MemRequest::decode)?;
        codec::restore_req_queue(
            &mut self.l1_hit_pipe,
            d,
            "L1 hit pipe occupancy exceeds capacity",
        )?;
        codec::restore_req_fifo(
            &mut self.miss_queue,
            d,
            "miss queue occupancy exceeds capacity",
        )?;
        codec::restore_req_queue(
            &mut self.fill_pipe,
            d,
            "fill pipe occupancy exceeds capacity",
        )?;
        self.pending_loads.clear();
        for _ in 0..d.usize()? {
            let token = d.u64()?;
            let warp = d.usize()?;
            if warp >= n_slots {
                return Err(InvalidValue("pending-load warp index out of range"));
            }
            let dst = match d.opt_u64()? {
                None => None,
                Some(v) => {
                    Some(Reg::try_from(v).map_err(|_| InvalidValue("register number overflow"))?)
                }
            };
            let pl = PendingLoad {
                warp,
                dst,
                pc: d.usize()?,
                remaining: d.u32()?,
                lines: d.u32()?,
                issue: Cycle::new(d.u64()?),
                stalls_at_issue: d.u64()?,
                stall_reasons_at_issue: stats::decode_breakdown(d)?,
            };
            if self.pending_loads.insert(token, pl).is_some() {
                return Err(InvalidValue("duplicate pending-load token"));
            }
        }
        self.next_token = d.u64()?;
        self.next_req_id = d.u64()?;
        let last_issued = d.usize()?;
        if last_issued >= n_slots {
            return Err(InvalidValue("scheduler rotation index out of range"));
        }
        self.last_issued = last_issued;
        self.greedy = match d.opt_u64()? {
            None => None,
            Some(g) => {
                let g = g as usize;
                if g >= n_slots {
                    return Err(InvalidValue("greedy warp index out of range"));
                }
                Some(g)
            }
        };
        self.age_counter = d.u64()?;
        self.stats = SmStats::decode(d)?;
        Ok(())
    }

    /// Releases every warp of the CTA waiting at the barrier. `current` (the
    /// warp being issued, temporarily taken out of `slots`) is handled via
    /// its moved-out slot.
    fn release_cta_barrier(&mut self, cta_index: usize, current: usize, slot: &mut WarpSlot) {
        let cta = self.ctas[cta_index].as_mut().expect("live CTA");
        cta.arrived = 0;
        let slots = cta.slots.clone();
        for s in slots {
            if s == current {
                if slot.exec.at_barrier() {
                    slot.exec.release_barrier();
                }
            } else if let Some(other) = self.slots[s].as_mut() {
                if other.exec.at_barrier() {
                    other.exec.release_barrier();
                }
            }
        }
    }
}

/// Functional memory backend used during issue: global space resolves to
/// device memory, shared space to the executing CTA's scratchpad.
struct IssueBackend<'a> {
    device: &'a mut gpu_mem::DeviceMemory,
    shared: &'a mut [u8],
}

impl MemBackend for IssueBackend<'_> {
    fn load(&mut self, space: Space, addr: gpu_types::Addr, width: gpu_isa::Width) -> u64 {
        match space {
            Space::Shared => {
                let mut v = 0u64;
                for i in 0..width.bytes() {
                    let idx = (addr.get() + i) as usize;
                    v |= (*self.shared.get(idx).unwrap_or(&0) as u64) << (8 * i);
                }
                v
            }
            _ => self.device.read_le(addr, width.bytes()),
        }
    }

    fn store(&mut self, space: Space, addr: gpu_types::Addr, width: gpu_isa::Width, value: u64) {
        match space {
            Space::Shared => {
                for i in 0..width.bytes() {
                    let idx = (addr.get() + i) as usize;
                    if let Some(b) = self.shared.get_mut(idx) {
                        *b = (value >> (8 * i)) as u8;
                    }
                }
            }
            _ => self.device.write_le(addr, width.bytes(), value),
        }
    }

    fn atomic_add(&mut self, addr: gpu_types::Addr, width: gpu_isa::Width, value: u64) -> u64 {
        self.device.fetch_add(addr, width.bytes(), value)
    }
}

/// Functional memory backend used during a *parallel* issue stage: shared
/// space resolves to the executing CTA's scratchpad immediately (CTA-private
/// state, touched only by this SM), while global/local-space accesses are
/// buffered as [`DeferredDeviceOp`]s for an in-order replay. Loads and
/// atomics return a placeholder `0`; the replay patches the real value into
/// the destination register before anything can read it (the scoreboard
/// holds that register until the memory response returns).
struct DeferBackend<'a> {
    ops: &'a mut Vec<DeferredDeviceOp>,
    shared: &'a mut [u8],
}

impl MemBackend for DeferBackend<'_> {
    fn load(&mut self, space: Space, addr: gpu_types::Addr, width: gpu_isa::Width) -> u64 {
        match space {
            Space::Shared => {
                let mut v = 0u64;
                for i in 0..width.bytes() {
                    let idx = (addr.get() + i) as usize;
                    v |= (*self.shared.get(idx).unwrap_or(&0) as u64) << (8 * i);
                }
                v
            }
            _ => {
                self.ops.push(DeferredDeviceOp::Load {
                    addr,
                    width,
                    patch: None,
                });
                0
            }
        }
    }

    fn store(&mut self, space: Space, addr: gpu_types::Addr, width: gpu_isa::Width, value: u64) {
        match space {
            Space::Shared => {
                for i in 0..width.bytes() {
                    let idx = (addr.get() + i) as usize;
                    if let Some(b) = self.shared.get_mut(idx) {
                        *b = (value >> (8 * i)) as u8;
                    }
                }
            }
            _ => self
                .ops
                .push(DeferredDeviceOp::Store { addr, width, value }),
        }
    }

    fn atomic_add(&mut self, addr: gpu_types::Addr, width: gpu_isa::Width, value: u64) -> u64 {
        self.ops.push(DeferredDeviceOp::Atomic {
            addr,
            width,
            value,
            patch: None,
        });
        0
    }
}
