//! Execution-driven GPU timing simulator.
//!
//! This crate wires the substrates of the `gpu-latency` workspace — the
//! kernel IR and functional SIMT executor (`gpu-isa`), caches/MSHRs/DRAM
//! (`gpu-mem`) and the crossbar interconnect (`gpu-icnt`) — into a
//! cycle-level GPU in the spirit of GPGPU-Sim: SIMT cores with warp
//! schedulers and scoreboards, per-SM L1 data caches, a two-network
//! crossbar, and memory partitions with ROP pipelines, L2 slices and
//! FR-FCFS DRAM channels.
//!
//! Every memory request carries a stamp [`gpu_mem::Timeline`]; with tracing
//! enabled ([`Gpu::set_tracing`]) the simulator records the completed
//! timelines and per-load exposure data that the `latency-core` crate turns
//! into the paper's Figure 1 and Figure 2.
//!
//! A cycle-level invariant [`Sanitizer`] (on by default via
//! [`GpuConfig::sanitize`]) audits the model as it runs: request
//! conservation across all queues/MSHRs/networks, queue-capacity bounds,
//! stamp monotonicity and stage-sum consistency, and end-of-run MSHR-leak
//! detection. Violations accumulate in a queryable report
//! ([`Gpu::sanitizer`]) and fail the run in debug builds.
//!
//! # Examples
//!
//! See [`Gpu`] for an end-to-end kernel launch.

mod clock;
pub mod coalesce;
mod codec;
mod config;
mod exec_par;
mod gpu;
mod partition;
mod sanitizer;
mod scoreboard;
mod sm;
mod stats;

pub use clock::{ClockedComponent, TickSchedule, TickStage};
pub use coalesce::coalesce;
pub use config::{ConfigError, GpuConfig, L1Config, L2Config, SchedPolicy, WritePolicy};
pub use exec_par::{par_for_each_mut, TickPool};
pub use gpu::{CheckpointPolicy, Gpu, RunOutcome, SimError};

// Architecture-description types, re-exported so downstream crates can build
// and inspect configs declaratively without naming `gpu-arch` directly.
pub use gpu_arch::{
    ArchDesc, CacheGeom, FabricDesc, LevelDesc, LevelKind, MemDesc, Routing, SmDesc,
};
pub use partition::Partition;
pub use sanitizer::{Sanitizer, Site, Violation};
pub use scoreboard::Scoreboard;
pub use sm::{DeferredDeviceOp, DeviceAccess, PatchTarget, Sm};
pub use stats::{CompletedRequest, LoadInstrRecord, RunSummary, SmStats, TraceSink};

// The host-side self-profiler (`gpu-profile`), re-exported whole: the
// cycle loop, the parallel executors and the bench harness all record into
// its process-global tables (see `gpu_trace::profile`).
pub use gpu_trace::profile;

// Observability types, re-exported so downstream crates can configure and
// drain the tracer without naming `gpu-trace` directly.
pub use gpu_trace::{
    CounterKind, CounterSample, CounterSummary, EventKind, MetricsReport, StallBreakdown,
    StallReason, TraceConfig, TraceData, TraceEvent, TraceSite, Tracer,
};
