//! Memory-partition timing model: ROP pipeline → L2 slice(s) → DRAM channel.
//!
//! Each partition owns the stages behind the interconnect for its slice of
//! the address space. The stamps recorded here delimit the paper's
//! `ICNTtoROP`, `ROPtoL2Q`, `L2QtoDRAMQ`, `DRAM(QtoSch)` and `DRAM(SchToA)`
//! latency components.
//!
//! Modern-generation descriptions hash-interleave the L2 across several
//! independent slices behind the partition's shared ROP and DRAM channel
//! (see [`gpu_arch::slice_of`]); each slice owns its own input queue, tag
//! array, MSHR table and hit pipe, and the slices tick in index order so
//! multi-slice runs stay deterministic. A single-slice partition is
//! bit-identical to the historical monolithic model.

use std::collections::VecDeque;

use gpu_arch::{slice_of, LevelDesc, LevelKind};
use gpu_mem::{
    AccessKind, AddressMap, Cache, DramController, DramEventKind, MemRequest, MshrTable, RequestId,
    Stamp,
};
use gpu_snapshot::{Decoder, Encoder, SnapshotError};
use gpu_trace::{EventKind, QueueKind, TraceEvent, TraceSite, Tracer};
use gpu_types::{BoundedQueue, Cycle, DelayQueue, PartitionId};

use crate::codec;
use crate::config::{GpuConfig, WritePolicy};
use crate::sanitizer::{Sanitizer, Site, Violation};

/// Token marking internally-generated dirty-eviction writebacks (they are
/// not tracked in the GPU's outstanding-request accounting).
const EVICTION_TOKEN: u64 = u64::MAX - 1;

/// One independent L2 bank: input queue, tag array, MSHRs and hit pipe.
/// A classic monolithic L2 is exactly one of these.
#[derive(Debug)]
struct L2Slice {
    queue: BoundedQueue<MemRequest>,
    cache: Option<Cache>,
    mshr: MshrTable<MemRequest>,
    hit_pipe: DelayQueue<MemRequest>,
}

/// One memory partition (ROP + L2 slices + DRAM channel).
#[derive(Debug)]
pub struct Partition {
    id: PartitionId,
    line_size: u64,
    /// Machine-wide memory-transaction granule (sector size when sectored,
    /// else the line size); cache lines and MSHR entries are keyed by it.
    granule: u64,
    /// The partition-side cache-level descriptor (cached at construction;
    /// structural, not serialized). Audit labels derive from its kind.
    l2_desc: LevelDesc,
    write_policy: WritePolicy,
    next_eviction_id: u64,
    rop: DelayQueue<MemRequest>,
    slices: Vec<L2Slice>,
    dram: DramController,
    returns: VecDeque<MemRequest>,
    stores_completed_total: u64,
    stores_retired_here: u64,
    evictions_in_flight: u64,
}

impl Partition {
    /// Creates a partition per the configuration.
    pub fn new(id: PartitionId, cfg: &GpuConfig, map: AddressMap) -> Self {
        let l2_desc = cfg.level_desc(LevelKind::L2);
        let slices = (0..l2_desc.slices.max(1))
            .map(|_| {
                let (cache, hit_latency) = match l2_desc.geom {
                    Some(g) => (
                        Some(Cache::with_sectors(g.cache, g.sector_bytes)),
                        g.hit_latency,
                    ),
                    None => (None, 0),
                };
                L2Slice {
                    queue: BoundedQueue::new(l2_desc.queue),
                    cache,
                    mshr: MshrTable::new(l2_desc.mshr_config()),
                    hit_pipe: DelayQueue::new(64, hit_latency),
                }
            })
            .collect();
        Partition {
            id,
            line_size: cfg.line_size,
            granule: cfg.transaction_granule(),
            l2_desc,
            write_policy: l2_desc.write_policy,
            next_eviction_id: 0,
            rop: DelayQueue::new(cfg.rop_queue, cfg.rop_latency),
            slices,
            dram: DramController::new(cfg.dram, map),
            returns: VecDeque::new(),
            stores_completed_total: 0,
            stores_retired_here: 0,
            evictions_in_flight: 0,
        }
    }

    /// This partition's id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// The slice serving `addr` (always 0 on a single-slice partition).
    fn slice_index(&self, addr: gpu_types::Addr) -> usize {
        slice_of(addr.get(), self.line_size, self.slices.len())
    }

    /// Returns `true` if the ROP pipeline can accept another request from
    /// the interconnect.
    pub fn can_accept(&self) -> bool {
        !self.rop.is_full()
    }

    /// Accepts a request ejected from the request network.
    ///
    /// # Panics
    ///
    /// Panics if the ROP queue is full; check [`Partition::can_accept`].
    pub fn accept(&mut self, mut req: MemRequest, now: Cycle, tracer: &mut Tracer) {
        req.timeline.record(Stamp::RopEnter, now);
        if tracer.enabled() {
            tracer.record(TraceEvent {
                cycle: now.get(),
                site: TraceSite::Partition(self.id.get()),
                kind: EventKind::QueueEnter {
                    queue: QueueKind::Rop,
                    req: req.id.get(),
                },
            });
        }
        self.rop
            .push(now, req)
            .unwrap_or_else(|_| panic!("ROP overflow; can_accept not checked"));
    }

    /// Enables or disables the DRAM controller's command event log (drained
    /// into the tracer each tick).
    pub fn set_event_log(&mut self, on: bool) {
        self.dram.set_event_log(on);
    }

    // ---- counter gauges --------------------------------------------------

    /// Requests in the ROP pipeline (counter gauge).
    pub fn rop_depth(&self) -> usize {
        self.rop.len()
    }

    /// Requests in the L2 input queues, summed over slices (counter gauge).
    pub fn l2_queue_depth(&self) -> usize {
        self.slices.iter().map(|s| s.queue.len()).sum()
    }

    /// Occupied L2 MSHR entries, summed over slices (counter gauge).
    pub fn l2_mshr_occupancy(&self) -> usize {
        self.slices.iter().map(|s| s.mshr.len()).sum()
    }

    /// Requests waiting in the DRAM controller queue (counter gauge).
    pub fn dram_queue_depth(&self) -> usize {
        self.dram.queued()
    }

    /// L2 hit/miss counts summed over slices, if an L2 exists.
    pub fn l2_counts(&self) -> Option<(u64, u64)> {
        if self.slices.iter().all(|s| s.cache.is_none()) {
            return None;
        }
        let mut hits = 0;
        let mut misses = 0;
        for c in self.slices.iter().filter_map(|s| s.cache.as_ref()) {
            hits += c.hits();
            misses += c.misses();
        }
        Some((hits, misses))
    }

    /// DRAM statistics.
    pub fn dram_stats(&self) -> gpu_mem::DramStats {
        self.dram.stats()
    }

    /// Total store requests retired at this partition.
    pub fn stores_completed(&self) -> u64 {
        self.stores_completed_total
    }

    /// Oldest response waiting to enter the reply network.
    pub fn peek_return(&self) -> Option<&MemRequest> {
        self.returns.front()
    }

    /// Removes the oldest response for reply-network injection.
    pub fn pop_return(&mut self) -> Option<MemRequest> {
        self.returns.pop_front()
    }

    /// Returns `true` when nothing is queued, in cache flight, in DRAM, or
    /// awaiting return.
    pub fn is_idle(&self) -> bool {
        self.rop.is_empty()
            && self.slices.iter().all(|s| {
                s.queue.is_empty()
                    && s.cache.as_ref().is_none_or(|c| c.pending_writebacks() == 0)
                    && s.hit_pipe.is_empty()
                    && s.mshr.is_empty()
            })
            && self.dram.is_idle()
            && self.returns.is_empty()
    }

    // ---- sanitizer hooks -------------------------------------------------

    /// SM-originated memory requests currently inside this partition: ROP
    /// pipe, L2 input queues, hit pipes, MSHR merge lists, DRAM controller
    /// and the return queue. Internally-generated eviction writebacks share
    /// the DRAM queue but are not part of the GPU's outstanding accounting,
    /// so they are subtracted out.
    pub fn in_flight_requests(&self) -> u64 {
        let sliced: usize = self
            .slices
            .iter()
            .map(|s| s.queue.len() + s.hit_pipe.len() + s.mshr.waiters())
            .sum();
        (self.rop.len() + sliced + self.dram.queued() + self.dram.in_service() + self.returns.len())
            as u64
            - self.evictions_in_flight
    }

    /// Per-cycle structural audit: queue occupancies against their
    /// capacities, MSHR occupancy against its configuration. A single-slice
    /// partition reports under the legacy level labels; slices of a
    /// multi-slice L2 report under their own static labels.
    pub fn audit(&self, san: &mut Sanitizer) {
        let site = Site::Partition(self.id.index());
        san.check_queue(site, "rop", self.rop.len(), self.rop.capacity());
        let sliced = self.slices.len() > 1;
        for (i, slice) in self.slices.iter().enumerate() {
            let (queue_label, hit_label) = if sliced {
                (
                    self.l2_desc.kind.sliced_queue_label(i),
                    self.l2_desc.kind.sliced_hit_pipe_label(i),
                )
            } else {
                (
                    self.l2_desc.kind.queue_label(),
                    self.l2_desc.kind.hit_pipe_label(),
                )
            };
            san.check_queue(site, queue_label, slice.queue.len(), slice.queue.capacity());
            san.check_queue(
                site,
                hit_label,
                slice.hit_pipe.len(),
                slice.hit_pipe.capacity(),
            );
            san.check_mshr_occupancy(
                site,
                slice.mshr.len(),
                slice.mshr.max_list_len(),
                slice.mshr.config(),
            );
        }
    }

    /// End-of-run audit: a drained partition may hold no MSHR entries. The
    /// idle check already covers this (a leak here hangs the run as a
    /// timeout), but on timeout the audit names the leaked lines.
    pub fn audit_drained(&self, san: &mut Sanitizer) {
        for slice in &self.slices {
            if !slice.mshr.is_empty() {
                san.record(Violation::MshrLeak {
                    site: Site::Partition(self.id.index()),
                    lines: slice.mshr.pending_lines(),
                });
            }
        }
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes the partition's complete dynamic state: the ROP pipe with
    /// absolute ready times, then per slice (in index order) the input
    /// queue, cache arrays, MSHR table and hit pipe, then the DRAM
    /// controller (banks, scheduler queue, stats) and the return queue.
    /// Structural configuration is *not* serialized — the GPU checkpoint
    /// stores the full config once and rebuilds each partition from it
    /// before restoring.
    pub fn encode_state(&self, e: &mut Encoder) {
        e.u64(self.next_eviction_id);
        codec::encode_req_queue(e, &self.rop);
        for slice in &self.slices {
            e.usize(slice.queue.len());
            for req in slice.queue.iter() {
                req.encode_state(e);
            }
            match &slice.cache {
                None => e.bool(false),
                Some(c) => {
                    e.bool(true);
                    c.encode_state(e);
                }
            }
            slice
                .mshr
                .encode_state_with(e, |req, e| req.encode_state(e));
            codec::encode_req_queue(e, &slice.hit_pipe);
        }
        self.dram.encode_state(e);
        e.usize(self.returns.len());
        for req in &self.returns {
            req.encode_state(e);
        }
        e.u64(self.stores_completed_total);
        e.u64(self.stores_retired_here);
        e.u64(self.evictions_in_flight);
    }

    /// Overwrites this partition's dynamic state with a decoded checkpoint.
    ///
    /// # Errors
    ///
    /// Rejects structural mismatches with this partition's configuration
    /// (queue capacities, L2 presence, cache geometry) and propagates
    /// decoder errors.
    pub fn restore_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        use SnapshotError::InvalidValue;
        self.next_eviction_id = d.u64()?;
        codec::restore_req_queue(&mut self.rop, d, "ROP pipe occupancy exceeds capacity")?;
        for slice in &mut self.slices {
            let mut queue = BoundedQueue::new(slice.queue.capacity());
            for _ in 0..d.usize()? {
                queue
                    .push(MemRequest::decode(d)?)
                    .map_err(|_| InvalidValue("L2 input queue occupancy exceeds capacity"))?;
            }
            slice.queue = queue;
            match (d.bool()?, &mut slice.cache) {
                (true, Some(c)) => c.restore_state(d)?,
                (false, None) => {}
                _ => return Err(InvalidValue("L2 presence mismatch with configuration")),
            }
            slice.mshr.restore_state_with(d, MemRequest::decode)?;
            codec::restore_req_queue(
                &mut slice.hit_pipe,
                d,
                "L2 hit pipe occupancy exceeds capacity",
            )?;
        }
        self.dram.restore_state(d)?;
        self.returns.clear();
        for _ in 0..d.usize()? {
            self.returns.push_back(MemRequest::decode(d)?);
        }
        self.stores_completed_total = d.u64()?;
        self.stores_retired_here = d.u64()?;
        self.evictions_in_flight = d.u64()?;
        Ok(())
    }

    /// Advances the partition one cycle. Returns the number of store
    /// requests that retired this cycle (for global outstanding tracking).
    pub fn tick(&mut self, now: Cycle, tracer: &mut Tracer) -> u64 {
        let mut stores_done = 0;
        let site = TraceSite::Partition(self.id.get());

        // 0. Dirty victims of the (write-back) L2 become DRAM writes,
        //    drained slice by slice in index order.
        for i in 0..self.slices.len() {
            let Some(l2) = self.slices[i].cache.as_mut() else {
                continue;
            };
            while self.dram.can_accept() {
                let Some(line) = l2.pop_writeback() else {
                    break;
                };
                let id = RequestId::new((u64::from(self.id.get()) << 32) | self.next_eviction_id);
                self.next_eviction_id += 1;
                let wb = MemRequest::new(
                    id,
                    line,
                    self.line_size as u32,
                    AccessKind::Store,
                    gpu_mem::PipelineSpace::Global,
                    gpu_types::SmId::new(0),
                    EVICTION_TOKEN,
                    now,
                );
                self.dram.enqueue(wb, now);
                self.evictions_in_flight += 1;
            }
        }

        // 1. DRAM completions: stores retire; loads fill their slice's L2,
        //    wake MSHR waiters, and join the return flow.
        let dram_done = self.dram.tick(now);
        if tracer.enabled() {
            for e in self.dram.drain_events() {
                let kind = match e.kind {
                    DramEventKind::Activate => EventKind::RowActivate {
                        bank: e.bank,
                        row: e.row,
                    },
                    DramEventKind::Precharge => EventKind::RowPrecharge {
                        bank: e.bank,
                        row: e.row,
                    },
                    DramEventKind::Schedule => EventKind::QueueLeave {
                        queue: QueueKind::DramController,
                        req: e.id.map_or(0, |id| id.get()),
                    },
                };
                tracer.record(TraceEvent {
                    cycle: e.at.get(),
                    site,
                    kind,
                });
            }
        }
        for req in dram_done {
            if req.kind == AccessKind::Store {
                if req.token != EVICTION_TOKEN {
                    stores_done += 1;
                } else {
                    self.evictions_in_flight -= 1;
                }
                continue;
            }
            let idx = self.slice_index(req.addr);
            let granule = self.granule;
            let slice = &mut self.slices[idx];
            if let Some(l2) = slice.cache.as_mut() {
                let line = req.addr.align_down(granule);
                l2.fill(line);
                for mut w in slice.mshr.fill(line) {
                    // Merged waiters "ride along" with the primary fetch;
                    // their DRAM wait is attributed to scheduling time.
                    w.timeline.record(Stamp::DramScheduled, now);
                    w.timeline.record(Stamp::DramDone, now);
                    self.returns.push_back(w);
                }
            }
            self.returns.push_back(req);
        }

        // 2. Hit pipes: one data return per slice per cycle (a multi-slice
        //    L2 has genuinely more return bandwidth).
        for i in 0..self.slices.len() {
            if let Some(req) = self.slices[i].hit_pipe.pop_ready(now) {
                self.returns.push_back(req);
            }
        }

        // 3. L2 access stage: one request per slice per cycle from each
        //    input queue, in slice index order (DRAM acceptance is
        //    arbitrated by that order, keeping runs deterministic).
        for i in 0..self.slices.len() {
            self.tick_l2_slice(i, now, tracer);
        }

        // 4. ROP pipeline exit into the serving slice's input queue.
        if let Some(head) = self.rop.front_ready(now) {
            let idx = self.slice_index(head.addr);
            if !self.slices[idx].queue.is_full() {
                let mut req = self.rop.pop_ready(now).expect("front was ready");
                req.timeline.record(Stamp::L2QueueEnter, now);
                if tracer.enabled() {
                    let id = req.id.get();
                    tracer.record(TraceEvent {
                        cycle: now.get(),
                        site,
                        kind: EventKind::QueueLeave {
                            queue: QueueKind::Rop,
                            req: id,
                        },
                    });
                    tracer.record(TraceEvent {
                        cycle: now.get(),
                        site,
                        kind: EventKind::QueueEnter {
                            queue: QueueKind::L2Input,
                            req: id,
                        },
                    });
                }
                self.slices[idx].queue.push(req).expect("space checked");
            }
        }

        // Stores retired at a write-back L2 this cycle (stage 3) are
        // reported in the same tick so the global outstanding counter never
        // sees a retired-but-unreported request.
        stores_done += std::mem::take(&mut self.stores_retired_here);
        self.stores_completed_total += stores_done;
        stores_done
    }

    fn tick_l2_slice(&mut self, idx: usize, now: Cycle, tracer: &mut Tracer) {
        let granule = self.granule;
        let write_policy = self.write_policy;
        let slice = &mut self.slices[idx];
        let Some(head) = slice.queue.front() else {
            return;
        };
        let site = TraceSite::Partition(self.id.get());
        // MSHR entries and cache lines are keyed at the transaction granule
        // (the sector on sectored machines, else the line); the coalescer
        // always sends aligned transactions, but align defensively.
        let addr = head.addr.align_down(granule);
        let kind = head.kind;
        let head_id = head.id.get();
        // Emitted once a branch below actually pops the head.
        let leave = EventKind::QueueLeave {
            queue: QueueKind::L2Input,
            req: head_id,
        };
        let dram_enter = EventKind::QueueEnter {
            queue: QueueKind::DramController,
            req: head_id,
        };

        let Some(l2) = slice.cache.as_mut() else {
            // No L2 (Tesla-style): straight to DRAM.
            if self.dram.can_accept() {
                let req = slice.queue.pop().expect("head exists");
                self.dram.enqueue(req, now);
                if tracer.enabled() {
                    tracer.record(TraceEvent {
                        cycle: now.get(),
                        site,
                        kind: leave,
                    });
                    tracer.record(TraceEvent {
                        cycle: now.get(),
                        site,
                        kind: dram_enter,
                    });
                }
            }
            return;
        };

        if kind == AccessKind::Store {
            match write_policy {
                WritePolicy::WriteThrough => {
                    // Write-through, no-allocate, write-evict.
                    if self.dram.can_accept() {
                        l2.store_invalidate(addr);
                        let req = slice.queue.pop().expect("head exists");
                        self.dram.enqueue(req, now);
                        if tracer.enabled() {
                            tracer.record(TraceEvent {
                                cycle: now.get(),
                                site,
                                kind: leave,
                            });
                            tracer.record(TraceEvent {
                                cycle: now.get(),
                                site,
                                kind: dram_enter,
                            });
                        }
                    }
                }
                WritePolicy::WriteBack => {
                    // Write-allocate (tag-only, no fetch): the store
                    // completes here; dirty victims join the writeback
                    // queue drained in `tick`.
                    if !l2.store_mark_dirty(addr) && !l2.allocate_dirty(addr) {
                        return; // all ways reserved: retry next cycle
                    }
                    let _ = slice.queue.pop().expect("head exists");
                    self.stores_retired_here += 1;
                    if tracer.enabled() {
                        tracer.record(TraceEvent {
                            cycle: now.get(),
                            site,
                            kind: leave,
                        });
                    }
                }
            }
            return;
        }

        if l2.probe(addr) {
            let req = slice.queue.pop().expect("head exists");
            let _ = l2.load(addr); // records the hit
            slice
                .hit_pipe
                .push(now, req)
                .expect("hit pipe sized for the input queue");
            if tracer.enabled() {
                tracer.record(TraceEvent {
                    cycle: now.get(),
                    site,
                    kind: leave,
                });
            }
        } else if slice.mshr.is_pending(addr) {
            if slice.mshr.can_merge(addr) {
                let mut req = slice.queue.pop().expect("head exists");
                let _ = l2.load(addr); // records the miss
                req.timeline.record(Stamp::DramQueueEnter, now);
                slice
                    .mshr
                    .try_merge(addr, req)
                    .expect("merge space checked");
                if tracer.enabled() {
                    tracer.record(TraceEvent {
                        cycle: now.get(),
                        site,
                        kind: leave,
                    });
                    tracer.record(TraceEvent {
                        cycle: now.get(),
                        site,
                        kind: EventKind::MshrMerge { line: addr.get() },
                    });
                }
            }
        } else {
            if !slice.mshr.can_allocate() || !self.dram.can_accept() {
                return;
            }
            if !l2.reserve(addr) {
                return;
            }
            let req = slice.queue.pop().expect("head exists");
            let _ = l2.load(addr); // records the miss
            assert!(slice.mshr.allocate(addr), "capacity checked");
            self.dram.enqueue(req, now);
            if tracer.enabled() {
                tracer.record(TraceEvent {
                    cycle: now.get(),
                    site,
                    kind: leave,
                });
                tracer.record(TraceEvent {
                    cycle: now.get(),
                    site,
                    kind: EventKind::MshrAllocate { line: addr.get() },
                });
                tracer.record(TraceEvent {
                    cycle: now.get(),
                    site,
                    kind: dram_enter,
                });
            }
        }
    }
}
