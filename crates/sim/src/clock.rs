//! The explicit tick schedule and the [`ClockedComponent`] trait.
//!
//! Historically the per-cycle stage wiring lived as hand-ordered code spread
//! across `gpu.rs`, `sm.rs` and `partition.rs`. It now lives in one place: a
//! [`TickSchedule`] derived from the machine description lists the stages a
//! cycle executes, in order, and [`crate::Gpu::tick`] is a plain interpreter
//! over that list. The order encodes the same-cycle visibility rules of the
//! model (partitions drain DRAM before replies inject; SMs eject replies
//! before issuing; the audit sees the machine between cycles), so the
//! schedule is deterministic by construction — two GPUs built from the same
//! description execute identical stage sequences.
//!
//! [`ClockedComponent`] is the uniform surface the cycle loop and the
//! sanitizer use to treat SMs, memory partitions and the two crossbar
//! networks alike: idleness, request occupancy, and the structural audits.
//! Adding a component kind to the machine means implementing this trait and
//! placing its stage in the schedule — not editing three files.

use gpu_icnt::Crossbar;
use gpu_mem::MemRequest;

use crate::config::GpuConfig;
use crate::partition::Partition;
use crate::sanitizer::Sanitizer;
use crate::sm::Sm;

/// One stage of the per-cycle schedule. Stages are `Copy` and carry no
/// payload: the schedule is pure control flow, all state lives on the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickStage {
    /// Open both crossbar cycles (per-port injection budgets reset).
    BeginNetworks,
    /// Tick every memory partition: DRAM completions, L2 access, ROP exit.
    TickPartitions,
    /// Inject partition returns into the reply network.
    InjectReplies,
    /// Eject the request network into partition ROP pipelines.
    EjectRequests,
    /// Tick every SM: writeback, reply ejection, L1 access, miss injection,
    /// issue, CTA retirement.
    TickSms,
    /// Dispatch pending CTAs onto free SMs (round-robin).
    DispatchCtas,
    /// Cycle-level invariant sweep (present only when the sanitizer is on).
    AuditInvariants,
    /// Counter sampling at the tracer's interval (the stage is always
    /// scheduled; whether a sample fires is the tracer's runtime decision,
    /// since event tracing can be toggled mid-run).
    SampleCounters,
    /// Advance the global cycle counter. Always last.
    AdvanceClock,
}

/// The deterministic per-cycle stage list, derived from the machine
/// description at construction and fixed for the GPU's lifetime.
#[derive(Debug, Clone)]
pub struct TickSchedule {
    stages: Vec<TickStage>,
}

impl TickSchedule {
    /// Derives the schedule for a machine. The stage order is structural —
    /// it encodes the model's same-cycle visibility rules — while the
    /// description decides which optional stages exist (the invariant audit
    /// runs only on sanitizing machines; `sanitize` is fixed at
    /// construction, unlike tracing).
    pub fn derive(cfg: &GpuConfig) -> Self {
        let mut stages = vec![
            TickStage::BeginNetworks,
            TickStage::TickPartitions,
            TickStage::InjectReplies,
            TickStage::EjectRequests,
            TickStage::TickSms,
            TickStage::DispatchCtas,
        ];
        if cfg.sanitize {
            stages.push(TickStage::AuditInvariants);
        }
        stages.push(TickStage::SampleCounters);
        stages.push(TickStage::AdvanceClock);
        TickSchedule { stages }
    }

    /// Number of stages per cycle.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if the schedule has no stages (never the case for a
    /// derived schedule).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stage(&self, i: usize) -> TickStage {
        self.stages[i]
    }

    /// The full stage list, in execution order.
    pub fn stages(&self) -> &[TickStage] {
        &self.stages
    }
}

/// A clocked hardware component the cycle loop and the sanitizer can treat
/// uniformly: it can be empty, it holds some number of in-flight
/// SM-originated requests, and it can be audited per-cycle and at drain.
pub trait ClockedComponent {
    /// Returns `true` when the component holds no work.
    fn is_idle(&self) -> bool;

    /// SM-originated memory requests currently inside this component
    /// (feeds the global conservation check).
    fn in_flight_requests(&self) -> u64;

    /// Per-cycle structural audit (queue and MSHR capacity checks).
    /// Components without audited structures keep the default no-op.
    fn audit(&self, _san: &mut Sanitizer) {}

    /// End-of-run audit after a drained run (leak detection). Components
    /// that cannot leak keep the default no-op.
    fn audit_drained(&self, _san: &mut Sanitizer) {}
}

impl ClockedComponent for Sm {
    fn is_idle(&self) -> bool {
        Sm::is_idle(self)
    }

    fn in_flight_requests(&self) -> u64 {
        Sm::in_flight_requests(self)
    }

    fn audit(&self, san: &mut Sanitizer) {
        Sm::audit(self, san);
    }

    fn audit_drained(&self, san: &mut Sanitizer) {
        Sm::audit_drained(self, san);
    }
}

impl ClockedComponent for Partition {
    fn is_idle(&self) -> bool {
        Partition::is_idle(self)
    }

    fn in_flight_requests(&self) -> u64 {
        Partition::in_flight_requests(self)
    }

    fn audit(&self, san: &mut Sanitizer) {
        Partition::audit(self, san);
    }

    fn audit_drained(&self, san: &mut Sanitizer) {
        Partition::audit_drained(self, san);
    }
}

// The crossbars participate in idleness and conservation; their capacity
// bounds are enforced by `can_inject`, so the audits stay no-ops.
impl ClockedComponent for Crossbar<MemRequest> {
    fn is_idle(&self) -> bool {
        Crossbar::is_idle(self)
    }

    fn in_flight_requests(&self) -> u64 {
        self.in_flight() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_includes_audit_only_when_sanitizing() {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.sanitize = true;
        let with = TickSchedule::derive(&cfg);
        assert!(with.stages().contains(&TickStage::AuditInvariants));
        cfg.sanitize = false;
        let without = TickSchedule::derive(&cfg);
        assert!(!without.stages().contains(&TickStage::AuditInvariants));
        assert_eq!(with.len(), without.len() + 1);
    }

    #[test]
    fn schedule_order_is_structural() {
        let s = TickSchedule::derive(&GpuConfig::fermi_gf100());
        assert_eq!(s.stage(0), TickStage::BeginNetworks);
        assert_eq!(s.stage(s.len() - 1), TickStage::AdvanceClock);
        let pos = |t: TickStage| s.stages().iter().position(|&x| x == t).unwrap();
        // Partitions drain before replies inject; SMs run after ejection;
        // the audit sees the machine after all components moved.
        assert!(pos(TickStage::TickPartitions) < pos(TickStage::InjectReplies));
        assert!(pos(TickStage::EjectRequests) < pos(TickStage::TickSms));
        assert!(pos(TickStage::TickSms) < pos(TickStage::AuditInvariants));
    }
}
