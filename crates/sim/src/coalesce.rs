//! Memory-access coalescing.
//!
//! Merges a warp's per-lane accesses into the minimal set of line-sized
//! memory transactions, following compute-capability-2.x rules: one
//! transaction per distinct cache line touched by the active lanes.

use gpu_isa::LaneAccess;
use gpu_types::Addr;

/// Coalesces per-lane accesses into unique line-aligned transaction
/// addresses, sorted ascending.
///
/// Accesses that straddle a line boundary contribute both lines (possible
/// for 8-byte accesses that are only 4-byte aligned).
///
/// # Panics
///
/// Panics if `line_size` is not a power of two.
///
/// # Examples
///
/// ```
/// use gpu_sim::coalesce;
/// use gpu_isa::{LaneAccess, Width};
/// use gpu_types::Addr;
///
/// // 32 consecutive 4-byte accesses starting at 0x1000 fit in one line.
/// let accesses: Vec<LaneAccess> = (0..32)
///     .map(|lane| LaneAccess {
///         lane,
///         addr: Addr::new(0x1000 + 4 * lane as u64),
///         width: Width::W4,
///     })
///     .collect();
/// assert_eq!(coalesce(&accesses, 128), vec![Addr::new(0x1000)]);
/// ```
pub fn coalesce(accesses: &[LaneAccess], line_size: u64) -> Vec<Addr> {
    assert!(
        line_size.is_power_of_two(),
        "line size must be a power of two"
    );
    let mut lines: Vec<Addr> = Vec::with_capacity(accesses.len());
    for a in accesses {
        let first = a.addr.align_down(line_size);
        let last = (a.addr + (a.width.bytes() - 1)).align_down(line_size);
        lines.push(first);
        if last != first {
            lines.push(last);
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::Width;

    fn acc(lane: u32, addr: u64, width: Width) -> LaneAccess {
        LaneAccess {
            lane,
            addr: Addr::new(addr),
            width,
        }
    }

    #[test]
    fn fully_coalesced_warp_is_one_line() {
        let accesses: Vec<_> = (0..32)
            .map(|l| acc(l, 0x8000 + 4 * l as u64, Width::W4))
            .collect();
        assert_eq!(coalesce(&accesses, 128), vec![Addr::new(0x8000)]);
    }

    #[test]
    fn strided_warp_fans_out() {
        // Stride of one line per lane: 32 distinct lines.
        let accesses: Vec<_> = (0..32).map(|l| acc(l, 128 * l as u64, Width::W4)).collect();
        let lines = coalesce(&accesses, 128);
        assert_eq!(lines.len(), 32);
        assert_eq!(lines[0], Addr::new(0));
        assert_eq!(lines[31], Addr::new(31 * 128));
    }

    #[test]
    fn unaligned_wide_access_spans_two_lines() {
        let accesses = vec![acc(0, 124, Width::W8)];
        assert_eq!(coalesce(&accesses, 128), vec![Addr::new(0), Addr::new(128)]);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let accesses = vec![acc(0, 0x100, Width::W4), acc(1, 0x100, Width::W4)];
        assert_eq!(coalesce(&accesses, 128), vec![Addr::new(0x100)]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(coalesce(&[], 128).is_empty());
    }

    #[test]
    fn misaligned_scatter_within_two_lines() {
        let accesses = vec![
            acc(0, 0x10, Width::W4),
            acc(1, 0x90, Width::W4),
            acc(2, 0x7c, Width::W4),
        ];
        let lines = coalesce(&accesses, 128);
        assert_eq!(lines, vec![Addr::new(0), Addr::new(0x80)]);
    }
}
