//! Whole-GPU simulation: SMs + interconnect + memory partitions, a CTA
//! dispatcher, and the cycle loop.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpu_icnt::{Crossbar, EjectPort};
use gpu_isa::{Kernel, Launch, LocalMap, ValidateError};
use gpu_mem::{AddressMap, DeviceMemory, MemRequest, Stamp};
use gpu_snapshot::{store, Decoder, Encoder, SnapshotError, StableHasher};
use gpu_trace::profile::{self, ProfCounter, ProfSpan};
use gpu_trace::{
    CounterKind, EventKind, NetDir, TraceConfig, TraceData, TraceEvent, TraceSite, Tracer,
};
use gpu_types::{Addr, CtaId, Cycle, PartitionId, SmId};

use crate::clock::{ClockedComponent, TickSchedule, TickStage};
use crate::config::GpuConfig;
use crate::exec_par::{self, TickPool};
use crate::partition::Partition;
use crate::sanitizer::{Sanitizer, Violation};
use crate::sm::{DeferredDeviceOp, DeviceAccess, Sm};
use crate::stats::{CompletedRequest, LoadInstrRecord, RunSummary, SmStats, TraceSink};

/// Minimum host time between self-profiler snapshots (the host-clock
/// Perfetto tracks' resolution): 10 ms keeps a multi-second run well under
/// the profiler's retention cap while still resolving phase changes.
const PROFILE_SAMPLE_GAP_NANOS: u64 = 10_000_000;

/// Error launching or running a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The kernel failed static validation.
    InvalidKernel(ValidateError),
    /// A CTA needs more warp slots than an SM has.
    BlockTooLarge {
        /// Warps the CTA needs.
        needed: usize,
        /// Warp slots per SM.
        available: usize,
    },
    /// `run` hit its cycle limit before the grid drained.
    Timeout {
        /// The limit that was hit.
        max_cycles: u64,
    },
    /// `run` called with no kernel launched.
    NothingLaunched,
    /// The kernel reads more parameter slots than the launch supplies.
    MissingParams {
        /// Highest parameter slot the kernel reads, plus one.
        needed: usize,
        /// Parameters supplied by the launch.
        supplied: usize,
    },
    /// A periodic checkpoint could not be written (the message names the
    /// target path and the I/O failure).
    Checkpoint(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidKernel(e) => write!(f, "invalid kernel: {e}"),
            SimError::BlockTooLarge { needed, available } => {
                write!(f, "CTA needs {needed} warp slots, SM has {available}")
            }
            SimError::Timeout { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
            SimError::NothingLaunched => f.write_str("no kernel launched"),
            SimError::MissingParams { needed, supplied } => {
                write!(
                    f,
                    "kernel reads {needed} parameters, launch supplies {supplied}"
                )
            }
            SimError::Checkpoint(msg) => write!(f, "checkpoint write failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ValidateError> for SimError {
    fn from(e: ValidateError) -> Self {
        SimError::InvalidKernel(e)
    }
}

struct LaunchState {
    kernel: Arc<Kernel>,
    params: Arc<[u64]>,
    launch: Launch,
    local_map: LocalMap,
    next_cta: u32,
}

/// Builds a scratch tracer for one component's share of a concurrent stage.
/// Uncapped (`max_events = usize::MAX`): the *main* tracer's cap and drop
/// accounting are applied when the scratch is drained into it, so the merged
/// stream is bit-identical to a serial run's.
fn scratch_tracer() -> Tracer {
    Tracer::new(TraceConfig {
        enabled: false,
        sample_interval: 64,
        max_events: usize::MAX,
        counter_capacity: 1,
    })
}

/// Per-SM collection buffers for the parallel `TickSms` stage: everything an
/// SM's tick would have written into shared accumulators lands here instead,
/// and is merged serially in SM-index order at the end of the stage. Always
/// drained empty at cycle boundaries, so none of this is serialized.
#[derive(Debug)]
struct SmScratch {
    tracer: Tracer,
    sink: TraceSink,
    sanitizer: Sanitizer,
    ops: Vec<DeferredDeviceOp>,
    retired: u64,
    created: u64,
}

impl SmScratch {
    fn new() -> Self {
        SmScratch {
            tracer: scratch_tracer(),
            sink: TraceSink::default(),
            sanitizer: Sanitizer::new(),
            ops: Vec::new(),
            retired: 0,
            created: 0,
        }
    }
}

/// Per-partition collection buffers for the parallel `TickPartitions` stage.
#[derive(Debug)]
struct PartScratch {
    tracer: Tracer,
    stores_done: u64,
}

impl PartScratch {
    fn new() -> Self {
        PartScratch {
            tracer: scratch_tracer(),
            stores_done: 0,
        }
    }
}

/// Where and how often [`Gpu::run_checkpointed`] writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Write a checkpoint at every cycle that is a positive multiple of
    /// this interval (0 disables periodic checkpoints). The cycle the run
    /// started (or resumed) at never re-checkpoints, so an uninterrupted
    /// run and a kill-and-resume run write the same checkpoint set and
    /// record identical trace-event streams.
    pub every: u64,
    /// Directory checkpoint files are written into.
    pub dir: PathBuf,
    /// Deterministic kill switch for resume testing: stop before ticking
    /// this absolute cycle and return [`RunOutcome::Killed`] — the
    /// cycle-accurate stand-in for `kill -9` mid-run. The run's first
    /// (or resumed-at) cycle never triggers the kill, so re-running with
    /// the same policy after a resume makes progress.
    pub kill_at: Option<u64>,
}

impl CheckpointPolicy {
    /// A policy that checkpoints every `every` cycles into `dir`, with no
    /// kill switch.
    pub fn new(every: u64, dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            every,
            dir: dir.into(),
            kill_at: None,
        }
    }
}

/// How a checkpointed run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The grid drained; the summary is the same one [`Gpu::run`] returns.
    Completed(Box<RunSummary>),
    /// The run stopped at [`CheckpointPolicy::kill_at`] without finishing.
    Killed {
        /// The cycle the run stopped at.
        at: u64,
    },
}

/// The simulated GPU.
///
/// # Examples
///
/// ```
/// use gpu_sim::{Gpu, GpuConfig};
/// use gpu_isa::{KernelBuilder, Launch, Special, Width};
///
/// let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
/// let buf = gpu.alloc(4 * 64, 128);
///
/// let mut b = KernelBuilder::new("fill");
/// let base = b.param(0);
/// let gtid = b.special(Special::GlobalTid);
/// let off = b.shl(gtid, 2);
/// let addr = b.add(base, off);
/// b.st_global(Width::W4, addr, 0, gtid);
/// b.exit();
/// let kernel = b.build()?;
///
/// gpu.launch(kernel, Launch::new(2, 32, vec![buf.get()]))?;
/// gpu.run(1_000_000)?;
/// assert_eq!(gpu.device().read_u32(buf + 4 * 63), 63);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Gpu {
    cfg: Arc<GpuConfig>,
    map: AddressMap,
    device: DeviceMemory,
    sms: Vec<Sm>,
    partitions: Vec<Partition>,
    req_net: Crossbar<MemRequest>,
    reply_net: Crossbar<MemRequest>,
    now: Cycle,
    outstanding: u64,
    sink: TraceSink,
    tracer: Tracer,
    host_nanos: u64,
    sanitizer: Sanitizer,
    launch: Option<LaunchState>,
    content_hash: u64,
    host_tag: Vec<u8>,
    schedule: TickSchedule,
    /// Parallel tick executor (`None` = the serial cycle loop). Host-side
    /// machinery, never serialized: a restored GPU starts serial and the
    /// caller re-applies [`Gpu::set_tick_threads`].
    exec: Option<TickPool>,
    sm_scratch: Vec<SmScratch>,
    part_scratch: Vec<PartScratch>,
    /// Test hook: merge scratch buffers in reverse component order, to prove
    /// the determinism suite catches a shuffled merge.
    reverse_merge: bool,
}

impl Gpu {
    /// Builds a GPU from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is structurally invalid.
    pub fn new(config: GpuConfig) -> Self {
        config.assert_valid();
        let cfg = Arc::new(config);
        let map = cfg.address_map();
        let sms = (0..cfg.num_sms)
            .map(|i| Sm::new(SmId::new(i as u32), Arc::clone(&cfg)))
            .collect();
        let mut partitions: Vec<Partition> = (0..cfg.num_partitions)
            .map(|i| Partition::new(PartitionId::new(i as u32), &cfg, map))
            .collect();
        let tracer = Tracer::new(cfg.trace);
        if tracer.enabled() {
            for p in &mut partitions {
                p.set_event_log(true);
            }
        }
        let req_net = Crossbar::new(cfg.num_sms, cfg.num_partitions, cfg.icnt);
        let reply_net = Crossbar::new(cfg.num_partitions, cfg.num_sms, cfg.icnt);
        Gpu {
            map,
            device: DeviceMemory::new(),
            sms,
            partitions,
            req_net,
            reply_net,
            now: Cycle::ZERO,
            outstanding: 0,
            sink: TraceSink::default(),
            tracer,
            host_nanos: 0,
            sanitizer: Sanitizer::new(),
            launch: None,
            content_hash: 0,
            host_tag: Vec::new(),
            schedule: TickSchedule::derive(&cfg),
            exec: None,
            sm_scratch: Vec::new(),
            part_scratch: Vec::new(),
            reverse_merge: false,
            cfg,
        }
    }

    /// Sets the number of threads the cycle loop uses for the parallel
    /// `TickSms` / `TickPartitions` stages. `n <= 1` (the default) selects
    /// the serial cycle loop; larger values spawn a persistent [`TickPool`]
    /// of `n - 1` workers that the calling thread joins each stage.
    ///
    /// Results are bit-identical at every thread count: same
    /// [`RunSummary::content_hash`], same trace-event stream, same sanitizer
    /// findings (pinned by the `tick_determinism` test suite). The setting
    /// is host-side machinery — it is not part of [`GpuConfig`], does not
    /// enter the content hash, and is not serialized into snapshots (a
    /// restored GPU starts serial; call this again to re-parallelize).
    pub fn set_tick_threads(&mut self, n: usize) {
        if n <= 1 {
            self.exec = None;
            self.sm_scratch.clear();
            self.part_scratch.clear();
            return;
        }
        if self.exec.as_ref().map(TickPool::threads) != Some(n) {
            // Drop first so the old pool's workers exit before new spawns.
            self.exec = None;
            self.exec = Some(TickPool::new(n));
        }
        self.sm_scratch = (0..self.sms.len()).map(|_| SmScratch::new()).collect();
        self.part_scratch = (0..self.partitions.len())
            .map(|_| PartScratch::new())
            .collect();
    }

    /// Threads the cycle loop ticks with (1 = serial).
    pub fn tick_threads(&self) -> usize {
        self.exec.as_ref().map_or(1, TickPool::threads)
    }

    /// Test hook: merges per-component scratch buffers in *reverse*
    /// component order during parallel stages. Deliberately wrong — it
    /// exists so the determinism suite can prove a shuffled merge is
    /// observable (trace events diverge) and that the index-ordered merge is
    /// therefore load-bearing. No effect on the serial cycle loop or on
    /// device-memory replay order (which would change simulation results,
    /// not just observation order).
    pub fn debug_set_reverse_merge(&mut self, on: bool) {
        self.reverse_merge = on;
    }

    /// Component-index merge order for parallel-stage scratch buffers
    /// (reversed under the [`Gpu::debug_set_reverse_merge`] test hook).
    fn merge_order(&self, n: usize) -> Vec<usize> {
        if self.reverse_merge {
            (0..n).rev().collect()
        } else {
            (0..n).collect()
        }
    }

    /// The per-cycle stage schedule this GPU executes (derived from its
    /// configuration at construction).
    pub fn schedule(&self) -> &TickSchedule {
        &self.schedule
    }

    /// Every clocked component of the machine, in audit order: SMs, memory
    /// partitions, then the two crossbar networks. Borrows the component
    /// fields only, so callers can hold the sanitizer mutably alongside.
    fn components_of<'a>(
        sms: &'a [Sm],
        partitions: &'a [Partition],
        req_net: &'a Crossbar<MemRequest>,
        reply_net: &'a Crossbar<MemRequest>,
    ) -> impl Iterator<Item = &'a dyn ClockedComponent> {
        sms.iter()
            .map(|s| s as &dyn ClockedComponent)
            .chain(partitions.iter().map(|p| p as &dyn ClockedComponent))
            .chain([
                req_net as &dyn ClockedComponent,
                reply_net as &dyn ClockedComponent,
            ])
    }

    fn components(&self) -> impl Iterator<Item = &dyn ClockedComponent> {
        Self::components_of(&self.sms, &self.partitions, &self.req_net, &self.reply_net)
    }

    /// The configuration this GPU was built from.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Functional device memory (for result readback).
    pub fn device(&self) -> &DeviceMemory {
        &self.device
    }

    /// Mutable functional device memory (for input upload).
    pub fn device_mut(&mut self) -> &mut DeviceMemory {
        &mut self.device
    }

    /// Allocates device memory.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        self.device.alloc(bytes, align)
    }

    /// Enables or disables latency-trace collection.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.sink.enabled = enabled;
    }

    /// Enables or disables micro-architectural event tracing and counter
    /// sampling at run time, overriding [`crate::GpuConfig::trace`].
    pub fn set_event_tracing(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
        for p in &mut self.partitions {
            p.set_event_log(enabled);
        }
    }

    /// The event tracer (for inspecting counts without draining it).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Takes the recorded event trace and counter samples, leaving the
    /// tracer empty. Call [`Gpu::run`] (or read the summary) first if the
    /// counter summaries in [`crate::RunSummary::metrics`] are wanted —
    /// taking resets them.
    pub fn take_trace(&mut self) -> TraceData {
        self.tracer.take()
    }

    /// Takes the collected traces (completed line fetches, completed load
    /// instructions), leaving the sink empty.
    pub fn take_traces(&mut self) -> (Vec<CompletedRequest>, Vec<LoadInstrRecord>) {
        (
            std::mem::take(&mut self.sink.requests),
            std::mem::take(&mut self.sink.loads),
        )
    }

    /// Per-SM statistics.
    pub fn sm_stats(&self) -> Vec<SmStats> {
        self.sms.iter().map(|s| s.stats()).collect()
    }

    /// Launches a kernel. The previous kernel must have drained (via
    /// [`Gpu::run`]) first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidKernel`] for malformed kernels,
    /// [`SimError::BlockTooLarge`] when a CTA cannot fit on an SM, and
    /// [`SimError::MissingParams`] when the kernel reads a parameter slot
    /// the launch does not supply.
    pub fn launch(&mut self, kernel: Kernel, launch: Launch) -> Result<(), SimError> {
        kernel.validate()?;
        let max_param = kernel
            .instrs()
            .iter()
            .filter_map(|i| match i {
                gpu_isa::Instr::LdParam { index, .. } => Some(*index),
                _ => None,
            })
            .max();
        if let Some(max_param) = max_param {
            if max_param >= launch.params.len() {
                return Err(SimError::MissingParams {
                    needed: max_param + 1,
                    supplied: launch.params.len(),
                });
            }
        }
        let warps_needed = launch.warps_per_cta(self.cfg.warp_size) as usize;
        if warps_needed > self.cfg.max_warps_per_sm {
            return Err(SimError::BlockTooLarge {
                needed: warps_needed,
                available: self.cfg.max_warps_per_sm,
            });
        }
        // Fold this launch into the run's content hash: the timing-relevant
        // config, the kernel program (via its round-trippable disassembly),
        // the launch geometry and parameters, and the device-memory contents
        // at launch. Chaining on the previous hash makes multi-launch hosts
        // (e.g. iterative BFS) hash their whole launch sequence.
        let mut h = StableHasher::new();
        h.u64(self.content_hash);
        self.cfg.hash_timing(&mut h);
        h.str(&kernel.to_string());
        h.u32(launch.grid_dim);
        h.u32(launch.block_dim);
        h.usize(launch.params.len());
        for &p in &launch.params {
            h.u64(p);
        }
        self.device.hash_state(&mut h);
        self.content_hash = h.finish();
        let local_map = if kernel.local_bytes_per_thread() > 0 {
            let bytes = launch.total_threads() * kernel.local_bytes_per_thread();
            LocalMap {
                base: self.device.alloc(bytes, self.cfg.line_size),
                bytes_per_thread: kernel.local_bytes_per_thread(),
            }
        } else {
            LocalMap::default()
        };
        let params: Arc<[u64]> = launch.params.clone().into();
        self.launch = Some(LaunchState {
            kernel: Arc::new(kernel),
            params,
            launch,
            local_map,
            next_cta: 0,
        });
        Ok(())
    }

    /// Runs until the launched grid fully drains (all CTAs retired, all
    /// memory traffic completed) or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] at the cycle limit and
    /// [`SimError::NothingLaunched`] if no kernel was launched.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        if self.launch.is_none() {
            return Err(SimError::NothingLaunched);
        }
        let _run_span = profile::span(ProfSpan::Run);
        let start = self.now;
        let wall = std::time::Instant::now();
        while !self.is_done_profiled() {
            if self.now.since(start) >= max_cycles {
                self.host_nanos += wall.elapsed().as_nanos() as u64;
                if self.cfg.sanitize {
                    // Name any stuck MSHR lines before reporting the hang.
                    for p in &self.partitions {
                        p.audit_drained(&mut self.sanitizer);
                    }
                }
                return Err(SimError::Timeout { max_cycles });
            }
            self.tick();
        }
        self.host_nanos += wall.elapsed().as_nanos() as u64;
        self.launch = None;
        if self.cfg.sanitize {
            let san = &mut self.sanitizer;
            for c in
                Self::components_of(&self.sms, &self.partitions, &self.req_net, &self.reply_net)
            {
                c.audit_drained(san);
            }
            // Violations fail loudly in debug builds (which `cargo test`
            // uses); release builds keep the report queryable instead of
            // aborting long experiments.
            if cfg!(debug_assertions) && !self.sanitizer.is_clean() {
                panic!("{}", self.sanitizer.report());
            }
        }
        Ok(self.summary())
    }

    /// The invariant sanitizer's accumulated findings. Populated only when
    /// [`GpuConfig::sanitize`] is set.
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// Test hook: plants an L1 MSHR entry on SM 0 that no fill will ever
    /// release. The run still drains normally — only the sanitizer's
    /// end-of-run audit notices. Used to prove the sanitizer catches real
    /// leaks (and that nothing else does).
    pub fn debug_seed_mshr_leak(&mut self, line: Addr) {
        self.sms[0].debug_seed_mshr_leak(line.align_down(self.cfg.line_size));
    }

    fn is_done(&self) -> bool {
        let dispatched_all = match &self.launch {
            Some(l) => l.next_cta >= l.launch.grid_dim,
            None => true,
        };
        dispatched_all && self.outstanding == 0 && self.components().all(|c| c.is_idle())
    }

    /// [`Gpu::is_done`] under the self-profiler's `drain_check` span: the
    /// per-cycle drain scan is the only loop work outside the tick stages,
    /// so metering it lets the stage totals account for the whole run span.
    fn is_done_profiled(&self) -> bool {
        let _g = profile::span(ProfSpan::DrainCheck);
        self.is_done()
    }

    /// The cumulative run summary so far (the same value [`Gpu::run`]
    /// returns on success). Counters are never reset between launches.
    pub fn summary(&self) -> RunSummary {
        let mut s = RunSummary {
            cycles: self.now.get(),
            ..RunSummary::default()
        };
        for sm in &self.sms {
            let st = sm.stats();
            s.instructions += st.instructions;
            s.ctas += st.ctas_retired;
            s.metrics.stalls.merge(&st.stalls);
            if let Some((h, m)) = sm.l1_counts() {
                s.l1_hits += h;
                s.l1_misses += m;
            }
        }
        s.metrics.capture_from(&self.tracer);
        s.metrics.host_nanos = self.host_nanos;
        for p in &self.partitions {
            if let Some((h, m)) = p.l2_counts() {
                s.l2_hits += h;
                s.l2_misses += m;
            }
            let d = p.dram_stats();
            s.dram_serviced += d.serviced;
            s.dram_row_hits += d.row_hits;
        }
        s.sanitizer_violations = self.sanitizer.total();
        s.content_hash = self.content_hash;
        s
    }

    // ---- checkpoint / restore ----------------------------------------------

    /// The run's content hash so far (see [`RunSummary::content_hash`]).
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Attaches an opaque host-side tag that rides inside every checkpoint.
    /// Multi-launch drivers (e.g. the iterative BFS host loop) store their
    /// own loop state here so a resumed process can pick up mid-iteration.
    pub fn set_host_tag(&mut self, tag: Vec<u8>) {
        self.host_tag = tag;
    }

    /// The host-side tag carried by this GPU (empty unless a driver set one
    /// or a checkpoint restored one).
    pub fn host_tag(&self) -> &[u8] {
        &self.host_tag
    }

    /// Serializes the complete simulator state — configuration, cycle
    /// counter, device memory, the in-flight launch (kernel program as its
    /// round-trippable disassembly), every SM and partition, both crossbar
    /// networks, the latency-trace sink, the event tracer and the sanitizer
    /// — into a framed, versioned, checksummed byte stream that
    /// [`Gpu::restore`] turns back into a bit-identical simulator.
    ///
    /// Snapshots are taken at cycle boundaries (between [`Gpu::tick`]s);
    /// mid-tick state never exists in a checkpoint.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.cfg.encode_state(&mut e);
        e.u64(self.now.get());
        e.u64(self.outstanding);
        e.u64(self.host_nanos);
        e.u64(self.content_hash);
        e.bytes(&self.host_tag);
        self.device.encode_state(&mut e);
        match &self.launch {
            None => e.bool(false),
            Some(l) => {
                e.bool(true);
                e.str(&l.kernel.to_string());
                e.u32(l.launch.grid_dim);
                e.u32(l.launch.block_dim);
                e.usize(l.launch.params.len());
                for &p in &l.launch.params {
                    e.u64(p);
                }
                e.u64(l.local_map.base.get());
                e.u64(l.local_map.bytes_per_thread);
                e.u32(l.next_cta);
            }
        }
        for sm in &self.sms {
            sm.encode_state(&mut e);
        }
        for p in &self.partitions {
            p.encode_state(&mut e);
        }
        self.req_net
            .encode_state_with(&mut e, |req, e| req.encode_state(e));
        self.reply_net
            .encode_state_with(&mut e, |req, e| req.encode_state(e));
        self.sink.encode_state(&mut e);
        self.tracer.encode_state(&mut e);
        self.sanitizer.encode_state(&mut e);
        e.finish()
    }

    /// Rebuilds a GPU from a [`Gpu::snapshot`] byte stream. The restored
    /// simulator continues cycle-identically to the one that was snapshotted
    /// — same [`RunSummary`], same trace events, same sanitizer findings.
    ///
    /// # Errors
    ///
    /// Rejects corrupted, truncated or wrong-version streams (framing),
    /// unknown tags, structural inconsistencies between the embedded
    /// configuration and the serialized state, and kernels that fail to
    /// re-parse. Never panics on malformed input.
    pub fn restore(bytes: &[u8]) -> Result<Gpu, SnapshotError> {
        use SnapshotError::InvalidValue;
        let mut d = Decoder::open(bytes)?;
        let cfg = GpuConfig::decode(&mut d)?;
        cfg.validate()
            .map_err(|_| InvalidValue("configuration fails structural validation"))?;
        let mut gpu = Gpu::new(cfg);
        gpu.now = Cycle::new(d.u64()?);
        gpu.outstanding = d.u64()?;
        gpu.host_nanos = d.u64()?;
        gpu.content_hash = d.u64()?;
        gpu.host_tag = d.bytes()?.to_vec();
        gpu.device.restore_state(&mut d)?;
        gpu.launch = if d.bool()? {
            let text = d.str()?;
            let kernel = gpu_isa::parse_kernel(text)
                .map_err(|_| InvalidValue("checkpoint kernel fails to parse"))?;
            kernel
                .validate()
                .map_err(|_| InvalidValue("checkpoint kernel fails validation"))?;
            let grid_dim = d.u32()?;
            let block_dim = d.u32()?;
            if grid_dim == 0 || block_dim == 0 {
                return Err(InvalidValue("launch dimensions must be nonzero"));
            }
            let mut params = Vec::new();
            for _ in 0..d.usize()? {
                params.push(d.u64()?);
            }
            let local_map = LocalMap {
                base: Addr::new(d.u64()?),
                bytes_per_thread: d.u64()?,
            };
            let next_cta = d.u32()?;
            let launch = Launch {
                grid_dim,
                block_dim,
                params: params.clone(),
            };
            if launch.warps_per_cta(gpu.cfg.warp_size) as usize > gpu.cfg.max_warps_per_sm {
                return Err(InvalidValue("checkpoint CTA exceeds SM warp capacity"));
            }
            Some(LaunchState {
                kernel: Arc::new(kernel),
                params: params.into(),
                launch,
                local_map,
                next_cta,
            })
        } else {
            None
        };
        let kp = gpu.launch.as_ref().map(|l| (&l.kernel, &l.params));
        for sm in &mut gpu.sms {
            sm.restore_state(&mut d, kp)?;
        }
        for p in &mut gpu.partitions {
            p.restore_state(&mut d)?;
        }
        gpu.req_net.restore_state_with(&mut d, MemRequest::decode)?;
        gpu.reply_net
            .restore_state_with(&mut d, MemRequest::decode)?;
        gpu.sink.restore_state(&mut d)?;
        gpu.tracer.restore_state(&mut d)?;
        gpu.sanitizer.restore_state(&mut d)?;
        d.expect_end()?;
        Ok(gpu)
    }

    /// Records a checkpoint event and writes a full snapshot atomically into
    /// `dir`, named after the current cycle. The event is recorded *before*
    /// the snapshot is encoded so it lands inside the serialized tracer
    /// state: a run resumed from this checkpoint replays the identical event
    /// stream an uninterrupted run records. Returns the snapshot size.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] when the file cannot be written.
    pub fn write_checkpoint(&mut self, dir: &Path) -> Result<u64, SimError> {
        if self.tracer.enabled() {
            // The snapshot size is unknowable before encoding, and encoding
            // must happen after this event is recorded; 0 marks "pending".
            self.tracer.record(TraceEvent {
                cycle: self.now.get(),
                site: TraceSite::Gpu,
                kind: EventKind::Checkpoint { bytes: 0 },
            });
        }
        let bytes = self.snapshot();
        let path = store::checkpoint_path(dir, self.now.get());
        store::write_atomic(&path, &bytes)
            .map_err(|e| SimError::Checkpoint(format!("{}: {e}", path.display())))?;
        Ok(bytes.len() as u64)
    }

    /// Restores the GPU from the newest checkpoint in `dir`, if any.
    ///
    /// # Errors
    ///
    /// Propagates directory/file I/O errors and checkpoint-format errors.
    pub fn resume_latest(dir: &Path) -> Result<Option<Gpu>, SnapshotError> {
        match store::latest_checkpoint(dir)? {
            None => Ok(None),
            Some((_, path)) => {
                let bytes = std::fs::read(path)?;
                Ok(Some(Gpu::restore(&bytes)?))
            }
        }
    }

    /// Like [`Gpu::run`], but writes periodic checkpoints per `policy` and
    /// honors its deterministic kill switch. With `policy.every == 0` and no
    /// `kill_at` this is exactly [`Gpu::run`] (same drain condition, same
    /// audits, same summary).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] at the cycle limit,
    /// [`SimError::NothingLaunched`] if no kernel was launched, and
    /// [`SimError::Checkpoint`] when a checkpoint cannot be written.
    pub fn run_checkpointed(
        &mut self,
        max_cycles: u64,
        policy: &CheckpointPolicy,
    ) -> Result<RunOutcome, SimError> {
        if self.launch.is_none() {
            return Err(SimError::NothingLaunched);
        }
        let _run_span = profile::span(ProfSpan::Run);
        let start = self.now;
        let wall = std::time::Instant::now();
        while !self.is_done_profiled() {
            if self.now.since(start) >= max_cycles {
                self.host_nanos += wall.elapsed().as_nanos() as u64;
                if self.cfg.sanitize {
                    for p in &self.partitions {
                        p.audit_drained(&mut self.sanitizer);
                    }
                }
                return Err(SimError::Timeout { max_cycles });
            }
            let cycle = self.now.get();
            if policy.every > 0 && cycle > start.get() && cycle.is_multiple_of(policy.every) {
                self.write_checkpoint(&policy.dir)?;
            }
            if policy.kill_at == Some(cycle) && cycle > start.get() {
                self.host_nanos += wall.elapsed().as_nanos() as u64;
                return Ok(RunOutcome::Killed { at: cycle });
            }
            self.tick();
        }
        self.host_nanos += wall.elapsed().as_nanos() as u64;
        self.launch = None;
        if self.cfg.sanitize {
            let san = &mut self.sanitizer;
            for c in
                Self::components_of(&self.sms, &self.partitions, &self.req_net, &self.reply_net)
            {
                c.audit_drained(san);
            }
            if cfg!(debug_assertions) && !self.sanitizer.is_clean() {
                panic!("{}", self.sanitizer.report());
            }
        }
        Ok(RunOutcome::Completed(Box::new(self.summary())))
    }

    /// Advances the GPU by one cycle: a plain interpreter over the tick
    /// schedule derived from the machine description at construction.
    ///
    /// With the self-profiler on, the host clock is stamped once *between*
    /// stages, so the per-stage deltas tile the loop body exactly (n+1
    /// clock reads for n stages, no metering gaps); with it off, the loop
    /// is the bare interpreter.
    pub fn tick(&mut self) {
        if !profile::enabled() {
            for i in 0..self.schedule.len() {
                self.run_stage(self.schedule.stage(i));
            }
            return;
        }
        let mut prev = std::time::Instant::now();
        for i in 0..self.schedule.len() {
            let stage = self.schedule.stage(i);
            self.run_stage(stage);
            let now = std::time::Instant::now();
            profile::span_add(Self::stage_span(stage), (now - prev).as_nanos() as u64);
            prev = now;
        }
        profile::add(ProfCounter::CyclesTicked, 1);
    }

    /// The self-profiler site for one tick-schedule stage.
    const fn stage_span(stage: TickStage) -> ProfSpan {
        match stage {
            TickStage::BeginNetworks => ProfSpan::BeginNetworks,
            TickStage::TickPartitions => ProfSpan::TickPartitions,
            TickStage::InjectReplies => ProfSpan::InjectReplies,
            TickStage::EjectRequests => ProfSpan::EjectRequests,
            TickStage::TickSms => ProfSpan::TickSms,
            TickStage::DispatchCtas => ProfSpan::DispatchCtas,
            TickStage::AuditInvariants => ProfSpan::AuditInvariants,
            TickStage::SampleCounters => ProfSpan::SampleCounters,
            TickStage::AdvanceClock => ProfSpan::AdvanceClock,
        }
    }

    /// Executes one stage of the per-cycle schedule.
    fn run_stage(&mut self, stage: TickStage) {
        let now = self.now;
        match stage {
            TickStage::BeginNetworks => {
                let _g = profile::span(ProfSpan::CrossbarTick);
                self.req_net.begin_cycle();
                self.reply_net.begin_cycle();
            }
            TickStage::TickPartitions => {
                if self.exec.is_none() {
                    for p in &mut self.partitions {
                        let _g = profile::span(ProfSpan::PartitionTick);
                        let stores_done = p.tick(now, &mut self.tracer);
                        self.outstanding -= stores_done;
                    }
                } else {
                    self.tick_partitions_parallel(now);
                }
            }
            TickStage::InjectReplies => {
                for (pi, p) in self.partitions.iter_mut().enumerate() {
                    while let Some(head) = p.peek_return() {
                        let dst = head.sm.index();
                        if !self.reply_net.can_inject(pi, dst) {
                            break;
                        }
                        let req = p.pop_return().expect("peeked");
                        let rid = req.id.get();
                        self.reply_net
                            .try_inject(pi, dst, req, now)
                            .expect("can_inject checked");
                        if self.tracer.enabled() {
                            self.tracer.record(TraceEvent {
                                cycle: now.get(),
                                site: TraceSite::Gpu,
                                kind: EventKind::IcntInject {
                                    net: NetDir::Reply,
                                    req: rid,
                                    port: pi as u32,
                                },
                            });
                        }
                    }
                }
            }
            TickStage::EjectRequests => {
                for (pi, p) in self.partitions.iter_mut().enumerate() {
                    while p.can_accept() {
                        match self.req_net.eject(pi, now) {
                            Some(req) => {
                                if self.tracer.enabled() {
                                    self.tracer.record(TraceEvent {
                                        cycle: now.get(),
                                        site: TraceSite::Gpu,
                                        kind: EventKind::IcntEject {
                                            net: NetDir::Request,
                                            req: req.id.get(),
                                            port: pi as u32,
                                        },
                                    });
                                }
                                p.accept(req, now, &mut self.tracer);
                            }
                            None => break,
                        }
                    }
                }
            }
            TickStage::TickSms => {
                if self.exec.is_some() {
                    self.tick_sms_parallel(now);
                    return;
                }
                let sanitize = self.cfg.sanitize;
                for si in 0..self.sms.len() {
                    let _g = profile::span(ProfSpan::SmTick);
                    let sm = &mut self.sms[si];
                    let retired = sm.tick_writeback(
                        now,
                        &mut self.sink,
                        sanitize.then_some(&mut self.sanitizer),
                    );
                    self.outstanding -= retired;

                    while sm.fill_space() {
                        match self.reply_net.eject(si, now) {
                            Some(req) => {
                                if self.tracer.enabled() {
                                    self.tracer.record(TraceEvent {
                                        cycle: now.get(),
                                        site: TraceSite::Gpu,
                                        kind: EventKind::IcntEject {
                                            net: NetDir::Reply,
                                            req: req.id.get(),
                                            port: si as u32,
                                        },
                                    });
                                }
                                sm.accept_response(req, now, &mut self.tracer);
                            }
                            None => break,
                        }
                    }

                    sm.tick_memory(now, &mut self.tracer);

                    while let Some(head) = sm.peek_miss() {
                        let dst = self.map.partition_of(head.addr).index();
                        if !self.req_net.can_inject(si, dst) {
                            break;
                        }
                        let mut req = sm.pop_miss().expect("peeked");
                        req.timeline.record(Stamp::IcntInject, now);
                        let rid = req.id.get();
                        self.req_net
                            .try_inject(si, dst, req, now)
                            .expect("can_inject checked");
                        if self.tracer.enabled() {
                            self.tracer.record(TraceEvent {
                                cycle: now.get(),
                                site: TraceSite::Gpu,
                                kind: EventKind::IcntInject {
                                    net: NetDir::Request,
                                    req: rid,
                                    port: si as u32,
                                },
                            });
                        }
                    }

                    let created = sm.tick_issue(
                        now,
                        DeviceAccess::Direct(&mut self.device),
                        &mut self.sink,
                        &mut self.tracer,
                    );
                    self.outstanding += created;
                    sm.maintain();
                }
            }
            TickStage::DispatchCtas => self.dispatch_ctas(),
            // Scheduled only on sanitizing machines (see TickSchedule::derive).
            TickStage::AuditInvariants => self.audit_cycle(now),
            TickStage::SampleCounters => {
                if self.tracer.should_sample(now.get()) {
                    self.sample_counters(now);
                }
                // Host-clock self-profile sampling rides the same stage:
                // publish the outstanding gauge and, at a bounded host-time
                // interval, snapshot the profiler tables for the Perfetto
                // host tracks. Both are one relaxed atomic when profiling
                // is off.
                profile::set(ProfCounter::Outstanding, self.outstanding);
                profile::sample_at_interval(PROFILE_SAMPLE_GAP_NANOS);
            }
            TickStage::AdvanceClock => self.now.tick(),
        }
    }

    /// Parallel `TickPartitions`: every partition ticks concurrently into
    /// its own scratch buffer; store-completion counts and trace events are
    /// merged in partition-index order afterwards, reproducing the serial
    /// loop bit-for-bit (partitions share no state, so only the observation
    /// order needs pinning).
    fn tick_partitions_parallel(&mut self, now: Cycle) {
        let tracing = self.tracer.enabled();
        for sc in &mut self.part_scratch {
            sc.tracer.set_enabled(tracing);
            sc.stores_done = 0;
        }
        {
            let _fan = profile::span(ProfSpan::PartitionsFanout);
            let mut work: Vec<(&mut Partition, &mut PartScratch)> = self
                .partitions
                .iter_mut()
                .zip(self.part_scratch.iter_mut())
                .collect();
            exec_par::par_for_each_mut(self.exec.as_ref(), &mut work, |_, (p, sc)| {
                let _g = profile::span(ProfSpan::PartitionTick);
                sc.stores_done = p.tick(now, &mut sc.tracer);
            });
        }
        let _merge = profile::span(ProfSpan::PartitionsMerge);
        for pi in self.merge_order(self.part_scratch.len()) {
            let sc = &mut self.part_scratch[pi];
            self.outstanding -= sc.stores_done;
            sc.stores_done = 0;
            self.tracer.append_events_from(&mut sc.tracer);
        }
    }

    /// Parallel `TickSms`, in five sub-phases that together replay the
    /// serial per-SM sequence exactly (see DESIGN.md, "Parallel tick
    /// executor"):
    ///
    /// 1. **Parallel** writeback → reply ejection → memory tick. Each SM
    ///    owns its private eject port into the reply crossbar (disjoint
    ///    per-destination queues), and writes sink records, sanitizer
    ///    findings, and trace events into its own scratch.
    /// 2. **Serial** miss injection in SM-index order — request-crossbar
    ///    ports contend on per-destination queue capacity, so acceptance
    ///    order is simulation semantics, not mere observation order.
    /// 3. **Parallel** issue with device-memory access *deferred* into
    ///    per-SM op buffers (a same-cycle store by SM *i* must be visible
    ///    to a load by SM *j > i*, so loads cannot read live memory here).
    /// 4. **Serial** replay of the deferred device ops in SM-index order —
    ///    exactly the order the serial loop touches memory — patching load
    ///    results back into the issuing warps' registers.
    /// 5. **Serial** merge of scratch buffers in SM-index order:
    ///    outstanding-count deltas, trace events, sink records, sanitizer
    ///    findings. Each SM's scratch accumulated phases 1–3 in intra-SM
    ///    order, so one index-ordered concatenation reproduces the serial
    ///    event stream.
    fn tick_sms_parallel(&mut self, now: Cycle) {
        let sanitize = self.cfg.sanitize;
        let tracing = self.tracer.enabled();
        let sinking = self.sink.enabled;
        let n = self.sms.len();
        for sc in &mut self.sm_scratch {
            sc.tracer.set_enabled(tracing);
            sc.sink.enabled = sinking;
        }

        // Phase 1: writeback + reply ejection + memory tick, in parallel.
        {
            let _ph = profile::span(ProfSpan::SmsWriteback);
            let ports = self.reply_net.eject_ports();
            let mut work: Vec<((&mut Sm, &mut SmScratch), EjectPort<'_, MemRequest>)> = self
                .sms
                .iter_mut()
                .zip(self.sm_scratch.iter_mut())
                .zip(ports)
                .collect();
            exec_par::par_for_each_mut(self.exec.as_ref(), &mut work, |si, ((sm, sc), port)| {
                let _g = profile::span(ProfSpan::SmTick);
                sc.retired =
                    sm.tick_writeback(now, &mut sc.sink, sanitize.then_some(&mut sc.sanitizer));
                while sm.fill_space() {
                    match port.eject(now) {
                        Some(req) => {
                            if sc.tracer.enabled() {
                                sc.tracer.record(TraceEvent {
                                    cycle: now.get(),
                                    site: TraceSite::Gpu,
                                    kind: EventKind::IcntEject {
                                        net: NetDir::Reply,
                                        req: req.id.get(),
                                        port: si as u32,
                                    },
                                });
                            }
                            sm.accept_response(req, now, &mut sc.tracer);
                        }
                        None => break,
                    }
                }
                sm.tick_memory(now, &mut sc.tracer);
            });
            let delivered: u64 = work.iter().map(|(_, port)| port.delivered()).sum();
            drop(work);
            self.reply_net.credit_ejected(delivered);
        }

        // Phase 2: miss injection, serial in SM-index order (never the
        // merge-order hook: per-destination queue contention makes this
        // order simulation semantics). Events go into per-SM scratch so the
        // merged stream interleaves them exactly where the serial loop does.
        let inject_span = profile::span(ProfSpan::SmsMissInject);
        for si in 0..n {
            let sm = &mut self.sms[si];
            let sc = &mut self.sm_scratch[si];
            while let Some(head) = sm.peek_miss() {
                let dst = self.map.partition_of(head.addr).index();
                if !self.req_net.can_inject(si, dst) {
                    break;
                }
                let mut req = sm.pop_miss().expect("peeked");
                req.timeline.record(Stamp::IcntInject, now);
                let rid = req.id.get();
                self.req_net
                    .try_inject(si, dst, req, now)
                    .expect("can_inject checked");
                if sc.tracer.enabled() {
                    sc.tracer.record(TraceEvent {
                        cycle: now.get(),
                        site: TraceSite::Gpu,
                        kind: EventKind::IcntInject {
                            net: NetDir::Request,
                            req: rid,
                            port: si as u32,
                        },
                    });
                }
            }
        }

        drop(inject_span);

        // Phase 3: issue in parallel, deferring device-memory traffic.
        {
            let _ph = profile::span(ProfSpan::SmsIssue);
            let mut work: Vec<(&mut Sm, &mut SmScratch)> = self
                .sms
                .iter_mut()
                .zip(self.sm_scratch.iter_mut())
                .collect();
            exec_par::par_for_each_mut(self.exec.as_ref(), &mut work, |_, (sm, sc)| {
                let _g = profile::span(ProfSpan::SmTick);
                sc.created = sm.tick_issue(
                    now,
                    DeviceAccess::Deferred(&mut sc.ops),
                    &mut sc.sink,
                    &mut sc.tracer,
                );
                sm.maintain();
            });
        }

        // Phase 4: replay deferred device ops in SM-index order — the exact
        // order the serial loop touches device memory (never the merge-order
        // hook: replay order decides what same-cycle loads observe).
        let replay_span = profile::span(ProfSpan::SmsReplay);
        for si in 0..n {
            let sc = &mut self.sm_scratch[si];
            for op in sc.ops.drain(..) {
                if let Some((patch, value)) = op.replay(&mut self.device) {
                    self.sms[si].poke_warp_reg(patch.warp, patch.lane, patch.reg, value);
                }
            }
        }
        drop(replay_span);

        // Phase 5: merge scratch into the shared accumulators in SM-index
        // order.
        let _merge_span = profile::span(ProfSpan::SmsMerge);
        for si in self.merge_order(n) {
            let sc = &mut self.sm_scratch[si];
            self.outstanding -= sc.retired;
            self.outstanding += sc.created;
            sc.retired = 0;
            sc.created = 0;
            self.tracer.append_events_from(&mut sc.tracer);
            self.sink.requests.append(&mut sc.sink.requests);
            self.sink.loads.append(&mut sc.sink.loads);
            self.sanitizer.absorb(&mut sc.sanitizer);
        }
    }

    /// Reads the per-cycle gauges into one counter sample. Gauges are summed
    /// across SMs / partitions; the row-hit rate is cumulative, in permille.
    fn sample_counters(&mut self, now: Cycle) {
        let mut values = [0u64; CounterKind::COUNT];
        for sm in &self.sms {
            values[CounterKind::L1MshrOccupancy.index()] += sm.l1_mshr_occupancy() as u64;
            values[CounterKind::FrontDepth.index()] += sm.front_depth() as u64;
            values[CounterKind::MissQueueDepth.index()] += sm.miss_queue_depth() as u64;
        }
        let mut serviced = 0u64;
        let mut row_hits = 0u64;
        for p in &self.partitions {
            values[CounterKind::RopQueueDepth.index()] += p.rop_depth() as u64;
            values[CounterKind::L2QueueDepth.index()] += p.l2_queue_depth() as u64;
            values[CounterKind::L2MshrOccupancy.index()] += p.l2_mshr_occupancy() as u64;
            values[CounterKind::DramQueueDepth.index()] += p.dram_queue_depth() as u64;
            let d = p.dram_stats();
            serviced += d.serviced;
            row_hits += d.row_hits;
        }
        values[CounterKind::IcntInFlight.index()] =
            (self.req_net.in_flight() + self.reply_net.in_flight()) as u64;
        values[CounterKind::Outstanding.index()] = self.outstanding;
        values[CounterKind::DramRowHitPermille.index()] = row_hits * 1000 / serviced.max(1);
        self.tracer.sample(now.get(), values);
    }

    /// Per-cycle sanitizer sweep: between ticks every live request must sit
    /// in exactly one pipeline structure, so the global outstanding counter
    /// must equal the sum of all per-component occupancies; each component's
    /// queues and MSHR tables must respect their configured capacities.
    fn audit_cycle(&mut self, now: Cycle) {
        let san = &mut self.sanitizer;
        let mut in_flight = 0u64;
        for c in Self::components_of(&self.sms, &self.partitions, &self.req_net, &self.reply_net) {
            c.audit(san);
            in_flight += c.in_flight_requests();
        }
        if in_flight != self.outstanding {
            san.record(Violation::Conservation {
                cycle: now,
                outstanding: self.outstanding,
                in_flight,
            });
        }
    }

    fn dispatch_ctas(&mut self) {
        let Some(l) = self.launch.as_mut() else {
            return;
        };
        let warps_needed = l.launch.warps_per_cta(self.cfg.warp_size) as usize;
        let n_sms = self.sms.len();
        while l.next_cta < l.launch.grid_dim {
            let start = l.next_cta as usize % n_sms;
            let target = (0..n_sms)
                .map(|o| (start + o) % n_sms)
                .find(|&s| self.sms[s].can_dispatch(warps_needed));
            match target {
                Some(s) => {
                    self.sms[s].dispatch(
                        CtaId::new(l.next_cta),
                        &l.kernel,
                        &l.params,
                        &l.launch,
                        l.local_map,
                    );
                    l.next_cta += 1;
                }
                None => break,
            }
        }
    }
}
