//! The intra-run parallel tick executor: a tiny persistent thread pool that
//! fans one stage of the cycle schedule out across components.
//!
//! # Why not `std::thread::scope` per cycle?
//!
//! A simulated cycle costs a few hundred nanoseconds; spawning OS threads
//! costs tens of microseconds. The only way intra-run parallelism can pay is
//! a pool that is spawned once per [`crate::Gpu`] and handed a new job every
//! cycle through atomics. [`TickPool`] is that pool: `n - 1` persistent
//! workers plus the calling thread, self-scheduling over component indices.
//!
//! # Determinism
//!
//! The pool itself guarantees nothing about ordering — workers claim indices
//! in whatever order the OS schedules them. Determinism is the *caller's*
//! contract: every job runs components against disjoint per-component state
//! (enforced here by handing each index a distinct `&mut` slice element),
//! and all cross-component effects are merged serially afterwards in fixed
//! component-index order (see the `gpu-sim` DESIGN notes on the parallel
//! tick executor).
//!
//! # Safety
//!
//! The job closure is published through a raw pointer and an epoch counter
//! (release/acquire pairs on `epoch` and `completed`). A worker only
//! dereferences the job pointer *after* claiming an index `i < total`, which
//! can only happen while the caller is still parked inside [`TickPool::run`]
//! waiting for `completed == total`; `run` additionally waits for every
//! worker to leave the claim loop (`active == 0`) before returning, so no
//! reference to the closure or the data it borrows outlives the call.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use gpu_trace::profile::{self, ProfCounter, ProfSpan};

type Job = dyn Fn(usize) + Sync;

struct PoolShared {
    /// Fat pointer to the current job, valid between an epoch bump and the
    /// caller's return from `run`. Written (published and cleared) and read
    /// only under the `sleep` lock; dereferenced only while `active` pins
    /// the caller inside `run`.
    job: UnsafeCell<Option<*const Job>>,
    /// Bumped (release) once per job; workers acquire-load it to see the job.
    epoch: AtomicU64,
    /// Next component index to claim.
    next: AtomicUsize,
    /// Component count of the current job.
    total: AtomicUsize,
    /// Components finished; the caller waits for `completed == total`.
    completed: AtomicUsize,
    /// Workers currently inside the claim loop; `run` waits for 0 on entry
    /// so a late worker can never claim indices from a *previous* job after
    /// the counters reset.
    active: AtomicUsize,
    /// Set (before the final epoch bump) to shut the workers down.
    shutdown: AtomicBool,
    /// A worker's job panicked; surfaced as a panic on the calling thread.
    panicked: AtomicBool,
    /// Workers currently blocked (or about to block) on `wake`. `run` only
    /// takes the sleep lock and notifies when this is nonzero, so the
    /// steady-state hot path (workers spinning between back-to-back stages)
    /// costs no syscalls. Workers are accelerators, not required labour —
    /// the caller claims every index itself if none shows up — so a racily
    /// missed wake merely lets a worker nap out its bounded timeout.
    sleepers: AtomicUsize,
    /// Sleep support: workers that spun without seeing a new epoch block
    /// here; `run` notifies after an epoch bump when `sleepers > 0`.
    sleep: Mutex<()>,
    wake: Condvar,
}

// SAFETY: the raw job pointer inside the UnsafeCell is only written by the
// thread inside `run` (while it holds exclusive publication rights via the
// epoch protocol) and only read by workers after the release/acquire pair on
// `epoch`, as described in the module docs.
unsafe impl Sync for PoolShared {}
unsafe impl Send for PoolShared {}

/// Persistent worker pool for parallel tick stages. See the module docs.
pub struct TickPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for TickPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Bounded spin before a waiter yields, and bounded yields before it sleeps.
/// Yields are kept short: on an oversubscribed host every yield is a context
/// switch stolen from the caller, and a worker that sleeps instead costs the
/// hot path nothing (see `PoolShared::sleepers`).
const SPINS: u32 = 128;
const YIELDS: u32 = 4;

impl TickPool {
    /// Spawns a pool that runs jobs on `threads` threads total: `threads - 1`
    /// persistent workers plus the thread that calls [`TickPool::run`].
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2` (a one-thread pool is just the serial loop;
    /// callers keep `None` instead).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 2, "a tick pool needs at least two threads");
        let shared = Arc::new(PoolShared {
            job: UnsafeCell::new(None),
            epoch: AtomicU64::new(0),
            next: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tick-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn tick worker")
            })
            .collect();
        TickPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total threads participating in each job (workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..total`, distributing indices across
    /// the pool. Blocks until all indices completed. `f` must tolerate any
    /// execution order and any assignment of indices to threads.
    ///
    /// # Panics
    ///
    /// Panics if any invocation of `f` panicked (on any thread).
    pub fn run<'f>(&self, total: usize, f: &'f (dyn Fn(usize) + Sync + 'f)) {
        let s = &*self.shared;
        if total == 0 {
            return;
        }
        // Drain stragglers from the previous job before resetting counters.
        wait(|| s.active.load(Ordering::Acquire) == 0);
        {
            // Publish under the sleep lock: workers read the slot under the
            // same lock (see `worker_loop`), so a late joiner can never
            // observe a torn or mid-write slot, and a worker deciding to
            // sleep cannot miss the wake.
            let _g = s.sleep.lock().expect("tick pool sleep lock");
            // SAFETY: slot writes and worker reads are serialised by the
            // sleep lock. The transmute erases the borrow's lifetime from
            // the trait-object type; validity ends when `run` returns, which
            // the epoch/active protocol enforces.
            let ptr: *const (dyn Fn(usize) + Sync + 'f) = f;
            unsafe {
                *s.job.get() = Some(std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + 'f),
                    *const Job,
                >(ptr));
            }
            s.total.store(total, Ordering::Relaxed);
            s.completed.store(0, Ordering::Relaxed);
            s.next.store(0, Ordering::Relaxed);
            s.epoch.fetch_add(1, Ordering::Release);
            profile::add(ProfCounter::PoolJobs, 1);
            if s.sleepers.load(Ordering::Acquire) > 0 {
                profile::add(ProfCounter::PoolNotifies, 1);
                self.shared.wake.notify_all();
            }
        }
        // The caller is a worker too.
        claim_loop(s, f);
        wait(|| s.completed.load(Ordering::Acquire) >= total);
        wait(|| s.active.load(Ordering::Acquire) == 0);
        // Clear the slot so a worker waking long after this job finished
        // (its epoch-change check cannot tell "new job" from "job come and
        // gone") finds nothing to join rather than a dangling closure.
        {
            let _g = s.sleep.lock().expect("tick pool sleep lock");
            // SAFETY: every worker has left the claim loop, and slot access
            // is serialised by the sleep lock.
            unsafe {
                *s.job.get() = None;
            }
        }
        if s.panicked.swap(false, Ordering::AcqRel) {
            panic!("a tick-pool worker panicked while executing a parallel stage");
        }
    }
}

impl Drop for TickPool {
    fn drop(&mut self) {
        let s = &*self.shared;
        wait(|| s.active.load(Ordering::Acquire) == 0);
        s.shutdown.store(true, Ordering::Release);
        s.epoch.fetch_add(1, Ordering::Release);
        {
            let _g = s.sleep.lock().expect("tick pool sleep lock");
            s.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Spin → yield → sleep until `done()` holds. Used only for the short
/// end-of-job waits on the calling thread.
fn wait(done: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !done() {
        if spins < SPINS {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
        spins += 1;
    }
}

fn claim_loop(s: &PoolShared, f: &(dyn Fn(usize) + Sync + '_)) {
    let total = s.total.load(Ordering::Relaxed);
    loop {
        let i = s.next.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            break;
        }
        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).is_ok();
        if !ok {
            s.panicked.store(true, Ordering::Release);
        }
        s.completed.fetch_add(1, Ordering::Release);
    }
}

fn worker_loop(s: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let e = s.epoch.load(Ordering::Acquire);
        if e == seen {
            // No new job yet: spin briefly, yield a while, then sleep. The
            // whole wait — spins, yields and naps — is the worker's *idle*
            // time for the self-profiler's busy/idle accounting.
            let _idle = profile::span(ProfSpan::PoolWorkerIdle);
            let mut tries = 0u32;
            loop {
                let e = s.epoch.load(Ordering::Acquire);
                if e != seen {
                    break;
                }
                if tries < SPINS {
                    std::hint::spin_loop();
                } else if tries < SPINS + YIELDS {
                    std::thread::yield_now();
                } else {
                    let g = s.sleep.lock().expect("tick pool sleep lock");
                    if s.epoch.load(Ordering::Acquire) == seen {
                        profile::add(ProfCounter::PoolSleeps, 1);
                        s.sleepers.fetch_add(1, Ordering::Release);
                        let _g = s
                            .wake
                            .wait_timeout(g, std::time::Duration::from_millis(50))
                            .expect("tick pool sleep lock");
                        s.sleepers.fetch_sub(1, Ordering::Release);
                    }
                }
                tries += 1;
            }
            continue;
        }
        if s.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Join job `e`: announce participation, then read the slot under the
        // sleep lock. Publication and clearing hold the same lock, so the
        // read cannot race a write, and the epoch re-check under the lock
        // distinguishes a live job from one that has come and gone (slot
        // cleared) or been superseded (epoch moved on).
        s.active.fetch_add(1, Ordering::AcqRel);
        let job = {
            let _g = s.sleep.lock().expect("tick pool sleep lock");
            if s.epoch.load(Ordering::Acquire) == e {
                // SAFETY: slot access is serialised by the sleep lock.
                unsafe { *s.job.get() }
            } else {
                None
            }
        };
        match job {
            Some(job) => {
                seen = e;
                let _busy = profile::span(ProfSpan::PoolWorkerBusy);
                // SAFETY: `active` was incremented before the slot read, so
                // the caller's end-of-run `active == 0` wait cannot have
                // passed; the closure (and everything it borrows) stays
                // alive until this worker decrements `active`.
                claim_loop(s, unsafe { &*job });
                s.active.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                // Epoch `e`'s job already finished (or the epoch advanced);
                // never re-join it. If the epoch moved on, the outer loop
                // picks the new value up immediately.
                s.active.fetch_sub(1, Ordering::AcqRel);
                seen = e;
            }
        }
    }
}

/// Raw-pointer wrapper that lets the fan-out closure hand each worker a
/// distinct `&mut` element of one slice.
struct SendPtr<T>(*mut T);
// SAFETY: every index is claimed exactly once (fetch_add), so each element
// is mutably borrowed by at most one thread.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to element `i`. A method (not direct field access) so closures
    /// capture the `Sync` wrapper, not the raw pointer itself.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the wrapped slice.
    unsafe fn element(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

/// Runs `f(i, &mut items[i])` for every element — serially in index order
/// when `pool` is `None`, else fanned out across the pool. Each element is
/// visited exactly once, by exactly one thread.
pub fn par_for_each_mut<T, F>(pool: Option<&TickPool>, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    match pool {
        None => {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
        }
        Some(pool) => {
            let base = SendPtr(items.as_mut_ptr());
            let n = items.len();
            pool.run(n, &|i| {
                // SAFETY: `i < n` and every index is claimed exactly once,
                // so this is a unique borrow of a live element.
                let item = unsafe { &mut *base.element(i) };
                f(i, item);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn pool_runs_every_index_exactly_once() {
        let pool = TickPool::new(4);
        for round in 0..50 {
            let n = 1 + (round % 13) as usize;
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} round {round}");
            }
        }
    }

    #[test]
    fn par_for_each_mut_matches_serial() {
        let pool = TickPool::new(3);
        let mut serial: Vec<u64> = (0..37).collect();
        let mut parallel = serial.clone();
        let bump = |i: usize, v: &mut u64| *v = v.wrapping_mul(0x9E37_79B9) ^ i as u64;
        par_for_each_mut(None, &mut serial, bump);
        par_for_each_mut(Some(&pool), &mut parallel, bump);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_job_is_a_no_op() {
        let pool = TickPool::new(2);
        pool.run(0, &|_| panic!("no index to run"));
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_mut(Some(&pool), &mut empty, |_, _| unreachable!());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = TickPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "pool must surface worker panics");
        // The pool stays usable afterwards.
        pool.run(4, &|_| {});
    }
}
