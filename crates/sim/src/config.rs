//! GPU configuration: every latency, queue depth and structural parameter of
//! the modeled machine.
//!
//! A [`GpuConfig`] fully describes one simulated GPU. It is interconvertible
//! with the declarative [`ArchDesc`] from `gpu-arch`
//! ([`GpuConfig::from_arch`] / [`GpuConfig::arch_desc`]): the description is
//! the authoritative per-generation data table (the presets in
//! `latency-core` are built as descriptions), while the config is the flat
//! working form the simulator components read. Validation, the typed
//! [`ConfigError`], and the generic unloaded-latency walks all live on the
//! description; this module only defines the knobs and a neutral
//! Fermi-GF100-like default, mirroring how GPGPU-Sim separates the simulator
//! from its config files.

use gpu_arch::{ArchDesc, CacheGeom, FabricDesc, LevelDesc, LevelKind, MemDesc, Routing, SmDesc};
use gpu_icnt::IcntConfig;
use gpu_mem::{CacheConfig, DramConfig, DramSched, DramTiming, MshrConfig, Replacement};
use gpu_snapshot::{Decoder, Encoder, SnapshotError, StableHasher};
use gpu_trace::TraceConfig;

pub use gpu_arch::{ConfigError, SchedPolicy, WritePolicy};

/// L1 data-cache configuration, including which memory spaces it serves —
/// the per-generation policy at the heart of the paper's §II discussion
/// (Fermi: global+local; Kepler: local only; Maxwell: removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Tag-array geometry.
    pub cache: CacheConfig,
    /// MSHR table.
    pub mshr: MshrConfig,
    /// Hit latency: probe-to-data, in cycles.
    pub hit_latency: u64,
    /// Miss-queue capacity between the L1 and the interconnect injection
    /// port (the paper's `L1toICNT` queue).
    pub miss_queue: usize,
    /// Does the L1 cache global-space accesses?
    pub serve_global: bool,
    /// Does the L1 cache local-space accesses?
    pub serve_local: bool,
    /// Fill/tag granularity in bytes (`None` = classic unsectored lines).
    pub sector_bytes: Option<u64>,
}

/// L2 slice configuration (one slice per memory partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Tag-array geometry (per slice).
    pub cache: CacheConfig,
    /// MSHR table (per slice).
    pub mshr: MshrConfig,
    /// Hit latency: probe-to-data, in cycles.
    pub hit_latency: u64,
    /// Input queue between the ROP pipeline and the L2 access stage
    /// (per slice).
    pub input_queue: usize,
    /// Store handling policy.
    pub write_policy: WritePolicy,
    /// Fill/tag granularity in bytes (`None` = classic unsectored lines).
    pub sector_bytes: Option<u64>,
    /// Hash-interleaved slices per partition (1 = the classic monolithic
    /// bank); `cache` describes ONE slice.
    pub slices: usize,
}

/// Fallback capacity of the structural queue a level keeps even when its
/// cache is absent (a Tesla partition still has an input queue in front of
/// its DRAM path).
const ABSENT_LEVEL_QUEUE: usize = 8;

/// Complete description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name ("GF100-like", …) used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp (≤ 32).
    pub warp_size: u32,
    /// Warp slots per SM.
    pub max_warps_per_sm: usize,
    /// Maximum concurrent CTAs per SM.
    pub max_ctas_per_sm: usize,
    /// Instructions issued per SM per cycle (distinct warps).
    pub issue_width: usize,
    /// Warp scheduler policy.
    pub scheduler: SchedPolicy,
    /// Integer-ALU result latency.
    pub alu_latency: u64,
    /// FP32 result latency.
    pub fp_latency: u64,
    /// SFU (div/transcendental) result latency.
    pub sfu_latency: u64,
    /// Shared-memory access latency.
    pub shared_latency: u64,
    /// Fixed in-SM front-end time for a memory access: decode, address
    /// generation, coalescing, up to the L1 tag probe (the head of the
    /// paper's "SM Base" component).
    pub sm_base_latency: u64,
    /// Capacity of the in-SM memory front-end pipeline (coalesced
    /// transactions in flight before the L1).
    pub lsu_queue: usize,
    /// Cache-line / memory-transaction size in bytes.
    pub line_size: u64,
    /// L1 data cache, if the architecture has one.
    pub l1: Option<L1Config>,
    /// Interconnect (applied to both request and reply networks).
    pub icnt: IcntConfig,
    /// Fixed raster-operations pipeline latency in front of the L2.
    pub rop_latency: u64,
    /// ROP pipeline slot capacity.
    pub rop_queue: usize,
    /// L2 cache, if the architecture has one.
    pub l2: Option<L2Config>,
    /// DRAM channel config (per partition).
    pub dram: DramConfig,
    /// Number of memory partitions.
    pub num_partitions: usize,
    /// Partition interleave chunk in bytes.
    pub partition_chunk: u64,
    /// DRAM banks per partition.
    pub dram_banks: usize,
    /// DRAM row size in bytes.
    pub dram_row_bytes: u64,
    /// Response-side writeback latency at the SM (reply ejection to register
    /// writeback; tail of the paper's "Fetch2SM" component).
    pub fill_latency: u64,
    /// Run the cycle-level invariant sanitizer (see [`crate::Sanitizer`]):
    /// request conservation, MSHR leak detection, queue-capacity audits and
    /// per-request timeline checks. On by default; debug builds (including
    /// `cargo test`) panic at the end of a run with violations.
    pub sanitize: bool,
    /// Event tracing and counter sampling (see `gpu-trace`). Disabled by
    /// default; a disabled tracer records nothing and leaves simulated
    /// timing bit-identical.
    pub trace: TraceConfig,
}

impl GpuConfig {
    /// A neutral GF100 (Fermi)-like configuration: 15 SMs, 48 warps/SM,
    /// 16 KB L1 (global+local), 6 partitions with 128 KB L2 slices, FR-FCFS
    /// GDDR5 timing. Latencies are calibrated so the unloaded global-memory
    /// pipeline matches the paper's Fermi column of Table I
    /// (L1 ≈ 45, L2 ≈ 310, DRAM ≈ 685 cycles).
    pub fn fermi_gf100() -> Self {
        GpuConfig {
            name: "GF100-like (Fermi)".to_string(),
            num_sms: 15,
            warp_size: 32,
            max_warps_per_sm: 48,
            max_ctas_per_sm: 8,
            issue_width: 2,
            scheduler: SchedPolicy::Lrr,
            alu_latency: 18,
            fp_latency: 18,
            sfu_latency: 40,
            shared_latency: 30,
            sm_base_latency: 28,
            lsu_queue: 34,
            line_size: 128,
            l1: Some(L1Config {
                cache: CacheConfig {
                    sets: 32,
                    ways: 4,
                    line_size: 128,
                    replacement: Replacement::Lru,
                },
                mshr: MshrConfig {
                    entries: 32,
                    max_merged: 8,
                },
                hit_latency: 17,
                miss_queue: 8,
                serve_global: true,
                serve_local: true,
                sector_bytes: None,
            }),
            icnt: IcntConfig {
                latency: 48,
                output_queue: 8,
                inject_per_src: 1,
                eject_per_dst: 1,
            },
            rop_latency: 60,
            rop_queue: 16,
            l2: Some(L2Config {
                cache: CacheConfig {
                    sets: 128,
                    ways: 8,
                    line_size: 128,
                    replacement: Replacement::Lru,
                },
                mshr: MshrConfig {
                    entries: 32,
                    max_merged: 8,
                },
                hit_latency: 115,
                input_queue: 8,
                write_policy: WritePolicy::WriteThrough,
                sector_bytes: None,
                slices: 1,
            }),
            dram: DramConfig {
                timing: DramTiming {
                    t_rcd: 80,
                    t_rp: 80,
                    t_cl: 321,
                    burst: 8,
                },
                queue_capacity: 128,
                sched: DramSched::FrFcfs,
            },
            num_partitions: 6,
            partition_chunk: 256,
            dram_banks: 16,
            dram_row_bytes: 2048,
            fill_latency: 10,
            sanitize: true,
            trace: TraceConfig::default(),
        }
    }

    // ---- ArchDesc interconversion -----------------------------------------

    /// Builds a validated config from a declarative architecture
    /// description. The sanitizer defaults on and tracing off, exactly as
    /// in [`GpuConfig::fermi_gf100`] — observability switches are run
    /// settings, not part of the architecture.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural invariant of the description.
    pub fn from_arch(desc: &ArchDesc) -> Result<Self, ConfigError> {
        desc.validate()?;
        let l1 = desc.level(LevelKind::L1).and_then(|level| {
            level.geom.map(|g| L1Config {
                cache: g.cache,
                mshr: g.mshr,
                hit_latency: g.hit_latency,
                miss_queue: level.queue,
                serve_global: level.routing.global,
                serve_local: level.routing.local,
                sector_bytes: g.sector_bytes,
            })
        });
        let l2 = desc.level(LevelKind::L2).and_then(|level| {
            level.geom.map(|g| L2Config {
                cache: g.cache,
                mshr: g.mshr,
                hit_latency: g.hit_latency,
                input_queue: level.queue,
                write_policy: level.write_policy,
                sector_bytes: g.sector_bytes,
                slices: level.slices,
            })
        });
        let dram_queue = desc
            .level(LevelKind::DramFront)
            .expect("validated topology lists the DRAM front")
            .queue;
        Ok(GpuConfig {
            name: desc.name.clone(),
            num_sms: desc.num_sms,
            warp_size: desc.sm.warp_size,
            max_warps_per_sm: desc.sm.max_warps,
            max_ctas_per_sm: desc.sm.max_ctas,
            issue_width: desc.sm.issue_width,
            scheduler: desc.sm.scheduler,
            alu_latency: desc.sm.alu_latency,
            fp_latency: desc.sm.fp_latency,
            sfu_latency: desc.sm.sfu_latency,
            shared_latency: desc.sm.shared_latency,
            sm_base_latency: desc.sm.base_latency,
            lsu_queue: desc.sm.lsu_queue,
            line_size: desc.line_size,
            l1,
            icnt: desc.fabric.icnt,
            rop_latency: desc.fabric.rop_latency,
            rop_queue: desc.fabric.rop_queue,
            l2,
            dram: DramConfig {
                timing: desc.mem.timing,
                queue_capacity: dram_queue,
                sched: desc.mem.sched,
            },
            num_partitions: desc.mem.num_partitions,
            partition_chunk: desc.mem.partition_chunk,
            dram_banks: desc.mem.banks,
            dram_row_bytes: desc.mem.row_bytes,
            fill_latency: desc.sm.fill_latency,
            sanitize: true,
            trace: TraceConfig::default(),
        })
    }

    /// The declarative description of this machine. Round-trips through
    /// [`GpuConfig::from_arch`] up to the structural queue defaults of
    /// absent cache levels (an absent L1/L2 reconstructs with the fallback
    /// queue capacity and [`Routing::NONE`]).
    pub fn arch_desc(&self) -> ArchDesc {
        ArchDesc {
            name: self.name.clone(),
            num_sms: self.num_sms,
            line_size: self.line_size,
            sm: SmDesc {
                warp_size: self.warp_size,
                max_warps: self.max_warps_per_sm,
                max_ctas: self.max_ctas_per_sm,
                issue_width: self.issue_width,
                scheduler: self.scheduler,
                alu_latency: self.alu_latency,
                fp_latency: self.fp_latency,
                sfu_latency: self.sfu_latency,
                shared_latency: self.shared_latency,
                base_latency: self.sm_base_latency,
                lsu_queue: self.lsu_queue,
                fill_latency: self.fill_latency,
            },
            levels: self.level_descs().to_vec(),
            fabric: FabricDesc {
                icnt: self.icnt,
                rop_latency: self.rop_latency,
                rop_queue: self.rop_queue,
            },
            mem: MemDesc {
                timing: self.dram.timing,
                sched: self.dram.sched,
                num_partitions: self.num_partitions,
                partition_chunk: self.partition_chunk,
                banks: self.dram_banks,
                row_bytes: self.dram_row_bytes,
            },
        }
    }

    /// The memory hierarchy as level descriptors, in pipeline order. Built
    /// on the stack (no allocation) so simulator constructors and hot
    /// audits can walk the hierarchy freely; absent caches keep their
    /// structural entry with no geometry.
    pub fn level_descs(&self) -> [LevelDesc; 3] {
        let l1 = match &self.l1 {
            Some(l1) => LevelDesc {
                kind: LevelKind::L1,
                geom: Some(CacheGeom {
                    cache: l1.cache,
                    mshr: l1.mshr,
                    hit_latency: l1.hit_latency,
                    sector_bytes: l1.sector_bytes,
                }),
                queue: l1.miss_queue,
                routing: Routing {
                    global: l1.serve_global,
                    local: l1.serve_local,
                },
                // The modeled L1 is always write-through write-evict; only
                // the L2 has a configurable store policy.
                write_policy: WritePolicy::WriteThrough,
                slices: 1,
            },
            None => LevelDesc {
                kind: LevelKind::L1,
                geom: None,
                queue: ABSENT_LEVEL_QUEUE,
                routing: Routing::NONE,
                write_policy: WritePolicy::WriteThrough,
                slices: 1,
            },
        };
        let l2 = match &self.l2 {
            Some(l2) => LevelDesc {
                kind: LevelKind::L2,
                geom: Some(CacheGeom {
                    cache: l2.cache,
                    mshr: l2.mshr,
                    hit_latency: l2.hit_latency,
                    sector_bytes: l2.sector_bytes,
                }),
                queue: l2.input_queue,
                routing: Routing::ALL,
                write_policy: l2.write_policy,
                slices: l2.slices,
            },
            None => LevelDesc {
                kind: LevelKind::L2,
                geom: None,
                queue: ABSENT_LEVEL_QUEUE,
                routing: Routing::NONE,
                write_policy: WritePolicy::WriteThrough,
                slices: 1,
            },
        };
        let dram = LevelDesc {
            kind: LevelKind::DramFront,
            geom: None,
            queue: self.dram.queue_capacity,
            routing: Routing::ALL,
            write_policy: WritePolicy::WriteThrough,
            slices: 1,
        };
        [l1, l2, dram]
    }

    /// The descriptor of one hierarchy level (stack-built, no allocation).
    pub fn level_desc(&self, kind: LevelKind) -> LevelDesc {
        let idx = match kind {
            LevelKind::L1 => 0,
            LevelKind::L2 => 1,
            LevelKind::DramFront => 2,
        };
        self.level_descs()[idx]
    }

    /// Returns `true` if the L1 serves accesses of the given pipeline space.
    pub fn l1_serves(&self, space: gpu_mem::PipelineSpace) -> bool {
        self.level_desc(LevelKind::L1)
            .effective_routing()
            .serves(space)
    }

    /// Analytic unloaded (zero-contention) latency of a hit at the given
    /// hierarchy level, as a generic walk over the level list (see
    /// [`ArchDesc::unloaded_latency`]).
    pub fn unloaded_latency(&self, kind: LevelKind) -> Option<u64> {
        self.arch_desc().unloaded_latency(kind)
    }

    /// Analytic unloaded (zero-contention) latency of an L1 hit: front-end
    /// plus tag/data access. The hit path writes back directly (it does not
    /// traverse the response fill stage), so this matches the measured
    /// dependent-load round trip exactly.
    pub fn unloaded_l1_hit(&self) -> Option<u64> {
        self.unloaded_latency(LevelKind::L1)
    }

    /// Analytic unloaded latency of an L2 hit through the whole pipeline.
    /// Miss detection at the L1 is a same-cycle tag probe, so the L1 hit
    /// latency does not appear.
    pub fn unloaded_l2_hit(&self) -> Option<u64> {
        self.unloaded_latency(LevelKind::L2)
    }

    /// Analytic unloaded latency of a steady-state DRAM access through the
    /// whole pipeline. A pointer-chase ring revisits each bank with a new
    /// row, so steady state is the row-*conflict* path.
    pub fn unloaded_dram(&self) -> u64 {
        self.unloaded_latency(LevelKind::DramFront)
            .expect("the DRAM front is always walkable")
    }

    /// Builds the address map implied by this config.
    pub fn address_map(&self) -> gpu_mem::AddressMap {
        gpu_mem::AddressMap::new(
            self.num_partitions,
            self.partition_chunk,
            self.dram_banks,
            self.dram_row_bytes,
        )
    }

    /// Validates structural invariants, returning the first problem found:
    /// zero SMs/partitions, warp size outside 1..=32, mismatched or
    /// non-power-of-two line sizes, any zero-capacity queue (a pipeline
    /// stage that can never hold a request deadlocks the machine), empty
    /// MSHR tables, or an L1 that is slower than the L2 behind it. The
    /// structural checks are [`ArchDesc::validate`] applied to this
    /// config's description; only the trace sampling knob is checked here.
    ///
    /// # Errors
    ///
    /// Returns the violated invariant as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.arch_desc().validate()?;
        if self.trace.sample_interval == 0 {
            return Err(ConfigError::TraceSampleInterval);
        }
        Ok(())
    }

    /// Validates structural invariants (see [`GpuConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics with the violated invariant's description.
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }

    // ---- snapshot codec and content hashing --------------------------------

    /// Serializes the complete configuration into a checkpoint: the
    /// versioned [`ArchDesc`] frame, then the trace/sanitize switches — a
    /// restored GPU must be indistinguishable from the one that was
    /// checkpointed.
    pub fn encode_state(&self, e: &mut Encoder) {
        self.arch_desc().encode_state(e);
        e.bool(self.sanitize);
        e.bool(self.trace.enabled);
        e.u64(self.trace.sample_interval);
        e.usize(self.trace.max_events);
        e.usize(self.trace.counter_capacity);
    }

    /// Decodes a configuration written by [`GpuConfig::encode_state`]:
    /// the architecture-description frame is decoded, structurally
    /// validated and lowered via [`GpuConfig::from_arch`].
    ///
    /// # Errors
    ///
    /// Rejects unknown frame versions and enum tags, and descriptions that
    /// fail structural validation — always a typed error, never a panic.
    pub fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        let desc = ArchDesc::decode(d)?;
        let mut cfg = GpuConfig::from_arch(&desc).map_err(|_| {
            SnapshotError::InvalidValue("configuration fails structural validation")
        })?;
        cfg.sanitize = d.bool()?;
        cfg.trace = TraceConfig {
            enabled: d.bool()?,
            sample_interval: d.u64()?,
            max_events: d.usize()?,
            counter_capacity: d.usize()?,
        };
        Ok(cfg)
    }

    /// Feeds every field that can change simulated timing into `h`, in a
    /// fixed order. Deliberately excludes the display `name` and the
    /// `sanitize`/`trace` switches: observability must not change a run's
    /// content hash (the traced-vs-untraced identity guarantee), and
    /// renaming a preset must not invalidate its cached results.
    ///
    /// The byte stream is pinned by the preset golden test — it feeds
    /// `RunSummary::content_hash` — so it keeps the flat historical field
    /// order rather than delegating to [`ArchDesc::hash_desc`].
    pub fn hash_timing(&self, h: &mut StableHasher) {
        h.usize(self.num_sms);
        h.u32(self.warp_size);
        h.usize(self.max_warps_per_sm);
        h.usize(self.max_ctas_per_sm);
        h.usize(self.issue_width);
        h.u8(match self.scheduler {
            SchedPolicy::Lrr => 0,
            SchedPolicy::Gto => 1,
        });
        h.u64(self.alu_latency);
        h.u64(self.fp_latency);
        h.u64(self.sfu_latency);
        h.u64(self.shared_latency);
        h.u64(self.sm_base_latency);
        h.usize(self.lsu_queue);
        h.u64(self.line_size);
        h.bool(self.l1.is_some());
        if let Some(l1) = &self.l1 {
            hash_cache_cfg(h, &l1.cache);
            h.usize(l1.mshr.entries);
            h.usize(l1.mshr.max_merged);
            h.u64(l1.hit_latency);
            h.usize(l1.miss_queue);
            h.bool(l1.serve_global);
            h.bool(l1.serve_local);
        }
        h.u64(self.icnt.latency);
        h.usize(self.icnt.output_queue);
        h.usize(self.icnt.inject_per_src);
        h.usize(self.icnt.eject_per_dst);
        h.u64(self.rop_latency);
        h.usize(self.rop_queue);
        h.bool(self.l2.is_some());
        if let Some(l2) = &self.l2 {
            hash_cache_cfg(h, &l2.cache);
            h.usize(l2.mshr.entries);
            h.usize(l2.mshr.max_merged);
            h.u64(l2.hit_latency);
            h.usize(l2.input_queue);
            h.u8(match l2.write_policy {
                WritePolicy::WriteThrough => 0,
                WritePolicy::WriteBack => 1,
            });
        }
        h.u64(self.dram.timing.t_rcd);
        h.u64(self.dram.timing.t_rp);
        h.u64(self.dram.timing.t_cl);
        h.u64(self.dram.timing.burst);
        h.usize(self.dram.queue_capacity);
        h.u8(match self.dram.sched {
            DramSched::FrFcfs => 0,
            DramSched::Fcfs => 1,
        });
        h.usize(self.num_partitions);
        h.u64(self.partition_chunk);
        h.usize(self.dram_banks);
        h.u64(self.dram_row_bytes);
        h.u64(self.fill_latency);
        // The v2 geometry contributes only when it deviates from the
        // pre-sector defaults, so every unsectored single-slice config keeps
        // its historical content hash (tag bytes prevent stream aliasing).
        if let Some(sector) = self.l1.as_ref().and_then(|l1| l1.sector_bytes) {
            h.u8(0xA1);
            h.u64(sector);
        }
        if let Some(sector) = self.l2.as_ref().and_then(|l2| l2.sector_bytes) {
            h.u8(0xA2);
            h.u64(sector);
        }
        if let Some(l2) = &self.l2 {
            if l2.slices > 1 {
                h.u8(0xA3);
                h.usize(l2.slices);
            }
        }
    }

    /// The machine-wide memory-transaction granule: the smallest sector any
    /// cache level declares, or the full line when nothing is sectored (see
    /// [`ArchDesc::transaction_granule`]).
    pub fn transaction_granule(&self) -> u64 {
        self.l1
            .as_ref()
            .and_then(|l1| l1.sector_bytes)
            .into_iter()
            .chain(self.l2.as_ref().and_then(|l2| l2.sector_bytes))
            .min()
            .unwrap_or(self.line_size)
    }
}

fn hash_cache_cfg(h: &mut StableHasher, c: &CacheConfig) {
    h.usize(c.sets);
    h.usize(c.ways);
    h.u64(c.line_size);
    h.u8(match c.replacement {
        Replacement::Lru => 0,
        Replacement::Fifo => 1,
    });
}

// `GpuConfig` is shared by reference across the `latency-core` worker pool
// (each experiment point clones it into its own `Gpu`), so it must stay
// `Clone + Send + Sync`; adding a non-thread-safe field breaks this build.
const _: () = {
    const fn pool_shareable<T: Clone + Send + Sync>() {}
    pool_shareable::<GpuConfig>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::PipelineSpace;

    #[test]
    fn gf100_is_valid() {
        let c = GpuConfig::fermi_gf100();
        c.assert_valid();
        assert!(c.l1_serves(PipelineSpace::Global));
        assert!(c.l1_serves(PipelineSpace::Local));
    }

    #[test]
    fn gf100_unloaded_latencies_near_table1() {
        let c = GpuConfig::fermi_gf100();
        let l1 = c.unloaded_l1_hit().unwrap();
        let l2 = c.unloaded_l2_hit().unwrap();
        let dram = c.unloaded_dram();
        // Fermi column of Table I: 45 / 310 / 685.
        assert!((40..=50).contains(&l1), "L1 {l1}");
        assert!((300..=320).contains(&l2), "L2 {l2}");
        assert!((670..=700).contains(&dram), "DRAM {dram}");
    }

    #[test]
    fn l1_service_respects_absence() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1 = None;
        assert!(!c.l1_serves(PipelineSpace::Global));
        assert!(!c.l1_serves(PipelineSpace::Local));
        assert_eq!(c.unloaded_l1_hit(), None);
    }

    #[test]
    fn address_map_matches_partitions() {
        let c = GpuConfig::fermi_gf100();
        assert_eq!(c.address_map().partitions(), c.num_partitions);
    }

    #[test]
    fn sanitizer_is_on_by_default() {
        assert!(GpuConfig::fermi_gf100().sanitize);
    }

    #[test]
    fn tracing_is_off_by_default() {
        assert!(!GpuConfig::fermi_gf100().trace.enabled);
    }

    #[test]
    fn arch_desc_roundtrips_through_from_arch() {
        let c = GpuConfig::fermi_gf100();
        let back = GpuConfig::from_arch(&c.arch_desc()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn sectored_sliced_config_roundtrips_and_hashes_apart() {
        let base = GpuConfig::fermi_gf100();
        let mut modern = base.clone();
        modern.l1.as_mut().unwrap().sector_bytes = Some(32);
        let l2 = modern.l2.as_mut().unwrap();
        l2.sector_bytes = Some(32);
        l2.slices = 4;
        modern.assert_valid();
        let back = GpuConfig::from_arch(&modern.arch_desc()).unwrap();
        assert_eq!(back, modern);
        assert_eq!(modern.transaction_granule(), 32);
        assert_eq!(base.transaction_granule(), 128);
        let digest = |c: &GpuConfig| {
            let mut h = StableHasher::new();
            c.hash_timing(&mut h);
            h.finish()
        };
        assert_ne!(digest(&base), digest(&modern));
    }

    #[test]
    fn cacheless_config_roundtrips_with_structural_defaults() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1 = None;
        c.l2 = None;
        let back = GpuConfig::from_arch(&c.arch_desc()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn from_arch_rejects_invalid_descriptions() {
        let mut desc = GpuConfig::fermi_gf100().arch_desc();
        desc.fabric.rop_queue = 0;
        assert_eq!(GpuConfig::from_arch(&desc), Err(ConfigError::RopQueue));
    }

    #[test]
    fn validate_reports_typed_errors() {
        let mut c = GpuConfig::fermi_gf100();
        c.num_sms = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoSms));
        let mut c = GpuConfig::fermi_gf100();
        c.trace.sample_interval = 0;
        assert_eq!(c.validate(), Err(ConfigError::TraceSampleInterval));
    }

    #[test]
    fn unloaded_walk_matches_historical_formulas() {
        let c = GpuConfig::fermi_gf100();
        let l1 = c.l1.as_ref().unwrap();
        let l2 = c.l2.as_ref().unwrap();
        assert_eq!(
            c.unloaded_l1_hit(),
            Some(c.sm_base_latency + l1.hit_latency)
        );
        assert_eq!(
            c.unloaded_l2_hit(),
            Some(
                c.sm_base_latency
                    + 2 * c.icnt.latency
                    + c.rop_latency
                    + l2.hit_latency
                    + c.fill_latency
                    + 1
            )
        );
        assert_eq!(
            c.unloaded_dram(),
            c.sm_base_latency
                + 2 * c.icnt.latency
                + c.rop_latency
                + c.dram.timing.row_conflict()
                + c.dram.timing.burst
                + c.fill_latency
                + 2
        );
    }

    #[test]
    #[should_panic(expected = "trace sample interval")]
    fn zero_sample_interval_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.trace.sample_interval = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "ROP queue capacity")]
    fn zero_rop_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.rop_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "DRAM controller queue")]
    fn zero_dram_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.dram.queue_capacity = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "LSU queue")]
    fn undersized_lsu_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.lsu_queue = c.warp_size as usize; // one short of a worst-case warp
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 miss queue")]
    fn zero_l1_miss_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1.as_mut().unwrap().miss_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L2 input queue")]
    fn zero_l2_input_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l2.as_mut().unwrap().input_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 MSHR merge depth")]
    fn zero_l1_merge_depth_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1.as_mut().unwrap().mshr.max_merged = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 hit latency")]
    fn l1_slower_than_l2_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1.as_mut().unwrap().hit_latency = c.l2.as_ref().unwrap().hit_latency;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_size_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.line_size = 96;
        c.assert_valid();
    }

    #[test]
    fn missing_cache_levels_skip_their_checks() {
        // A Tesla-style config (no caches) must not trip the L1/L2 checks.
        let mut c = GpuConfig::fermi_gf100();
        c.l1 = None;
        c.l2 = None;
        c.assert_valid();
    }
}
