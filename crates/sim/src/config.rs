//! GPU configuration: every latency, queue depth and structural parameter of
//! the modeled machine.
//!
//! A [`GpuConfig`] fully describes one simulated GPU. The per-generation
//! presets that reproduce the paper's Table I live in `latency-core`
//! (`ArchPreset`); this module only defines the knobs and a neutral
//! Fermi-GF100-like default, mirroring how GPGPU-Sim separates the simulator
//! from its config files.

use gpu_icnt::IcntConfig;
use gpu_mem::{CacheConfig, DramConfig, DramSched, DramTiming, MshrConfig, Replacement};
use gpu_snapshot::{Decoder, Encoder, SnapshotError, StableHasher};
use gpu_trace::TraceConfig;

/// Warp scheduling policy of an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Loose round-robin: rotate priority one slot past the last issuer.
    Lrr,
    /// Greedy-then-oldest: keep issuing the same warp until it stalls, then
    /// fall back to the oldest ready warp.
    Gto,
}

/// L1 data-cache configuration, including which memory spaces it serves —
/// the per-generation policy at the heart of the paper's §II discussion
/// (Fermi: global+local; Kepler: local only; Maxwell: removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Tag-array geometry.
    pub cache: CacheConfig,
    /// MSHR table.
    pub mshr: MshrConfig,
    /// Hit latency: probe-to-data, in cycles.
    pub hit_latency: u64,
    /// Miss-queue capacity between the L1 and the interconnect injection
    /// port (the paper's `L1toICNT` queue).
    pub miss_queue: usize,
    /// Does the L1 cache global-space accesses?
    pub serve_global: bool,
    /// Does the L1 cache local-space accesses?
    pub serve_local: bool,
}

/// How the L2 handles global stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write-through, no-allocate, write-evict: every store goes to DRAM
    /// (the workspace default, and the policy the Table-I calibration
    /// assumes).
    WriteThrough,
    /// Write-back with write-allocate (no fetch-on-write): stores complete
    /// at the L2 and dirty victims are written back on eviction — closer to
    /// real Fermi's L2 and available as an ablation (experiment E8).
    WriteBack,
}

/// L2 slice configuration (one slice per memory partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Tag-array geometry (per slice).
    pub cache: CacheConfig,
    /// MSHR table (per slice).
    pub mshr: MshrConfig,
    /// Hit latency: probe-to-data, in cycles.
    pub hit_latency: u64,
    /// Input queue between the ROP pipeline and the L2 access stage.
    pub input_queue: usize,
    /// Store handling policy.
    pub write_policy: WritePolicy,
}

/// Complete description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name ("GF100-like", …) used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp (≤ 32).
    pub warp_size: u32,
    /// Warp slots per SM.
    pub max_warps_per_sm: usize,
    /// Maximum concurrent CTAs per SM.
    pub max_ctas_per_sm: usize,
    /// Instructions issued per SM per cycle (distinct warps).
    pub issue_width: usize,
    /// Warp scheduler policy.
    pub scheduler: SchedPolicy,
    /// Integer-ALU result latency.
    pub alu_latency: u64,
    /// FP32 result latency.
    pub fp_latency: u64,
    /// SFU (div/transcendental) result latency.
    pub sfu_latency: u64,
    /// Shared-memory access latency.
    pub shared_latency: u64,
    /// Fixed in-SM front-end time for a memory access: decode, address
    /// generation, coalescing, up to the L1 tag probe (the head of the
    /// paper's "SM Base" component).
    pub sm_base_latency: u64,
    /// Capacity of the in-SM memory front-end pipeline (coalesced
    /// transactions in flight before the L1).
    pub lsu_queue: usize,
    /// Cache-line / memory-transaction size in bytes.
    pub line_size: u64,
    /// L1 data cache, if the architecture has one.
    pub l1: Option<L1Config>,
    /// Interconnect (applied to both request and reply networks).
    pub icnt: IcntConfig,
    /// Fixed raster-operations pipeline latency in front of the L2.
    pub rop_latency: u64,
    /// ROP pipeline slot capacity.
    pub rop_queue: usize,
    /// L2 cache, if the architecture has one.
    pub l2: Option<L2Config>,
    /// DRAM channel config (per partition).
    pub dram: DramConfig,
    /// Number of memory partitions.
    pub num_partitions: usize,
    /// Partition interleave chunk in bytes.
    pub partition_chunk: u64,
    /// DRAM banks per partition.
    pub dram_banks: usize,
    /// DRAM row size in bytes.
    pub dram_row_bytes: u64,
    /// Response-side writeback latency at the SM (reply ejection to register
    /// writeback; tail of the paper's "Fetch2SM" component).
    pub fill_latency: u64,
    /// Run the cycle-level invariant sanitizer (see [`crate::Sanitizer`]):
    /// request conservation, MSHR leak detection, queue-capacity audits and
    /// per-request timeline checks. On by default; debug builds (including
    /// `cargo test`) panic at the end of a run with violations.
    pub sanitize: bool,
    /// Event tracing and counter sampling (see `gpu-trace`). Disabled by
    /// default; a disabled tracer records nothing and leaves simulated
    /// timing bit-identical.
    pub trace: TraceConfig,
}

impl GpuConfig {
    /// A neutral GF100 (Fermi)-like configuration: 15 SMs, 48 warps/SM,
    /// 16 KB L1 (global+local), 6 partitions with 128 KB L2 slices, FR-FCFS
    /// GDDR5 timing. Latencies are calibrated so the unloaded global-memory
    /// pipeline matches the paper's Fermi column of Table I
    /// (L1 ≈ 45, L2 ≈ 310, DRAM ≈ 685 cycles).
    pub fn fermi_gf100() -> Self {
        GpuConfig {
            name: "GF100-like (Fermi)".to_string(),
            num_sms: 15,
            warp_size: 32,
            max_warps_per_sm: 48,
            max_ctas_per_sm: 8,
            issue_width: 2,
            scheduler: SchedPolicy::Lrr,
            alu_latency: 18,
            fp_latency: 18,
            sfu_latency: 40,
            shared_latency: 30,
            sm_base_latency: 28,
            lsu_queue: 34,
            line_size: 128,
            l1: Some(L1Config {
                cache: CacheConfig {
                    sets: 32,
                    ways: 4,
                    line_size: 128,
                    replacement: Replacement::Lru,
                },
                mshr: MshrConfig {
                    entries: 32,
                    max_merged: 8,
                },
                hit_latency: 17,
                miss_queue: 8,
                serve_global: true,
                serve_local: true,
            }),
            icnt: IcntConfig {
                latency: 48,
                output_queue: 8,
                inject_per_src: 1,
                eject_per_dst: 1,
            },
            rop_latency: 60,
            rop_queue: 16,
            l2: Some(L2Config {
                cache: CacheConfig {
                    sets: 128,
                    ways: 8,
                    line_size: 128,
                    replacement: Replacement::Lru,
                },
                mshr: MshrConfig {
                    entries: 32,
                    max_merged: 8,
                },
                hit_latency: 115,
                input_queue: 8,
                write_policy: WritePolicy::WriteThrough,
            }),
            dram: DramConfig {
                timing: DramTiming {
                    t_rcd: 80,
                    t_rp: 80,
                    t_cl: 321,
                    burst: 8,
                },
                queue_capacity: 128,
                sched: DramSched::FrFcfs,
            },
            num_partitions: 6,
            partition_chunk: 256,
            dram_banks: 16,
            dram_row_bytes: 2048,
            fill_latency: 10,
            sanitize: true,
            trace: TraceConfig::default(),
        }
    }

    /// Returns `true` if the L1 serves accesses of the given pipeline space.
    pub fn l1_serves(&self, space: gpu_mem::PipelineSpace) -> bool {
        match &self.l1 {
            None => false,
            Some(l1) => match space {
                gpu_mem::PipelineSpace::Global => l1.serve_global,
                gpu_mem::PipelineSpace::Local => l1.serve_local,
            },
        }
    }

    /// Analytic unloaded (zero-contention) latency of an L1 hit: front-end
    /// plus tag/data access. The hit path writes back directly (it does not
    /// traverse the response fill stage), so this matches the measured
    /// dependent-load round trip exactly.
    pub fn unloaded_l1_hit(&self) -> Option<u64> {
        let l1 = self.l1.as_ref()?;
        Some(self.sm_base_latency + l1.hit_latency)
    }

    /// Analytic unloaded latency of an L2 hit through the whole pipeline.
    /// Miss detection at the L1 is a same-cycle tag probe, so the L1 hit
    /// latency does not appear; the `+1` is the L2 input-queue hop.
    pub fn unloaded_l2_hit(&self) -> Option<u64> {
        let l2 = self.l2.as_ref()?;
        Some(
            self.sm_base_latency
                + 2 * self.icnt.latency
                + self.rop_latency
                + l2.hit_latency
                + self.fill_latency
                + 1,
        )
    }

    /// Analytic unloaded latency of a steady-state DRAM access through the
    /// whole pipeline. A pointer-chase ring revisits each bank with a new
    /// row, so steady state is the row-*conflict* path; the `+2` covers the
    /// L2 input-queue and DRAM controller-queue hops.
    pub fn unloaded_dram(&self) -> u64 {
        self.sm_base_latency
            + 2 * self.icnt.latency
            + self.rop_latency
            + self.dram.timing.row_conflict()
            + self.dram.timing.burst
            + self.fill_latency
            + 2
    }

    /// Builds the address map implied by this config.
    pub fn address_map(&self) -> gpu_mem::AddressMap {
        gpu_mem::AddressMap::new(
            self.num_partitions,
            self.partition_chunk,
            self.dram_banks,
            self.dram_row_bytes,
        )
    }

    /// Validates structural invariants, returning the first problem found:
    /// zero SMs/partitions, warp size outside 1..=32, mismatched or
    /// non-power-of-two line sizes, any zero-capacity queue (a pipeline
    /// stage that can never hold a request deadlocks the machine), empty
    /// MSHR tables, or an L1 that is slower than the L2 behind it.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        fn check(ok: bool, msg: &str) -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(msg.to_string())
            }
        }
        check(self.num_sms > 0, "need at least one SM")?;
        check(self.num_partitions > 0, "need at least one partition")?;
        check(
            (1..=32).contains(&self.warp_size),
            "warp size must be 1..=32",
        )?;
        check(self.issue_width > 0, "issue width must be positive")?;
        check(self.max_warps_per_sm > 0, "need at least one warp slot")?;
        check(self.max_ctas_per_sm > 0, "need at least one CTA slot")?;
        check(
            self.line_size > 0 && self.line_size.is_power_of_two(),
            "line size must be a nonzero power of two",
        )?;
        // The coalescer emits up to warp_size + 1 transactions per access
        // and the issue stage requires that much free space, so a smaller
        // front-end pipe could never issue a memory instruction.
        check(
            self.lsu_queue > self.warp_size as usize,
            "LSU queue must hold a worst-case warp's transactions \
             (> warp_size)",
        )?;
        check(self.rop_queue > 0, "ROP queue capacity must be positive")?;
        check(
            self.icnt.output_queue > 0,
            "interconnect output queue capacity must be positive",
        )?;
        check(
            self.dram.queue_capacity > 0,
            "DRAM controller queue capacity must be positive",
        )?;
        if let Some(l1) = &self.l1 {
            check(
                l1.cache.line_size == self.line_size,
                "L1 line size mismatch",
            )?;
            check(l1.miss_queue > 0, "L1 miss queue capacity must be positive")?;
            check(l1.mshr.entries > 0, "L1 MSHR table needs entries")?;
            check(
                l1.mshr.max_merged > 0,
                "L1 MSHR merge depth must be positive",
            )?;
        }
        if let Some(l2) = &self.l2 {
            check(
                l2.cache.line_size == self.line_size,
                "L2 line size mismatch",
            )?;
            check(
                l2.input_queue > 0,
                "L2 input queue capacity must be positive",
            )?;
            check(l2.mshr.entries > 0, "L2 MSHR table needs entries")?;
            check(
                l2.mshr.max_merged > 0,
                "L2 MSHR merge depth must be positive",
            )?;
        }
        if let (Some(l1), Some(l2)) = (&self.l1, &self.l2) {
            if l1.hit_latency >= l2.hit_latency {
                return Err(format!(
                    "L1 hit latency ({}) must be below L2 hit latency ({})",
                    l1.hit_latency, l2.hit_latency
                ));
            }
        }
        check(
            self.trace.sample_interval > 0,
            "trace sample interval must be positive",
        )?;
        Ok(())
    }

    /// Validates structural invariants (see [`GpuConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics with the violated invariant's description.
    pub fn assert_valid(&self) {
        if let Err(msg) = self.validate() {
            panic!("{msg}");
        }
    }

    // ---- snapshot codec and content hashing --------------------------------

    /// Serializes the complete configuration into a checkpoint, including
    /// the display name and the trace/sanitize switches — a restored GPU
    /// must be indistinguishable from the one that was checkpointed.
    pub fn encode_state(&self, e: &mut Encoder) {
        e.str(&self.name);
        e.usize(self.num_sms);
        e.u32(self.warp_size);
        e.usize(self.max_warps_per_sm);
        e.usize(self.max_ctas_per_sm);
        e.usize(self.issue_width);
        e.u8(match self.scheduler {
            SchedPolicy::Lrr => 0,
            SchedPolicy::Gto => 1,
        });
        e.u64(self.alu_latency);
        e.u64(self.fp_latency);
        e.u64(self.sfu_latency);
        e.u64(self.shared_latency);
        e.u64(self.sm_base_latency);
        e.usize(self.lsu_queue);
        e.u64(self.line_size);
        match &self.l1 {
            None => e.bool(false),
            Some(l1) => {
                e.bool(true);
                encode_cache_cfg(e, &l1.cache);
                encode_mshr_cfg(e, &l1.mshr);
                e.u64(l1.hit_latency);
                e.usize(l1.miss_queue);
                e.bool(l1.serve_global);
                e.bool(l1.serve_local);
            }
        }
        e.u64(self.icnt.latency);
        e.usize(self.icnt.output_queue);
        e.usize(self.icnt.inject_per_src);
        e.usize(self.icnt.eject_per_dst);
        e.u64(self.rop_latency);
        e.usize(self.rop_queue);
        match &self.l2 {
            None => e.bool(false),
            Some(l2) => {
                e.bool(true);
                encode_cache_cfg(e, &l2.cache);
                encode_mshr_cfg(e, &l2.mshr);
                e.u64(l2.hit_latency);
                e.usize(l2.input_queue);
                e.u8(match l2.write_policy {
                    WritePolicy::WriteThrough => 0,
                    WritePolicy::WriteBack => 1,
                });
            }
        }
        e.u64(self.dram.timing.t_rcd);
        e.u64(self.dram.timing.t_rp);
        e.u64(self.dram.timing.t_cl);
        e.u64(self.dram.timing.burst);
        e.usize(self.dram.queue_capacity);
        e.u8(match self.dram.sched {
            DramSched::FrFcfs => 0,
            DramSched::Fcfs => 1,
        });
        e.usize(self.num_partitions);
        e.u64(self.partition_chunk);
        e.usize(self.dram_banks);
        e.u64(self.dram_row_bytes);
        e.u64(self.fill_latency);
        e.bool(self.sanitize);
        e.bool(self.trace.enabled);
        e.u64(self.trace.sample_interval);
        e.usize(self.trace.max_events);
        e.usize(self.trace.counter_capacity);
    }

    /// Decodes a configuration written by [`GpuConfig::encode_state`].
    /// Callers must still run [`GpuConfig::validate`] before building a GPU
    /// from the result — the codec checks tags, not structural invariants.
    ///
    /// # Errors
    ///
    /// Rejects unknown enum tags and propagates decoder errors.
    pub fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        use SnapshotError::InvalidValue;
        let name = d.str()?.to_string();
        let num_sms = d.usize()?;
        let warp_size = d.u32()?;
        let max_warps_per_sm = d.usize()?;
        let max_ctas_per_sm = d.usize()?;
        let issue_width = d.usize()?;
        let scheduler = match d.u8()? {
            0 => SchedPolicy::Lrr,
            1 => SchedPolicy::Gto,
            _ => return Err(InvalidValue("unknown scheduler tag")),
        };
        let alu_latency = d.u64()?;
        let fp_latency = d.u64()?;
        let sfu_latency = d.u64()?;
        let shared_latency = d.u64()?;
        let sm_base_latency = d.u64()?;
        let lsu_queue = d.usize()?;
        let line_size = d.u64()?;
        let l1 = if d.bool()? {
            Some(L1Config {
                cache: decode_cache_cfg(d)?,
                mshr: decode_mshr_cfg(d)?,
                hit_latency: d.u64()?,
                miss_queue: d.usize()?,
                serve_global: d.bool()?,
                serve_local: d.bool()?,
            })
        } else {
            None
        };
        let icnt = IcntConfig {
            latency: d.u64()?,
            output_queue: d.usize()?,
            inject_per_src: d.usize()?,
            eject_per_dst: d.usize()?,
        };
        let rop_latency = d.u64()?;
        let rop_queue = d.usize()?;
        let l2 = if d.bool()? {
            Some(L2Config {
                cache: decode_cache_cfg(d)?,
                mshr: decode_mshr_cfg(d)?,
                hit_latency: d.u64()?,
                input_queue: d.usize()?,
                write_policy: match d.u8()? {
                    0 => WritePolicy::WriteThrough,
                    1 => WritePolicy::WriteBack,
                    _ => return Err(InvalidValue("unknown write-policy tag")),
                },
            })
        } else {
            None
        };
        let dram = DramConfig {
            timing: DramTiming {
                t_rcd: d.u64()?,
                t_rp: d.u64()?,
                t_cl: d.u64()?,
                burst: d.u64()?,
            },
            queue_capacity: d.usize()?,
            sched: match d.u8()? {
                0 => DramSched::FrFcfs,
                1 => DramSched::Fcfs,
                _ => return Err(InvalidValue("unknown DRAM scheduler tag")),
            },
        };
        Ok(GpuConfig {
            name,
            num_sms,
            warp_size,
            max_warps_per_sm,
            max_ctas_per_sm,
            issue_width,
            scheduler,
            alu_latency,
            fp_latency,
            sfu_latency,
            shared_latency,
            sm_base_latency,
            lsu_queue,
            line_size,
            l1,
            icnt,
            rop_latency,
            rop_queue,
            l2,
            dram,
            num_partitions: d.usize()?,
            partition_chunk: d.u64()?,
            dram_banks: d.usize()?,
            dram_row_bytes: d.u64()?,
            fill_latency: d.u64()?,
            sanitize: d.bool()?,
            trace: TraceConfig {
                enabled: d.bool()?,
                sample_interval: d.u64()?,
                max_events: d.usize()?,
                counter_capacity: d.usize()?,
            },
        })
    }

    /// Feeds every field that can change simulated timing into `h`, in a
    /// fixed order. Deliberately excludes the display `name` and the
    /// `sanitize`/`trace` switches: observability must not change a run's
    /// content hash (the traced-vs-untraced identity guarantee), and
    /// renaming a preset must not invalidate its cached results.
    pub fn hash_timing(&self, h: &mut StableHasher) {
        h.usize(self.num_sms);
        h.u32(self.warp_size);
        h.usize(self.max_warps_per_sm);
        h.usize(self.max_ctas_per_sm);
        h.usize(self.issue_width);
        h.u8(match self.scheduler {
            SchedPolicy::Lrr => 0,
            SchedPolicy::Gto => 1,
        });
        h.u64(self.alu_latency);
        h.u64(self.fp_latency);
        h.u64(self.sfu_latency);
        h.u64(self.shared_latency);
        h.u64(self.sm_base_latency);
        h.usize(self.lsu_queue);
        h.u64(self.line_size);
        h.bool(self.l1.is_some());
        if let Some(l1) = &self.l1 {
            hash_cache_cfg(h, &l1.cache);
            h.usize(l1.mshr.entries);
            h.usize(l1.mshr.max_merged);
            h.u64(l1.hit_latency);
            h.usize(l1.miss_queue);
            h.bool(l1.serve_global);
            h.bool(l1.serve_local);
        }
        h.u64(self.icnt.latency);
        h.usize(self.icnt.output_queue);
        h.usize(self.icnt.inject_per_src);
        h.usize(self.icnt.eject_per_dst);
        h.u64(self.rop_latency);
        h.usize(self.rop_queue);
        h.bool(self.l2.is_some());
        if let Some(l2) = &self.l2 {
            hash_cache_cfg(h, &l2.cache);
            h.usize(l2.mshr.entries);
            h.usize(l2.mshr.max_merged);
            h.u64(l2.hit_latency);
            h.usize(l2.input_queue);
            h.u8(match l2.write_policy {
                WritePolicy::WriteThrough => 0,
                WritePolicy::WriteBack => 1,
            });
        }
        h.u64(self.dram.timing.t_rcd);
        h.u64(self.dram.timing.t_rp);
        h.u64(self.dram.timing.t_cl);
        h.u64(self.dram.timing.burst);
        h.usize(self.dram.queue_capacity);
        h.u8(match self.dram.sched {
            DramSched::FrFcfs => 0,
            DramSched::Fcfs => 1,
        });
        h.usize(self.num_partitions);
        h.u64(self.partition_chunk);
        h.usize(self.dram_banks);
        h.u64(self.dram_row_bytes);
        h.u64(self.fill_latency);
    }
}

fn encode_cache_cfg(e: &mut Encoder, c: &CacheConfig) {
    e.usize(c.sets);
    e.usize(c.ways);
    e.u64(c.line_size);
    e.u8(match c.replacement {
        Replacement::Lru => 0,
        Replacement::Fifo => 1,
    });
}

fn decode_cache_cfg(d: &mut Decoder) -> Result<CacheConfig, SnapshotError> {
    Ok(CacheConfig {
        sets: d.usize()?,
        ways: d.usize()?,
        line_size: d.u64()?,
        replacement: match d.u8()? {
            0 => Replacement::Lru,
            1 => Replacement::Fifo,
            _ => return Err(SnapshotError::InvalidValue("unknown replacement tag")),
        },
    })
}

fn hash_cache_cfg(h: &mut StableHasher, c: &CacheConfig) {
    h.usize(c.sets);
    h.usize(c.ways);
    h.u64(c.line_size);
    h.u8(match c.replacement {
        Replacement::Lru => 0,
        Replacement::Fifo => 1,
    });
}

fn encode_mshr_cfg(e: &mut Encoder, m: &MshrConfig) {
    e.usize(m.entries);
    e.usize(m.max_merged);
}

fn decode_mshr_cfg(d: &mut Decoder) -> Result<MshrConfig, SnapshotError> {
    Ok(MshrConfig {
        entries: d.usize()?,
        max_merged: d.usize()?,
    })
}

// `GpuConfig` is shared by reference across the `latency-core` worker pool
// (each experiment point clones it into its own `Gpu`), so it must stay
// `Clone + Send + Sync`; adding a non-thread-safe field breaks this build.
const _: () = {
    const fn pool_shareable<T: Clone + Send + Sync>() {}
    pool_shareable::<GpuConfig>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::PipelineSpace;

    #[test]
    fn gf100_is_valid() {
        let c = GpuConfig::fermi_gf100();
        c.assert_valid();
        assert!(c.l1_serves(PipelineSpace::Global));
        assert!(c.l1_serves(PipelineSpace::Local));
    }

    #[test]
    fn gf100_unloaded_latencies_near_table1() {
        let c = GpuConfig::fermi_gf100();
        let l1 = c.unloaded_l1_hit().unwrap();
        let l2 = c.unloaded_l2_hit().unwrap();
        let dram = c.unloaded_dram();
        // Fermi column of Table I: 45 / 310 / 685.
        assert!((40..=50).contains(&l1), "L1 {l1}");
        assert!((300..=320).contains(&l2), "L2 {l2}");
        assert!((670..=700).contains(&dram), "DRAM {dram}");
    }

    #[test]
    fn l1_service_respects_absence() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1 = None;
        assert!(!c.l1_serves(PipelineSpace::Global));
        assert!(!c.l1_serves(PipelineSpace::Local));
        assert_eq!(c.unloaded_l1_hit(), None);
    }

    #[test]
    fn address_map_matches_partitions() {
        let c = GpuConfig::fermi_gf100();
        assert_eq!(c.address_map().partitions(), c.num_partitions);
    }

    #[test]
    fn sanitizer_is_on_by_default() {
        assert!(GpuConfig::fermi_gf100().sanitize);
    }

    #[test]
    fn tracing_is_off_by_default() {
        assert!(!GpuConfig::fermi_gf100().trace.enabled);
    }

    #[test]
    #[should_panic(expected = "trace sample interval")]
    fn zero_sample_interval_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.trace.sample_interval = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "ROP queue capacity")]
    fn zero_rop_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.rop_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "DRAM controller queue")]
    fn zero_dram_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.dram.queue_capacity = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "LSU queue")]
    fn undersized_lsu_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.lsu_queue = c.warp_size as usize; // one short of a worst-case warp
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 miss queue")]
    fn zero_l1_miss_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1.as_mut().unwrap().miss_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L2 input queue")]
    fn zero_l2_input_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l2.as_mut().unwrap().input_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 MSHR merge depth")]
    fn zero_l1_merge_depth_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1.as_mut().unwrap().mshr.max_merged = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 hit latency")]
    fn l1_slower_than_l2_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1.as_mut().unwrap().hit_latency = c.l2.as_ref().unwrap().hit_latency;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_size_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.line_size = 96;
        c.assert_valid();
    }

    #[test]
    fn missing_cache_levels_skip_their_checks() {
        // A Tesla-style config (no caches) must not trip the L1/L2 checks.
        let mut c = GpuConfig::fermi_gf100();
        c.l1 = None;
        c.l2 = None;
        c.assert_valid();
    }
}
