//! GPU configuration: every latency, queue depth and structural parameter of
//! the modeled machine.
//!
//! A [`GpuConfig`] fully describes one simulated GPU. The per-generation
//! presets that reproduce the paper's Table I live in `latency-core`
//! (`ArchPreset`); this module only defines the knobs and a neutral
//! Fermi-GF100-like default, mirroring how GPGPU-Sim separates the simulator
//! from its config files.

use gpu_icnt::IcntConfig;
use gpu_mem::{CacheConfig, DramConfig, DramSched, DramTiming, MshrConfig, Replacement};
use gpu_trace::TraceConfig;

/// Warp scheduling policy of an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Loose round-robin: rotate priority one slot past the last issuer.
    Lrr,
    /// Greedy-then-oldest: keep issuing the same warp until it stalls, then
    /// fall back to the oldest ready warp.
    Gto,
}

/// L1 data-cache configuration, including which memory spaces it serves —
/// the per-generation policy at the heart of the paper's §II discussion
/// (Fermi: global+local; Kepler: local only; Maxwell: removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Tag-array geometry.
    pub cache: CacheConfig,
    /// MSHR table.
    pub mshr: MshrConfig,
    /// Hit latency: probe-to-data, in cycles.
    pub hit_latency: u64,
    /// Miss-queue capacity between the L1 and the interconnect injection
    /// port (the paper's `L1toICNT` queue).
    pub miss_queue: usize,
    /// Does the L1 cache global-space accesses?
    pub serve_global: bool,
    /// Does the L1 cache local-space accesses?
    pub serve_local: bool,
}

/// How the L2 handles global stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write-through, no-allocate, write-evict: every store goes to DRAM
    /// (the workspace default, and the policy the Table-I calibration
    /// assumes).
    WriteThrough,
    /// Write-back with write-allocate (no fetch-on-write): stores complete
    /// at the L2 and dirty victims are written back on eviction — closer to
    /// real Fermi's L2 and available as an ablation (experiment E8).
    WriteBack,
}

/// L2 slice configuration (one slice per memory partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Tag-array geometry (per slice).
    pub cache: CacheConfig,
    /// MSHR table (per slice).
    pub mshr: MshrConfig,
    /// Hit latency: probe-to-data, in cycles.
    pub hit_latency: u64,
    /// Input queue between the ROP pipeline and the L2 access stage.
    pub input_queue: usize,
    /// Store handling policy.
    pub write_policy: WritePolicy,
}

/// Complete description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable name ("GF100-like", …) used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp (≤ 32).
    pub warp_size: u32,
    /// Warp slots per SM.
    pub max_warps_per_sm: usize,
    /// Maximum concurrent CTAs per SM.
    pub max_ctas_per_sm: usize,
    /// Instructions issued per SM per cycle (distinct warps).
    pub issue_width: usize,
    /// Warp scheduler policy.
    pub scheduler: SchedPolicy,
    /// Integer-ALU result latency.
    pub alu_latency: u64,
    /// FP32 result latency.
    pub fp_latency: u64,
    /// SFU (div/transcendental) result latency.
    pub sfu_latency: u64,
    /// Shared-memory access latency.
    pub shared_latency: u64,
    /// Fixed in-SM front-end time for a memory access: decode, address
    /// generation, coalescing, up to the L1 tag probe (the head of the
    /// paper's "SM Base" component).
    pub sm_base_latency: u64,
    /// Capacity of the in-SM memory front-end pipeline (coalesced
    /// transactions in flight before the L1).
    pub lsu_queue: usize,
    /// Cache-line / memory-transaction size in bytes.
    pub line_size: u64,
    /// L1 data cache, if the architecture has one.
    pub l1: Option<L1Config>,
    /// Interconnect (applied to both request and reply networks).
    pub icnt: IcntConfig,
    /// Fixed raster-operations pipeline latency in front of the L2.
    pub rop_latency: u64,
    /// ROP pipeline slot capacity.
    pub rop_queue: usize,
    /// L2 cache, if the architecture has one.
    pub l2: Option<L2Config>,
    /// DRAM channel config (per partition).
    pub dram: DramConfig,
    /// Number of memory partitions.
    pub num_partitions: usize,
    /// Partition interleave chunk in bytes.
    pub partition_chunk: u64,
    /// DRAM banks per partition.
    pub dram_banks: usize,
    /// DRAM row size in bytes.
    pub dram_row_bytes: u64,
    /// Response-side writeback latency at the SM (reply ejection to register
    /// writeback; tail of the paper's "Fetch2SM" component).
    pub fill_latency: u64,
    /// Run the cycle-level invariant sanitizer (see [`crate::Sanitizer`]):
    /// request conservation, MSHR leak detection, queue-capacity audits and
    /// per-request timeline checks. On by default; debug builds (including
    /// `cargo test`) panic at the end of a run with violations.
    pub sanitize: bool,
    /// Event tracing and counter sampling (see `gpu-trace`). Disabled by
    /// default; a disabled tracer records nothing and leaves simulated
    /// timing bit-identical.
    pub trace: TraceConfig,
}

impl GpuConfig {
    /// A neutral GF100 (Fermi)-like configuration: 15 SMs, 48 warps/SM,
    /// 16 KB L1 (global+local), 6 partitions with 128 KB L2 slices, FR-FCFS
    /// GDDR5 timing. Latencies are calibrated so the unloaded global-memory
    /// pipeline matches the paper's Fermi column of Table I
    /// (L1 ≈ 45, L2 ≈ 310, DRAM ≈ 685 cycles).
    pub fn fermi_gf100() -> Self {
        GpuConfig {
            name: "GF100-like (Fermi)".to_string(),
            num_sms: 15,
            warp_size: 32,
            max_warps_per_sm: 48,
            max_ctas_per_sm: 8,
            issue_width: 2,
            scheduler: SchedPolicy::Lrr,
            alu_latency: 18,
            fp_latency: 18,
            sfu_latency: 40,
            shared_latency: 30,
            sm_base_latency: 28,
            lsu_queue: 34,
            line_size: 128,
            l1: Some(L1Config {
                cache: CacheConfig {
                    sets: 32,
                    ways: 4,
                    line_size: 128,
                    replacement: Replacement::Lru,
                },
                mshr: MshrConfig {
                    entries: 32,
                    max_merged: 8,
                },
                hit_latency: 17,
                miss_queue: 8,
                serve_global: true,
                serve_local: true,
            }),
            icnt: IcntConfig {
                latency: 48,
                output_queue: 8,
                inject_per_src: 1,
                eject_per_dst: 1,
            },
            rop_latency: 60,
            rop_queue: 16,
            l2: Some(L2Config {
                cache: CacheConfig {
                    sets: 128,
                    ways: 8,
                    line_size: 128,
                    replacement: Replacement::Lru,
                },
                mshr: MshrConfig {
                    entries: 32,
                    max_merged: 8,
                },
                hit_latency: 115,
                input_queue: 8,
                write_policy: WritePolicy::WriteThrough,
            }),
            dram: DramConfig {
                timing: DramTiming {
                    t_rcd: 80,
                    t_rp: 80,
                    t_cl: 321,
                    burst: 8,
                },
                queue_capacity: 128,
                sched: DramSched::FrFcfs,
            },
            num_partitions: 6,
            partition_chunk: 256,
            dram_banks: 16,
            dram_row_bytes: 2048,
            fill_latency: 10,
            sanitize: true,
            trace: TraceConfig::default(),
        }
    }

    /// Returns `true` if the L1 serves accesses of the given pipeline space.
    pub fn l1_serves(&self, space: gpu_mem::PipelineSpace) -> bool {
        match &self.l1 {
            None => false,
            Some(l1) => match space {
                gpu_mem::PipelineSpace::Global => l1.serve_global,
                gpu_mem::PipelineSpace::Local => l1.serve_local,
            },
        }
    }

    /// Analytic unloaded (zero-contention) latency of an L1 hit: front-end
    /// plus tag/data access. The hit path writes back directly (it does not
    /// traverse the response fill stage), so this matches the measured
    /// dependent-load round trip exactly.
    pub fn unloaded_l1_hit(&self) -> Option<u64> {
        let l1 = self.l1.as_ref()?;
        Some(self.sm_base_latency + l1.hit_latency)
    }

    /// Analytic unloaded latency of an L2 hit through the whole pipeline.
    /// Miss detection at the L1 is a same-cycle tag probe, so the L1 hit
    /// latency does not appear; the `+1` is the L2 input-queue hop.
    pub fn unloaded_l2_hit(&self) -> Option<u64> {
        let l2 = self.l2.as_ref()?;
        Some(
            self.sm_base_latency
                + 2 * self.icnt.latency
                + self.rop_latency
                + l2.hit_latency
                + self.fill_latency
                + 1,
        )
    }

    /// Analytic unloaded latency of a steady-state DRAM access through the
    /// whole pipeline. A pointer-chase ring revisits each bank with a new
    /// row, so steady state is the row-*conflict* path; the `+2` covers the
    /// L2 input-queue and DRAM controller-queue hops.
    pub fn unloaded_dram(&self) -> u64 {
        self.sm_base_latency
            + 2 * self.icnt.latency
            + self.rop_latency
            + self.dram.timing.row_conflict()
            + self.dram.timing.burst
            + self.fill_latency
            + 2
    }

    /// Builds the address map implied by this config.
    pub fn address_map(&self) -> gpu_mem::AddressMap {
        gpu_mem::AddressMap::new(
            self.num_partitions,
            self.partition_chunk,
            self.dram_banks,
            self.dram_row_bytes,
        )
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if structurally inconsistent: zero SMs/partitions, warp size
    /// outside 1..=32, mismatched or non-power-of-two line sizes, any
    /// zero-capacity queue (a pipeline stage that can never hold a request
    /// deadlocks the machine), empty MSHR tables, or an L1 that is slower
    /// than the L2 behind it.
    pub fn assert_valid(&self) {
        assert!(self.num_sms > 0, "need at least one SM");
        assert!(self.num_partitions > 0, "need at least one partition");
        assert!(
            (1..=32).contains(&self.warp_size),
            "warp size must be 1..=32"
        );
        assert!(self.issue_width > 0, "issue width must be positive");
        assert!(self.max_warps_per_sm > 0);
        assert!(self.max_ctas_per_sm > 0, "need at least one CTA slot");
        assert!(
            self.line_size > 0 && self.line_size.is_power_of_two(),
            "line size must be a nonzero power of two"
        );
        // The coalescer emits up to warp_size + 1 transactions per access
        // and the issue stage requires that much free space, so a smaller
        // front-end pipe could never issue a memory instruction.
        assert!(
            self.lsu_queue > self.warp_size as usize,
            "LSU queue must hold a worst-case warp's transactions \
             (> warp_size)"
        );
        assert!(self.rop_queue > 0, "ROP queue capacity must be positive");
        assert!(
            self.icnt.output_queue > 0,
            "interconnect output queue capacity must be positive"
        );
        assert!(
            self.dram.queue_capacity > 0,
            "DRAM controller queue capacity must be positive"
        );
        if let Some(l1) = &self.l1 {
            assert_eq!(l1.cache.line_size, self.line_size, "L1 line size mismatch");
            assert!(l1.miss_queue > 0, "L1 miss queue capacity must be positive");
            assert!(l1.mshr.entries > 0, "L1 MSHR table needs entries");
            assert!(
                l1.mshr.max_merged > 0,
                "L1 MSHR merge depth must be positive"
            );
        }
        if let Some(l2) = &self.l2 {
            assert_eq!(l2.cache.line_size, self.line_size, "L2 line size mismatch");
            assert!(
                l2.input_queue > 0,
                "L2 input queue capacity must be positive"
            );
            assert!(l2.mshr.entries > 0, "L2 MSHR table needs entries");
            assert!(
                l2.mshr.max_merged > 0,
                "L2 MSHR merge depth must be positive"
            );
        }
        if let (Some(l1), Some(l2)) = (&self.l1, &self.l2) {
            assert!(
                l1.hit_latency < l2.hit_latency,
                "L1 hit latency ({}) must be below L2 hit latency ({})",
                l1.hit_latency,
                l2.hit_latency
            );
        }
        assert!(
            self.trace.sample_interval > 0,
            "trace sample interval must be positive"
        );
    }
}

// `GpuConfig` is shared by reference across the `latency-core` worker pool
// (each experiment point clones it into its own `Gpu`), so it must stay
// `Clone + Send + Sync`; adding a non-thread-safe field breaks this build.
const _: () = {
    const fn pool_shareable<T: Clone + Send + Sync>() {}
    pool_shareable::<GpuConfig>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::PipelineSpace;

    #[test]
    fn gf100_is_valid() {
        let c = GpuConfig::fermi_gf100();
        c.assert_valid();
        assert!(c.l1_serves(PipelineSpace::Global));
        assert!(c.l1_serves(PipelineSpace::Local));
    }

    #[test]
    fn gf100_unloaded_latencies_near_table1() {
        let c = GpuConfig::fermi_gf100();
        let l1 = c.unloaded_l1_hit().unwrap();
        let l2 = c.unloaded_l2_hit().unwrap();
        let dram = c.unloaded_dram();
        // Fermi column of Table I: 45 / 310 / 685.
        assert!((40..=50).contains(&l1), "L1 {l1}");
        assert!((300..=320).contains(&l2), "L2 {l2}");
        assert!((670..=700).contains(&dram), "DRAM {dram}");
    }

    #[test]
    fn l1_service_respects_absence() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1 = None;
        assert!(!c.l1_serves(PipelineSpace::Global));
        assert!(!c.l1_serves(PipelineSpace::Local));
        assert_eq!(c.unloaded_l1_hit(), None);
    }

    #[test]
    fn address_map_matches_partitions() {
        let c = GpuConfig::fermi_gf100();
        assert_eq!(c.address_map().partitions(), c.num_partitions);
    }

    #[test]
    fn sanitizer_is_on_by_default() {
        assert!(GpuConfig::fermi_gf100().sanitize);
    }

    #[test]
    fn tracing_is_off_by_default() {
        assert!(!GpuConfig::fermi_gf100().trace.enabled);
    }

    #[test]
    #[should_panic(expected = "trace sample interval")]
    fn zero_sample_interval_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.trace.sample_interval = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "ROP queue capacity")]
    fn zero_rop_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.rop_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "DRAM controller queue")]
    fn zero_dram_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.dram.queue_capacity = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "LSU queue")]
    fn undersized_lsu_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.lsu_queue = c.warp_size as usize; // one short of a worst-case warp
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 miss queue")]
    fn zero_l1_miss_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1.as_mut().unwrap().miss_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L2 input queue")]
    fn zero_l2_input_queue_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l2.as_mut().unwrap().input_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 MSHR merge depth")]
    fn zero_l1_merge_depth_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1.as_mut().unwrap().mshr.max_merged = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 hit latency")]
    fn l1_slower_than_l2_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.l1.as_mut().unwrap().hit_latency = c.l2.as_ref().unwrap().hit_latency;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_size_is_rejected() {
        let mut c = GpuConfig::fermi_gf100();
        c.line_size = 96;
        c.assert_valid();
    }

    #[test]
    fn missing_cache_levels_skip_their_checks() {
        // A Tesla-style config (no caches) must not trip the L1/L2 checks.
        let mut c = GpuConfig::fermi_gf100();
        c.l1 = None;
        c.l2 = None;
        c.assert_valid();
    }
}
