//! Simulation statistics and the latency trace types consumed by the
//! dynamic-latency analysis in `latency-core`.

use gpu_isa::Pc;
use gpu_mem::{PipelineSpace, Timeline};
use gpu_snapshot::{Decoder, Encoder, SnapshotError};
use gpu_trace::{MetricsReport, StallBreakdown, StallReason};
use gpu_types::{Cycle, SmId};

/// A completed, traced memory request (one line fetch), with its full stamp
/// timeline — the unit of the paper's Figure 1 breakdown.
#[derive(Debug, Clone)]
pub struct CompletedRequest {
    /// Stamps collected over the request's lifetime.
    pub timeline: Timeline,
    /// Global or local space.
    pub space: PipelineSpace,
    /// Issuing SM.
    pub sm: SmId,
}

impl CompletedRequest {
    /// Serializes this record.
    pub fn encode_state(&self, e: &mut Encoder) {
        self.timeline.encode_state(e);
        e.u8(match self.space {
            PipelineSpace::Global => 0,
            PipelineSpace::Local => 1,
        });
        e.u32(self.sm.get());
    }

    /// Decodes a record written by [`CompletedRequest::encode_state`].
    ///
    /// # Errors
    ///
    /// Rejects unknown space tags and propagates decoder errors.
    pub fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        let timeline = Timeline::decode(d)?;
        let space = match d.u8()? {
            0 => PipelineSpace::Global,
            1 => PipelineSpace::Local,
            _ => return Err(SnapshotError::InvalidValue("unknown pipeline-space tag")),
        };
        let sm = SmId::new(d.u32()?);
        Ok(CompletedRequest {
            timeline,
            space,
            sm,
        })
    }
}

/// A completed warp-level load instruction — the unit of the paper's
/// Figure 2 exposed/hidden analysis.
#[derive(Debug, Clone, Copy)]
pub struct LoadInstrRecord {
    /// Issuing SM.
    pub sm: SmId,
    /// Program counter of the load instruction in its kernel, tying the
    /// dynamic record back to the static analyzer's per-PC predictions.
    pub pc: Pc,
    /// Cycle the load issued.
    pub issue: Cycle,
    /// Cycle its last line returned and the destination was released.
    pub complete: Cycle,
    /// Cycles during the load's lifetime in which its SM issued no
    /// instruction at all (exposed latency).
    pub exposed: u64,
    /// Number of line transactions the access coalesced into.
    pub lines: u32,
    /// The SM's stall cycles during this load's lifetime, attributed to
    /// named reasons — the explainable refinement of `exposed`.
    pub stall_reasons: StallBreakdown,
}

impl LoadInstrRecord {
    /// Total latency in cycles.
    pub fn total(&self) -> u64 {
        self.complete.since(self.issue)
    }

    /// Hidden cycles (total − exposed).
    pub fn hidden(&self) -> u64 {
        self.total().saturating_sub(self.exposed)
    }

    /// Exposed fraction, clamped to `[0, 1]` (zero for zero-latency
    /// records). The raw counter can nominally exceed the lifetime only
    /// through an attribution bug; a debug assertion guards the record
    /// site, and the clamp keeps release-build analysis sane regardless.
    pub fn exposed_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.exposed as f64 / t as f64).clamp(0.0, 1.0)
        }
    }

    /// Serializes this record.
    pub fn encode_state(&self, e: &mut Encoder) {
        e.u32(self.sm.get());
        e.usize(self.pc);
        e.u64(self.issue.get());
        e.u64(self.complete.get());
        e.u64(self.exposed);
        e.u32(self.lines);
        encode_breakdown(e, &self.stall_reasons);
    }

    /// Decodes a record written by [`LoadInstrRecord::encode_state`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors.
    pub fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        Ok(LoadInstrRecord {
            sm: SmId::new(d.u32()?),
            pc: d.usize()?,
            issue: Cycle::new(d.u64()?),
            complete: Cycle::new(d.u64()?),
            exposed: d.u64()?,
            lines: d.u32()?,
            stall_reasons: decode_breakdown(d)?,
        })
    }
}

/// Serializes a stall breakdown as its per-reason counters in
/// [`StallReason::ALL`] order.
pub(crate) fn encode_breakdown(e: &mut Encoder, b: &StallBreakdown) {
    for v in b.to_array() {
        e.u64(v);
    }
}

/// Decodes a stall breakdown written by [`encode_breakdown`].
pub(crate) fn decode_breakdown(d: &mut Decoder) -> Result<StallBreakdown, SnapshotError> {
    let mut counts = [0u64; StallReason::COUNT];
    for c in &mut counts {
        *c = d.u64()?;
    }
    Ok(StallBreakdown::from_array(counts))
}

/// Collects latency traces during a run. Collection is off by default; the
/// latency lab enables it for instrumented runs.
#[derive(Debug, Default)]
pub struct TraceSink {
    /// Whether traces are recorded.
    pub enabled: bool,
    /// Completed line fetches (Figure 1 input).
    pub requests: Vec<CompletedRequest>,
    /// Completed load instructions (Figure 2 input).
    pub loads: Vec<LoadInstrRecord>,
}

impl TraceSink {
    /// Records a completed request if collection is enabled.
    pub fn record_request(&mut self, req: CompletedRequest) {
        if self.enabled {
            self.requests.push(req);
        }
    }

    /// Records a completed load instruction if collection is enabled.
    pub fn record_load(&mut self, load: LoadInstrRecord) {
        if self.enabled {
            self.loads.push(load);
        }
    }

    /// Serializes the enable flag and every collected record.
    pub fn encode_state(&self, e: &mut Encoder) {
        e.bool(self.enabled);
        e.usize(self.requests.len());
        for r in &self.requests {
            r.encode_state(e);
        }
        e.usize(self.loads.len());
        for l in &self.loads {
            l.encode_state(e);
        }
    }

    /// Overwrites this sink with a decoded checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates decoder errors.
    pub fn restore_state(&mut self, d: &mut Decoder) -> Result<(), SnapshotError> {
        self.enabled = d.bool()?;
        self.requests.clear();
        for _ in 0..d.usize()? {
            self.requests.push(CompletedRequest::decode(d)?);
        }
        self.loads.clear();
        for _ in 0..d.usize()? {
            self.loads.push(LoadInstrRecord::decode(d)?);
        }
        Ok(())
    }
}

/// Per-SM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Warp instructions issued.
    pub instructions: u64,
    /// Cycles in which the SM issued at least one instruction.
    pub active_cycles: u64,
    /// Cycles with live warps in which the SM issued nothing (the cumulative
    /// stall counter used for exposure attribution).
    pub stall_cycles: u64,
    /// `stall_cycles` split by dominant reason (scoreboard, MSHR-full,
    /// icnt-backpressure, barrier, other). Its total always equals
    /// `stall_cycles`.
    pub stalls: StallBreakdown,
    /// Warp-level global/local load instructions issued.
    pub global_loads: u64,
    /// Warp-level global/local store instructions issued.
    pub global_stores: u64,
    /// Line transactions generated.
    pub transactions: u64,
    /// CTAs retired on this SM.
    pub ctas_retired: u64,
}

impl SmStats {
    /// Serializes these statistics.
    pub fn encode_state(&self, e: &mut Encoder) {
        e.u64(self.instructions);
        e.u64(self.active_cycles);
        e.u64(self.stall_cycles);
        encode_breakdown(e, &self.stalls);
        e.u64(self.global_loads);
        e.u64(self.global_stores);
        e.u64(self.transactions);
        e.u64(self.ctas_retired);
    }

    /// Decodes statistics written by [`SmStats::encode_state`].
    ///
    /// # Errors
    ///
    /// Propagates decoder errors.
    pub fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        Ok(SmStats {
            instructions: d.u64()?,
            active_cycles: d.u64()?,
            stall_cycles: d.u64()?,
            stalls: decode_breakdown(d)?,
            global_loads: d.u64()?,
            global_stores: d.u64()?,
            transactions: d.u64()?,
            ctas_retired: d.u64()?,
        })
    }
}

/// Whole-GPU run summary returned by `Gpu::run`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total warp instructions issued across SMs.
    pub instructions: u64,
    /// Total L1 data-cache hits (all SMs).
    pub l1_hits: u64,
    /// Total L1 data-cache misses (all SMs).
    pub l1_misses: u64,
    /// Total L2 hits (all partitions).
    pub l2_hits: u64,
    /// Total L2 misses (all partitions).
    pub l2_misses: u64,
    /// DRAM requests serviced.
    pub dram_serviced: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// CTAs executed.
    pub ctas: u64,
    /// Invariant violations the sanitizer detected (zero when the sanitizer
    /// is disabled — see `GpuConfig::sanitize`).
    pub sanitizer_violations: u64,
    /// Stable hash of everything that determines this run's simulated
    /// timing: the timing-relevant configuration fields, the kernel program,
    /// the launch geometry and parameters, and the device-memory contents at
    /// launch. Chained across launches on the same GPU. Identical inputs
    /// produce identical hashes across processes and platforms, so this
    /// doubles as the content-addressed sweep-cache key. Excludes the
    /// config's display name and the trace/sanitize switches, which cannot
    /// change simulated timing.
    pub content_hash: u64,
    /// Observability metrics: counter summaries, stall attribution and host
    /// throughput. `metrics.host_nanos` is the summary's only
    /// non-deterministic field — normalise it before comparing summaries
    /// for run-identity.
    pub metrics: MetricsReport,
}

impl RunSummary {
    /// Instructions per cycle across the whole GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Simulated cycles per host second for this run.
    pub fn cycles_per_second(&self) -> f64 {
        self.metrics.cycles_per_second(self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(issue: u64, complete: u64, exposed: u64) -> LoadInstrRecord {
        LoadInstrRecord {
            sm: SmId::new(0),
            pc: 0,
            issue: Cycle::new(issue),
            complete: Cycle::new(complete),
            exposed,
            lines: 1,
            stall_reasons: StallBreakdown::default(),
        }
    }

    #[test]
    fn load_record_math() {
        let r = LoadInstrRecord {
            lines: 3,
            ..record(100, 500, 100)
        };
        assert_eq!(r.total(), 400);
        assert_eq!(r.hidden(), 300);
        assert!((r.exposed_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_latency_record_has_zero_fraction() {
        let r = record(5, 5, 0);
        assert_eq!(r.exposed_fraction(), 0.0);
    }

    #[test]
    fn exposed_fraction_clamps_to_unit_interval() {
        // A corrupted counter larger than the lifetime must not escape [0, 1].
        let r = record(0, 10, 25);
        assert_eq!(r.exposed_fraction(), 1.0);
        assert_eq!(r.hidden(), 0);
    }

    #[test]
    fn sink_respects_enable_flag() {
        let mut s = TraceSink::default();
        s.record_load(record(0, 1, 0));
        assert!(s.loads.is_empty());
        s.enabled = true;
        s.record_load(record(0, 1, 0));
        assert_eq!(s.loads.len(), 1);
    }

    #[test]
    fn ipc() {
        let s = RunSummary {
            cycles: 100,
            instructions: 250,
            ..RunSummary::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(RunSummary::default().ipc(), 0.0);
    }

    #[test]
    fn throughput_derives_from_metrics() {
        let s = RunSummary {
            cycles: 1_000,
            metrics: MetricsReport {
                host_nanos: 500_000_000,
                ..MetricsReport::default()
            },
            ..RunSummary::default()
        };
        assert!((s.cycles_per_second() - 2_000.0).abs() < 1e-9);
    }
}
