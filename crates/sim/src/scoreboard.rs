//! Per-warp register scoreboard.
//!
//! Tracks registers with in-flight writers so the issue stage can enforce
//! RAW/WAW hazards. Long-latency loads keep their destination registers
//! reserved until the last line of the coalesced access returns — which is
//! exactly the mechanism that *exposes* memory latency when no other warp
//! can issue (the paper's Figure 2).

use std::collections::HashSet;

use gpu_isa::{Instr, Reg};

/// A scoreboard over `slots` warp contexts.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    pending: Vec<HashSet<Reg>>,
}

impl Scoreboard {
    /// Creates a scoreboard for `slots` warp slots.
    pub fn new(slots: usize) -> Self {
        Scoreboard {
            pending: vec![HashSet::new(); slots],
        }
    }

    /// Marks `reg` of warp slot `warp` as having an in-flight writer.
    ///
    /// # Panics
    ///
    /// Panics if `warp` is out of range.
    pub fn reserve(&mut self, warp: usize, reg: Reg) {
        self.pending[warp].insert(reg);
    }

    /// Clears the in-flight writer of `reg` (writeback completed).
    pub fn release(&mut self, warp: usize, reg: Reg) {
        self.pending[warp].remove(&reg);
    }

    /// Returns `true` if `reg` has an in-flight writer.
    pub fn is_pending(&self, warp: usize, reg: Reg) -> bool {
        self.pending[warp].contains(&reg)
    }

    /// Returns `true` if `instr` has no RAW/WAW hazard on warp slot `warp`.
    pub fn can_issue(&self, warp: usize, instr: &Instr) -> bool {
        let p = &self.pending[warp];
        if p.is_empty() {
            return true;
        }
        if let Some(d) = instr.def_reg() {
            if p.contains(&d) {
                return false;
            }
        }
        instr.use_regs().iter().all(|r| !p.contains(r))
    }

    /// Number of registers with in-flight writers on `warp`.
    pub fn pending_count(&self, warp: usize) -> usize {
        self.pending[warp].len()
    }

    /// Forgets all reservations of a warp slot (slot being recycled).
    pub fn clear(&mut self, warp: usize) {
        self.pending[warp].clear();
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes every slot's reserved registers in ascending register
    /// order (the per-slot set is a hash set, so iteration order must be
    /// pinned for deterministic snapshots).
    pub fn encode_state(&self, e: &mut gpu_snapshot::Encoder) {
        e.usize(self.pending.len());
        for set in &self.pending {
            let mut regs: Vec<Reg> = set.iter().copied().collect();
            regs.sort_unstable();
            e.usize(regs.len());
            for r in regs {
                e.u32(u32::from(r));
            }
        }
    }

    /// Overwrites this scoreboard with a decoded checkpoint.
    ///
    /// # Errors
    ///
    /// Rejects slot-count mismatches and out-of-range register numbers, and
    /// propagates decoder errors.
    pub fn restore_state(
        &mut self,
        d: &mut gpu_snapshot::Decoder,
    ) -> Result<(), gpu_snapshot::SnapshotError> {
        use gpu_snapshot::SnapshotError::InvalidValue;
        if d.usize()? != self.pending.len() {
            return Err(InvalidValue("scoreboard slot count mismatch"));
        }
        for set in &mut self.pending {
            set.clear();
            for _ in 0..d.usize()? {
                let r = d.u32()?;
                let r = Reg::try_from(r).map_err(|_| InvalidValue("register number overflow"))?;
                set.insert(r);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{AluOp, Operand};

    fn add(dst: Reg, a: Reg, b: Reg) -> Instr {
        Instr::Alu {
            op: AluOp::Add,
            dst,
            a: Operand::Reg(a),
            b: Operand::Reg(b),
        }
    }

    #[test]
    fn raw_hazard_blocks() {
        let mut sb = Scoreboard::new(2);
        sb.reserve(0, 5);
        assert!(!sb.can_issue(0, &add(7, 5, 6)), "reads pending r5");
        assert!(sb.can_issue(0, &add(7, 6, 8)));
        assert!(sb.can_issue(1, &add(7, 5, 6)), "other warp unaffected");
    }

    #[test]
    fn waw_hazard_blocks() {
        let mut sb = Scoreboard::new(1);
        sb.reserve(0, 3);
        assert!(!sb.can_issue(0, &add(3, 1, 2)), "writes pending r3");
        sb.release(0, 3);
        assert!(sb.can_issue(0, &add(3, 1, 2)));
    }

    #[test]
    fn clear_releases_everything() {
        let mut sb = Scoreboard::new(1);
        sb.reserve(0, 1);
        sb.reserve(0, 2);
        assert_eq!(sb.pending_count(0), 2);
        sb.clear(0);
        assert_eq!(sb.pending_count(0), 0);
        assert!(!sb.is_pending(0, 1));
    }

    #[test]
    fn no_hazard_on_immediates() {
        let sb = Scoreboard::new(1);
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: 0,
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        };
        assert!(sb.can_issue(0, &i));
    }
}
