//! Cycle-level invariant sanitizer.
//!
//! When [`crate::GpuConfig::sanitize`] is set, the simulator audits its own
//! bookkeeping while it runs: request conservation (every request created is
//! either retired or findable in exactly one pipeline structure), MSHR
//! occupancy and end-of-run leaks, queue-capacity violations, per-request
//! timeline monotonicity, and — the invariant the paper's Figure 1 depends
//! on — that each retired request's per-stage components sum exactly to its
//! end-to-end lifetime.
//!
//! Violations accumulate into a [`Sanitizer`] report queryable from
//! [`crate::Gpu::sanitizer`] and counted in
//! [`crate::RunSummary::sanitizer_violations`]. Debug builds (which include
//! `cargo test`) additionally panic at the end of [`crate::Gpu::run`] so a
//! broken invariant fails loudly instead of skewing latency data.

use std::fmt;

use gpu_mem::{MemRequest, RequestId, Stamp};
use gpu_types::{Addr, Cycle};

/// Where in the machine a violation was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// An SM, by index.
    Sm(usize),
    /// A memory partition, by index.
    Partition(usize),
    /// The whole-GPU cycle loop.
    Gpu,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Sm(i) => write!(f, "sm{i}"),
            Site::Partition(i) => write!(f, "partition{i}"),
            Site::Gpu => f.write_str("gpu"),
        }
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The global outstanding-request counter disagrees with the number of
    /// requests actually present in the pipeline structures.
    Conservation {
        /// Cycle of the audit.
        cycle: Cycle,
        /// Requests the GPU believes are in flight.
        outstanding: u64,
        /// Requests actually found in SMs, partitions and networks.
        in_flight: u64,
    },
    /// An MSHR table still holds entries after the run drained.
    MshrLeak {
        /// Which MSHR table.
        site: Site,
        /// The leaked line addresses.
        lines: Vec<Addr>,
    },
    /// An MSHR merge list exceeds its configured `max_merged`.
    MshrOverMerge {
        /// Which MSHR table.
        site: Site,
        /// Longest merge list found.
        waiters: usize,
        /// Configured maximum.
        max_merged: usize,
    },
    /// An MSHR table holds more lines than its configured entry count.
    MshrOverCapacity {
        /// Which MSHR table.
        site: Site,
        /// Lines outstanding.
        len: usize,
        /// Configured entry count.
        entries: usize,
    },
    /// A bounded queue holds more items than its capacity.
    QueueOverflow {
        /// Which component owns the queue.
        site: Site,
        /// Queue name ("rop", "miss", …).
        queue: &'static str,
        /// Occupancy found.
        len: usize,
        /// Configured capacity.
        capacity: usize,
    },
    /// A retired request's stamps are not non-decreasing in pipeline order.
    NonMonotonicTimeline {
        /// The offending request.
        id: RequestId,
        /// The later pipeline stage that carries the earlier time.
        stamp: Stamp,
        /// Time at the preceding stamped stage.
        earlier: Cycle,
        /// Time at `stamp`.
        later: Cycle,
    },
    /// A retired request's per-stage components do not sum to its lifetime —
    /// the invariant behind the paper's Figure 1 stacked bars.
    StageSumMismatch {
        /// The offending request.
        id: RequestId,
        /// Sum of the per-stage components.
        sum: u64,
        /// Issue-to-return lifetime.
        total: u64,
    },
    /// Pending-load bookkeeping survived the drain (a load retired its last
    /// line without releasing its scoreboard entry, or never will).
    PendingLoadLeak {
        /// The SM holding the entries.
        site: Site,
        /// Number of leaked pending-load entries.
        entries: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Conservation {
                cycle,
                outstanding,
                in_flight,
            } => write!(
                f,
                "conservation broken at cycle {cycle}: outstanding counter says \
                 {outstanding} but {in_flight} request(s) are in the pipeline"
            ),
            Violation::MshrLeak { site, lines } => {
                write!(
                    f,
                    "{site}: MSHR leak, {} line(s) never filled:",
                    lines.len()
                )?;
                for l in lines {
                    write!(f, " {l}")?;
                }
                Ok(())
            }
            Violation::MshrOverMerge {
                site,
                waiters,
                max_merged,
            } => write!(
                f,
                "{site}: MSHR merge list holds {waiters} waiter(s), max_merged is {max_merged}"
            ),
            Violation::MshrOverCapacity { site, len, entries } => write!(
                f,
                "{site}: MSHR table holds {len} line(s), configured for {entries}"
            ),
            Violation::QueueOverflow {
                site,
                queue,
                len,
                capacity,
            } => write!(
                f,
                "{site}: {queue} queue holds {len} item(s), capacity is {capacity}"
            ),
            Violation::NonMonotonicTimeline {
                id,
                stamp,
                earlier,
                later,
            } => write!(
                f,
                "{id}: timeline goes backwards at {stamp:?} ({later} < preceding {earlier})"
            ),
            Violation::StageSumMismatch { id, sum, total } => write!(
                f,
                "{id}: stage components sum to {sum} but issue-to-return lifetime is {total}"
            ),
            Violation::PendingLoadLeak { site, entries } => write!(
                f,
                "{site}: {entries} pending-load entr(ies) survived the drain"
            ),
        }
    }
}

impl Site {
    /// Serializes this site. Tag values are part of the checkpoint format
    /// and must never be reordered; new variants append new tags.
    pub fn encode_state(&self, e: &mut gpu_snapshot::Encoder) {
        match self {
            Site::Sm(i) => {
                e.u8(0);
                e.usize(*i);
            }
            Site::Partition(i) => {
                e.u8(1);
                e.usize(*i);
            }
            Site::Gpu => e.u8(2),
        }
    }

    /// Decodes a site written by [`Site::encode_state`].
    ///
    /// # Errors
    ///
    /// Rejects unknown tags and propagates decoder errors.
    pub fn decode(d: &mut gpu_snapshot::Decoder) -> Result<Self, gpu_snapshot::SnapshotError> {
        match d.u8()? {
            0 => Ok(Site::Sm(d.usize()?)),
            1 => Ok(Site::Partition(d.usize()?)),
            2 => Ok(Site::Gpu),
            _ => Err(gpu_snapshot::SnapshotError::InvalidValue(
                "unknown sanitizer-site tag",
            )),
        }
    }
}

/// The queue names the audits use, in checkpoint-tag order. Violations
/// carry `&'static str` queue names; the codec maps them through this table
/// so a decoded violation points back at the same static string.
const QUEUE_NAMES: [&str; 23] = [
    "front",
    "l1-hit",
    "miss",
    "fill",
    "rop",
    "l2-input",
    "l2-hit",
    "l2-input.0",
    "l2-input.1",
    "l2-input.2",
    "l2-input.3",
    "l2-input.4",
    "l2-input.5",
    "l2-input.6",
    "l2-input.7",
    "l2-hit.0",
    "l2-hit.1",
    "l2-hit.2",
    "l2-hit.3",
    "l2-hit.4",
    "l2-hit.5",
    "l2-hit.6",
    "l2-hit.7",
];

impl Violation {
    /// Serializes this violation. Tag values are part of the checkpoint
    /// format and must never be reordered; new variants append new tags.
    pub fn encode_state(&self, e: &mut gpu_snapshot::Encoder) {
        match self {
            Violation::Conservation {
                cycle,
                outstanding,
                in_flight,
            } => {
                e.u8(0);
                e.u64(cycle.get());
                e.u64(*outstanding);
                e.u64(*in_flight);
            }
            Violation::MshrLeak { site, lines } => {
                e.u8(1);
                site.encode_state(e);
                e.usize(lines.len());
                for l in lines {
                    e.u64(l.get());
                }
            }
            Violation::MshrOverMerge {
                site,
                waiters,
                max_merged,
            } => {
                e.u8(2);
                site.encode_state(e);
                e.usize(*waiters);
                e.usize(*max_merged);
            }
            Violation::MshrOverCapacity { site, len, entries } => {
                e.u8(3);
                site.encode_state(e);
                e.usize(*len);
                e.usize(*entries);
            }
            Violation::QueueOverflow {
                site,
                queue,
                len,
                capacity,
            } => {
                e.u8(4);
                site.encode_state(e);
                // Index into QUEUE_NAMES; u8::MAX marks a name added without
                // a table entry (decodes as "unknown", never fails encode).
                let idx = QUEUE_NAMES.iter().position(|n| n == queue);
                e.u8(idx.map_or(u8::MAX, |i| i as u8));
                e.usize(*len);
                e.usize(*capacity);
            }
            Violation::NonMonotonicTimeline {
                id,
                stamp,
                earlier,
                later,
            } => {
                e.u8(5);
                e.u64(id.get());
                let idx = Stamp::ALL
                    .iter()
                    .position(|s| s == stamp)
                    .expect("every stamp is in Stamp::ALL");
                e.u8(idx as u8);
                e.u64(earlier.get());
                e.u64(later.get());
            }
            Violation::StageSumMismatch { id, sum, total } => {
                e.u8(6);
                e.u64(id.get());
                e.u64(*sum);
                e.u64(*total);
            }
            Violation::PendingLoadLeak { site, entries } => {
                e.u8(7);
                site.encode_state(e);
                e.usize(*entries);
            }
        }
    }

    /// Decodes a violation written by [`Violation::encode_state`].
    ///
    /// # Errors
    ///
    /// Rejects unknown variant, queue-name and stamp tags, and propagates
    /// decoder errors.
    pub fn decode(d: &mut gpu_snapshot::Decoder) -> Result<Self, gpu_snapshot::SnapshotError> {
        use gpu_snapshot::SnapshotError::InvalidValue;
        match d.u8()? {
            0 => Ok(Violation::Conservation {
                cycle: Cycle::new(d.u64()?),
                outstanding: d.u64()?,
                in_flight: d.u64()?,
            }),
            1 => {
                let site = Site::decode(d)?;
                let mut lines = Vec::new();
                for _ in 0..d.usize()? {
                    lines.push(Addr::new(d.u64()?));
                }
                Ok(Violation::MshrLeak { site, lines })
            }
            2 => Ok(Violation::MshrOverMerge {
                site: Site::decode(d)?,
                waiters: d.usize()?,
                max_merged: d.usize()?,
            }),
            3 => Ok(Violation::MshrOverCapacity {
                site: Site::decode(d)?,
                len: d.usize()?,
                entries: d.usize()?,
            }),
            4 => {
                let site = Site::decode(d)?;
                let queue = match d.u8()? {
                    u8::MAX => "unknown",
                    i => *QUEUE_NAMES
                        .get(i as usize)
                        .ok_or(InvalidValue("unknown queue-name tag"))?,
                };
                Ok(Violation::QueueOverflow {
                    site,
                    queue,
                    len: d.usize()?,
                    capacity: d.usize()?,
                })
            }
            5 => {
                let id = RequestId::new(d.u64()?);
                let stamp = *Stamp::ALL
                    .get(d.u8()? as usize)
                    .ok_or(InvalidValue("unknown stamp tag"))?;
                Ok(Violation::NonMonotonicTimeline {
                    id,
                    stamp,
                    earlier: Cycle::new(d.u64()?),
                    later: Cycle::new(d.u64()?),
                })
            }
            6 => Ok(Violation::StageSumMismatch {
                id: RequestId::new(d.u64()?),
                sum: d.u64()?,
                total: d.u64()?,
            }),
            7 => Ok(Violation::PendingLoadLeak {
                site: Site::decode(d)?,
                entries: d.usize()?,
            }),
            _ => Err(InvalidValue("unknown violation tag")),
        }
    }
}

/// Cap on stored violations: a per-tick invariant breaking once tends to
/// break every subsequent tick, and storing millions of identical records
/// helps nobody. The total count keeps counting past the cap.
const MAX_STORED: usize = 64;

/// Accumulates invariant violations over a run.
#[derive(Debug, Default)]
pub struct Sanitizer {
    violations: Vec<Violation>,
    total: u64,
}

impl Sanitizer {
    /// Creates an empty sanitizer.
    pub fn new() -> Self {
        Sanitizer::default()
    }

    /// Records a violation (stores the first [`MAX_STORED`], counts all).
    pub fn record(&mut self, v: Violation) {
        self.total += 1;
        if self.violations.len() < MAX_STORED {
            self.violations.push(v);
        }
    }

    /// The stored violations (first [`MAX_STORED`] detected).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations detected, including any past the storage cap.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns `true` if no violation was detected.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Drains `other` into this sanitizer: the total keeps counting, and
    /// stored violations transfer while this sanitizer's storage cap allows.
    ///
    /// This is the merge half of the parallel tick executor: each component
    /// detects into a private scratch sanitizer during a concurrent stage,
    /// and the scratch reports are absorbed here in fixed component-index
    /// order. Each scratch's stored list is a prefix of that component's
    /// detection sequence, so appending prefixes in index order under the
    /// global cap reproduces the serial recorder exactly.
    pub fn absorb(&mut self, other: &mut Sanitizer) {
        self.total += std::mem::take(&mut other.total);
        for v in other.violations.drain(..) {
            if self.violations.len() < MAX_STORED {
                self.violations.push(v);
            }
        }
    }

    /// Audits one retired request: stamps must be non-decreasing in pipeline
    /// order, and the per-stage components (deltas between consecutive
    /// present stamps) must sum exactly to the issue-to-return lifetime.
    pub fn check_retired(&mut self, req: &MemRequest) {
        let t = &req.timeline;
        let (Some(issue), Some(ret)) = (t.get(Stamp::Issue), t.get(Stamp::Returned)) else {
            // A retired request missing either endpoint can never appear in
            // the Figure-1 breakdown; flag it as a zero-information timeline.
            self.record(Violation::StageSumMismatch {
                id: req.id,
                sum: 0,
                total: 0,
            });
            return;
        };
        let mut prev = issue;
        let mut sum = 0u64;
        for stamp in Stamp::ALL {
            let Some(at) = t.get(stamp) else { continue };
            if at < prev {
                self.record(Violation::NonMonotonicTimeline {
                    id: req.id,
                    stamp,
                    earlier: prev,
                    later: at,
                });
                return;
            }
            sum += at.since(prev);
            prev = at;
        }
        let total = ret.since(issue);
        if sum != total {
            self.record(Violation::StageSumMismatch {
                id: req.id,
                sum,
                total,
            });
        }
    }

    /// Audits an MSHR occupancy snapshot against its configuration.
    pub fn check_mshr_occupancy(
        &mut self,
        site: Site,
        len: usize,
        max_list: usize,
        config: &gpu_mem::MshrConfig,
    ) {
        if len > config.entries {
            self.record(Violation::MshrOverCapacity {
                site,
                len,
                entries: config.entries,
            });
        }
        if max_list > config.max_merged {
            self.record(Violation::MshrOverMerge {
                site,
                waiters: max_list,
                max_merged: config.max_merged,
            });
        }
    }

    /// Audits a queue occupancy snapshot.
    pub fn check_queue(&mut self, site: Site, queue: &'static str, len: usize, capacity: usize) {
        if len > capacity {
            self.record(Violation::QueueOverflow {
                site,
                queue,
                len,
                capacity,
            });
        }
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes the total count and the stored violations.
    pub fn encode_state(&self, e: &mut gpu_snapshot::Encoder) {
        e.u64(self.total);
        e.usize(self.violations.len());
        for v in &self.violations {
            v.encode_state(e);
        }
    }

    /// Overwrites this sanitizer with a decoded checkpoint.
    ///
    /// # Errors
    ///
    /// Rejects stored-violation counts past [`MAX_STORED`] or past the total
    /// (the recorder can never produce either), and propagates decoder
    /// errors.
    pub fn restore_state(
        &mut self,
        d: &mut gpu_snapshot::Decoder,
    ) -> Result<(), gpu_snapshot::SnapshotError> {
        use gpu_snapshot::SnapshotError::InvalidValue;
        self.total = d.u64()?;
        let n = d.usize()?;
        if n > MAX_STORED || n as u64 > self.total {
            return Err(InvalidValue("stored violations exceed their own cap"));
        }
        self.violations.clear();
        for _ in 0..n {
            self.violations.push(Violation::decode(d)?);
        }
        Ok(())
    }

    /// Renders the full report, one violation per line.
    pub fn report(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sanitizer: {} invariant violation(s) detected",
            self.total
        );
        for v in &self.violations {
            let _ = writeln!(out, "  {v}");
        }
        if self.total as usize > self.violations.len() {
            let _ = writeln!(
                out,
                "  … and {} more (storage capped at {MAX_STORED})",
                self.total as usize - self.violations.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::{AccessKind, MshrConfig, PipelineSpace};
    use gpu_types::SmId;

    fn request_with(stamps: &[(Stamp, u64)]) -> MemRequest {
        let mut req = MemRequest::new(
            RequestId::new(1),
            Addr::new(0x80),
            128,
            AccessKind::Load,
            PipelineSpace::Global,
            SmId::new(0),
            0,
            Cycle::new(stamps[0].1),
        );
        for &(s, at) in stamps {
            req.timeline.record(s, Cycle::new(at));
        }
        req
    }

    #[test]
    fn complete_monotonic_timeline_is_clean() {
        let mut san = Sanitizer::new();
        san.check_retired(&request_with(&[
            (Stamp::Issue, 10),
            (Stamp::L1Access, 38),
            (Stamp::IcntInject, 40),
            (Stamp::RopEnter, 88),
            (Stamp::Returned, 200),
        ]));
        assert!(san.is_clean(), "{}", san.report());
    }

    #[test]
    fn backwards_stamp_is_flagged() {
        let mut san = Sanitizer::new();
        san.check_retired(&request_with(&[
            (Stamp::Issue, 10),
            (Stamp::L1Access, 38),
            (Stamp::IcntInject, 20), // earlier than the L1 probe
            (Stamp::Returned, 200),
        ]));
        assert_eq!(san.total(), 1);
        assert!(matches!(
            san.violations()[0],
            Violation::NonMonotonicTimeline {
                stamp: Stamp::IcntInject,
                ..
            }
        ));
    }

    #[test]
    fn missing_return_stamp_is_flagged() {
        let mut san = Sanitizer::new();
        san.check_retired(&request_with(&[(Stamp::Issue, 10), (Stamp::L1Access, 38)]));
        assert_eq!(san.total(), 1);
    }

    #[test]
    fn stage_stamped_after_return_is_flagged() {
        // A stage stamped after the request already returned shows up as the
        // Returned stamp going backwards relative to pipeline order.
        let mut san = Sanitizer::new();
        san.check_retired(&request_with(&[
            (Stamp::Issue, 0),
            (Stamp::DramDone, 150), // stamped after the request returned
            (Stamp::Returned, 100),
        ]));
        assert_eq!(san.total(), 1);
        assert!(matches!(
            san.violations()[0],
            Violation::NonMonotonicTimeline {
                stamp: Stamp::Returned,
                ..
            }
        ));
    }

    #[test]
    fn mshr_occupancy_checks() {
        let cfg = MshrConfig {
            entries: 4,
            max_merged: 2,
        };
        let mut san = Sanitizer::new();
        san.check_mshr_occupancy(Site::Sm(0), 4, 2, &cfg);
        assert!(san.is_clean());
        san.check_mshr_occupancy(Site::Sm(0), 5, 3, &cfg);
        assert_eq!(san.total(), 2);
    }

    #[test]
    fn storage_caps_but_count_continues() {
        let mut san = Sanitizer::new();
        for i in 0..(MAX_STORED as u64 + 10) {
            san.record(Violation::Conservation {
                cycle: Cycle::new(i),
                outstanding: 1,
                in_flight: 0,
            });
        }
        assert_eq!(san.violations().len(), MAX_STORED);
        assert_eq!(san.total(), MAX_STORED as u64 + 10);
        assert!(san.report().contains("and 10 more"));
    }

    #[test]
    fn report_mentions_each_violation_kind() {
        let mut san = Sanitizer::new();
        san.record(Violation::MshrLeak {
            site: Site::Sm(3),
            lines: vec![Addr::new(0x1000)],
        });
        san.check_queue(Site::Partition(1), "rop", 17, 16);
        let r = san.report();
        assert!(r.contains("sm3: MSHR leak"));
        assert!(r.contains("partition1: rop queue holds 17"));
    }
}
