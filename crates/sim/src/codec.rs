//! Shared snapshot-codec helpers for the pipeline queues that both the SM
//! and the memory partition own.

use gpu_mem::MemRequest;
use gpu_snapshot::{Decoder, Encoder, SnapshotError};
use gpu_types::{BoundedQueue, Cycle, DelayQueue};

/// Serializes a delay queue of memory requests: occupancy, then each entry
/// with its absolute ready time (so a restored run replays the exact same
/// pop schedule).
pub(crate) fn encode_req_queue(e: &mut Encoder, q: &DelayQueue<MemRequest>) {
    e.usize(q.len());
    for (ready_at, req) in q.entries() {
        e.u64(ready_at.get());
        req.encode_state(e);
    }
}

/// Rebuilds `q` (keeping its configured capacity and delay) from a decoded
/// checkpoint. `over` names the queue in the over-capacity error.
pub(crate) fn restore_req_queue(
    q: &mut DelayQueue<MemRequest>,
    d: &mut Decoder,
    over: &'static str,
) -> Result<(), SnapshotError> {
    let mut fresh = DelayQueue::new(q.capacity(), q.delay());
    for _ in 0..d.usize()? {
        let ready_at = Cycle::new(d.u64()?);
        let req = MemRequest::decode(d)?;
        fresh
            .push_with_ready_at(ready_at, req)
            .map_err(|_| SnapshotError::InvalidValue(over))?;
    }
    *q = fresh;
    Ok(())
}

/// Serializes a bounded FIFO of memory requests in queue order.
pub(crate) fn encode_req_fifo(e: &mut Encoder, q: &BoundedQueue<MemRequest>) {
    e.usize(q.len());
    for req in q.iter() {
        req.encode_state(e);
    }
}

/// Rebuilds `q` (keeping its configured capacity) from a decoded checkpoint.
pub(crate) fn restore_req_fifo(
    q: &mut BoundedQueue<MemRequest>,
    d: &mut Decoder,
    over: &'static str,
) -> Result<(), SnapshotError> {
    let mut fresh = BoundedQueue::new(q.capacity());
    for _ in 0..d.usize()? {
        fresh
            .push(MemRequest::decode(d)?)
            .map_err(|_| SnapshotError::InvalidValue(over))?;
    }
    *q = fresh;
    Ok(())
}
