//! End-to-end behavioral tests of the timing simulator: functional
//! correctness under timing, divergence, barriers, atomics, local memory,
//! tracing, and degenerate (cache-less) configurations.

use gpu_isa::{AluOp, CmpOp, KernelBuilder, Launch, Space, Special, Width};
use gpu_mem::Stamp;
use gpu_sim::{Gpu, GpuConfig, SchedPolicy, SimError};

fn vecadd_kernel() -> gpu_isa::Kernel {
    let mut b = KernelBuilder::new("vecadd");
    let a = b.param(0);
    let c = b.param(1);
    let out = b.param(2);
    let n = b.param(3);
    let gtid = b.special(Special::GlobalTid);
    let p = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(p, |b| {
        let off = b.shl(gtid, 2);
        let pa = b.add(a, off);
        let pb = b.add(c, off);
        let po = b.add(out, off);
        let va = b.ld_global(Width::W4, pa, 0);
        let vb = b.ld_global(Width::W4, pb, 0);
        let vo = b.add(va, vb);
        b.st_global(Width::W4, po, 0, vo);
    });
    b.exit();
    b.build().expect("valid kernel")
}

#[test]
fn vecadd_end_to_end() {
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let n = 1000u64;
    let a = gpu.alloc(4 * n, 128);
    let c = gpu.alloc(4 * n, 128);
    let out = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(a + 4 * i, i as u32);
        gpu.device_mut().write_u32(c + 4 * i, (2 * i) as u32);
    }
    let launch = Launch::new(8, 128, vec![a.get(), c.get(), out.get(), n]);
    gpu.launch(vecadd_kernel(), launch).unwrap();
    let summary = gpu.run(5_000_000).unwrap();
    for i in 0..n {
        assert_eq!(
            gpu.device().read_u32(out + 4 * i),
            (3 * i) as u32,
            "element {i}"
        );
    }
    assert!(summary.instructions > 0);
    assert_eq!(summary.ctas, 8);
    assert!(summary.ipc() > 0.0);
}

#[test]
fn gto_scheduler_also_completes() {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.scheduler = SchedPolicy::Gto;
    let mut gpu = Gpu::new(cfg);
    let n = 256u64;
    let a = gpu.alloc(4 * n, 128);
    let c = gpu.alloc(4 * n, 128);
    let out = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(a + 4 * i, 5);
        gpu.device_mut().write_u32(c + 4 * i, i as u32);
    }
    gpu.launch(
        vecadd_kernel(),
        Launch::new(2, 128, vec![a.get(), c.get(), out.get(), n]),
    )
    .unwrap();
    gpu.run(5_000_000).unwrap();
    for i in 0..n {
        assert_eq!(gpu.device().read_u32(out + 4 * i), 5 + i as u32);
    }
}

#[test]
fn cacheless_tesla_style_config_completes() {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.name = "cacheless".into();
    cfg.l1 = None;
    cfg.l2 = None;
    let mut gpu = Gpu::new(cfg);
    let n = 128u64;
    let a = gpu.alloc(4 * n, 128);
    let c = gpu.alloc(4 * n, 128);
    let out = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(a + 4 * i, 1);
        gpu.device_mut().write_u32(c + 4 * i, i as u32);
    }
    gpu.launch(
        vecadd_kernel(),
        Launch::new(1, 128, vec![a.get(), c.get(), out.get(), n]),
    )
    .unwrap();
    let s = gpu.run(5_000_000).unwrap();
    assert_eq!(s.l1_hits + s.l1_misses, 0, "no L1 present");
    assert_eq!(s.l2_hits + s.l2_misses, 0, "no L2 present");
    assert!(s.dram_serviced > 0);
    for i in 0..n {
        assert_eq!(gpu.device().read_u32(out + 4 * i), 1 + i as u32);
    }
}

#[test]
fn atomics_count_across_ctas() {
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let counter = gpu.alloc(4, 128);
    let mut b = KernelBuilder::new("count");
    let ctr = b.param(0);
    b.atom_add(Width::W4, ctr, 0, 1);
    b.exit();
    let kernel = b.build().unwrap();
    gpu.launch(kernel, Launch::new(20, 64, vec![counter.get()]))
        .unwrap();
    gpu.run(5_000_000).unwrap();
    assert_eq!(gpu.device().read_u32(counter), 20 * 64);
}

#[test]
fn barrier_and_shared_memory_reverse() {
    // Each CTA writes tid into shared[tid], barriers, then reads
    // shared[ntid-1-tid] and stores it to global.
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let block = 64u32;
    let out = gpu.alloc(4 * block as u64, 128);

    let mut b = KernelBuilder::new("reverse");
    let sbase = b.alloc_shared(4 * block as u64);
    let outp = b.param(0);
    let tid = b.special(Special::TidX);
    let ntid = b.special(Special::NTidX);
    let soff = b.shl(tid, 2);
    let saddr = b.add(soff, sbase as i64);
    b.st(Space::Shared, Width::W4, saddr, 0, tid);
    b.bar();
    let nm1 = b.sub(ntid, 1);
    let rev = b.sub(nm1, tid);
    let roff = b.shl(rev, 2);
    let raddr = b.add(roff, sbase as i64);
    let v = b.ld(Space::Shared, Width::W4, raddr, 0);
    let goff = b.shl(tid, 2);
    let gaddr = b.add(outp, goff);
    b.st_global(Width::W4, gaddr, 0, v);
    b.exit();
    let kernel = b.build().unwrap();

    gpu.launch(kernel, Launch::new(1, block, vec![out.get()]))
        .unwrap();
    gpu.run(5_000_000).unwrap();
    for i in 0..block as u64 {
        assert_eq!(
            gpu.device().read_u32(out + 4 * i),
            (block as u64 - 1 - i) as u32,
            "element {i}"
        );
    }
}

#[test]
fn local_memory_roundtrip_through_pipeline() {
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let out = gpu.alloc(4 * 32, 128);
    let mut b = KernelBuilder::new("spill");
    let off = b.alloc_local(64);
    let outp = b.param(0);
    let tid = b.special(Special::TidX);
    let laddr = b.mov(off as i64);
    let v = b.mul(tid, 7);
    b.st(Space::Local, Width::W4, laddr, 0, v);
    let v2 = b.ld(Space::Local, Width::W4, laddr, 0);
    let goff = b.shl(tid, 2);
    let gaddr = b.add(outp, goff);
    b.st_global(Width::W4, gaddr, 0, v2);
    b.exit();
    let kernel = b.build().unwrap();
    gpu.launch(kernel, Launch::new(1, 32, vec![out.get()]))
        .unwrap();
    gpu.run(5_000_000).unwrap();
    for i in 0..32u64 {
        assert_eq!(gpu.device().read_u32(out + 4 * i), (i * 7) as u32);
    }
}

#[test]
fn divergent_kernel_under_timing() {
    // Odd lanes triple, even lanes increment, all through divergent paths.
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let n = 64u64;
    let buf = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(buf + 4 * i, i as u32);
    }
    let mut b = KernelBuilder::new("diverge");
    let base = b.param(0);
    let gtid = b.special(Special::GlobalTid);
    let parity = b.and(gtid, 1);
    let p = b.setp(CmpOp::Eq, parity, 0);
    let off = b.shl(gtid, 2);
    let addr = b.add(base, off);
    let v = b.ld_global(Width::W4, addr, 0);
    let res = b.reg();
    b.if_then_else(
        p,
        |b| b.alu_to(AluOp::Add, res, v, 1),
        |b| b.alu_to(AluOp::Mul, res, v, 3),
    );
    b.st_global(Width::W4, addr, 0, res);
    b.exit();
    gpu.launch(b.build().unwrap(), Launch::new(2, 32, vec![buf.get()]))
        .unwrap();
    gpu.run(5_000_000).unwrap();
    for i in 0..n {
        let expect = if i % 2 == 0 {
            i as u32 + 1
        } else {
            3 * i as u32
        };
        assert_eq!(gpu.device().read_u32(buf + 4 * i), expect, "element {i}");
    }
}

#[test]
fn tracing_collects_monotone_timelines() {
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let n = 512u64;
    let a = gpu.alloc(4 * n, 128);
    let c = gpu.alloc(4 * n, 128);
    let out = gpu.alloc(4 * n, 128);
    gpu.set_tracing(true);
    gpu.launch(
        vecadd_kernel(),
        Launch::new(4, 128, vec![a.get(), c.get(), out.get(), n]),
    )
    .unwrap();
    gpu.run(5_000_000).unwrap();
    let (requests, loads) = gpu.take_traces();
    assert!(!requests.is_empty(), "line fetches traced");
    assert!(!loads.is_empty(), "load instructions traced");
    for r in &requests {
        // Stamps that exist must be monotonically non-decreasing in
        // pipeline order.
        let mut last = None;
        for s in Stamp::ALL {
            if let Some(t) = r.timeline.get(s) {
                if let Some(prev) = last {
                    assert!(t >= prev, "stamp {s:?} out of order");
                }
                last = Some(t);
            }
        }
        assert!(r.timeline.is_complete(), "traced requests are complete");
        assert!(r.timeline.total_latency().unwrap() > 0);
    }
    for l in &loads {
        assert!(l.total() > 0);
        assert!(l.exposed <= l.total());
        assert!(l.lines >= 1);
    }
    // Each warp-level load coalesces to >= 1 line; the per-warp loads of
    // vecadd are fully coalesced (consecutive 4-byte accesses).
    assert!(loads.iter().all(|l| l.lines <= 2));
}

#[test]
fn timeout_is_reported() {
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let a = gpu.alloc(4 * 64, 128);
    let c = gpu.alloc(4 * 64, 128);
    let out = gpu.alloc(4 * 64, 128);
    gpu.launch(
        vecadd_kernel(),
        Launch::new(1, 64, vec![a.get(), c.get(), out.get(), 64]),
    )
    .unwrap();
    match gpu.run(10) {
        Err(SimError::Timeout { max_cycles: 10 }) => {}
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn run_without_launch_errors() {
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    assert_eq!(gpu.run(100), Err(SimError::NothingLaunched));
}

#[test]
fn block_too_large_rejected() {
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let mut b = KernelBuilder::new("k");
    b.exit();
    let kernel = b.build().unwrap();
    // 48 warp slots * 32 lanes = 1536 threads max; ask for 1568+.
    let launch = Launch::new(1, 49 * 32, vec![]);
    match gpu.launch(kernel, launch) {
        Err(SimError::BlockTooLarge {
            needed: 49,
            available: 48,
        }) => {}
        other => panic!("expected BlockTooLarge, got {other:?}"),
    }
}

#[test]
fn grid_larger_than_machine_drains() {
    // More CTAs than can be resident at once: the dispatcher must stream.
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let counter = gpu.alloc(4, 128);
    let mut b = KernelBuilder::new("count");
    let ctr = b.param(0);
    b.atom_add(Width::W4, ctr, 0, 1);
    b.exit();
    let kernel = b.build().unwrap();
    // 15 SMs * 8 CTA slots = 120 resident max; launch 400 CTAs.
    gpu.launch(kernel, Launch::new(400, 32, vec![counter.get()]))
        .unwrap();
    let s = gpu.run(10_000_000).unwrap();
    assert_eq!(gpu.device().read_u32(counter), 400 * 32);
    assert_eq!(s.ctas, 400);
}

#[test]
fn l1_captures_rereferenced_lines() {
    // Two dependent reads of the same small array: second pass hits in L1.
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let n = 32u64;
    let buf = gpu.alloc(4 * n, 128);
    let out = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(buf + 4 * i, i as u32);
    }
    let mut b = KernelBuilder::new("reread");
    let basep = b.param(0);
    let outp = b.param(1);
    let tid = b.special(Special::TidX);
    let off = b.shl(tid, 2);
    let addr = b.add(basep, off);
    let v1 = b.ld_global(Width::W4, addr, 0);
    // Make the second load data-dependent on the first so it issues after
    // the fill completes (otherwise it would MSHR-merge, not hit).
    let zero = b.and(v1, 0);
    let addr2 = b.add(addr, zero);
    let v2 = b.ld_global(Width::W4, addr2, 0);
    let s = b.add(v1, v2);
    let oaddr = b.add(outp, off);
    b.st_global(Width::W4, oaddr, 0, s);
    b.exit();
    gpu.launch(
        b.build().unwrap(),
        Launch::new(1, n as u32, vec![buf.get(), out.get()]),
    )
    .unwrap();
    let summary = gpu.run(5_000_000).unwrap();
    assert!(summary.l1_hits >= 1, "second load should hit: {summary:?}");
    for i in 0..n {
        assert_eq!(gpu.device().read_u32(out + 4 * i), 2 * i as u32);
    }
}

#[test]
fn missing_params_rejected_at_launch() {
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let mut b = KernelBuilder::new("needs_params");
    let _ = b.param(0);
    let _ = b.param(3);
    b.exit();
    let kernel = b.build().unwrap();
    match gpu.launch(kernel, Launch::new(1, 32, vec![1, 2])) {
        Err(SimError::MissingParams {
            needed: 4,
            supplied: 2,
        }) => {}
        other => panic!("expected MissingParams, got {other:?}"),
    }
}
