//! Direct unit tests of the memory-partition pipeline: ROP delay, L2
//! hit/miss handling, MSHR merging, DRAM interaction and stamp placement —
//! driven request by request, without SMs or networks.

use gpu_mem::{AccessKind, MemRequest, PipelineSpace, RequestId, Stamp};
use gpu_sim::{GpuConfig, Partition, TraceConfig, Tracer};
use gpu_types::{Addr, Cycle, PartitionId, SmId};

fn config() -> GpuConfig {
    GpuConfig::fermi_gf100()
}

/// A disabled tracer for call sites that don't care about events.
fn no_trace() -> Tracer {
    Tracer::new(TraceConfig::default())
}

fn partition(cfg: &GpuConfig) -> Partition {
    // Single-partition map so partition-local == device addresses.
    let map = gpu_mem::AddressMap::new(1, cfg.partition_chunk, cfg.dram_banks, cfg.dram_row_bytes);
    Partition::new(PartitionId::new(0), cfg, map)
}

fn load(id: u64, addr: u64, now: Cycle) -> MemRequest {
    MemRequest::new(
        RequestId::new(id),
        Addr::new(addr),
        128,
        AccessKind::Load,
        PipelineSpace::Global,
        SmId::new(0),
        id,
        now,
    )
}

fn store(id: u64, addr: u64, now: Cycle) -> MemRequest {
    MemRequest::new(
        RequestId::new(id),
        Addr::new(addr),
        128,
        AccessKind::Store,
        PipelineSpace::Global,
        SmId::new(0),
        u64::MAX,
        now,
    )
}

/// Drives the partition until `want` responses have been produced.
fn drain(p: &mut Partition, mut now: Cycle, want: usize, limit: u64) -> (Vec<MemRequest>, Cycle) {
    let mut out = Vec::new();
    for _ in 0..limit {
        p.tick(now, &mut no_trace());
        while let Some(r) = p.pop_return() {
            out.push(r);
        }
        if out.len() >= want {
            return (out, now);
        }
        now.tick();
    }
    panic!("partition did not produce {want} responses within {limit} cycles");
}

#[test]
fn cold_load_goes_to_dram_with_full_stamp_chain() {
    let cfg = config();
    let mut p = partition(&cfg);
    let t0 = Cycle::new(100);
    assert!(p.can_accept());
    p.accept(load(1, 0x8000, t0), t0, &mut no_trace());
    let (done, _) = drain(&mut p, t0, 1, 10_000);
    let tl = &done[0].timeline;
    // Every partition-side stamp must be present and ordered.
    let rop = tl.get(Stamp::RopEnter).unwrap();
    let l2q = tl.get(Stamp::L2QueueEnter).unwrap();
    let dq = tl.get(Stamp::DramQueueEnter).unwrap();
    let ds = tl.get(Stamp::DramScheduled).unwrap();
    let dd = tl.get(Stamp::DramDone).unwrap();
    assert_eq!(rop, t0);
    assert_eq!(l2q.since(rop), cfg.rop_latency, "ROP is a fixed pipeline");
    assert!(dq >= l2q && ds >= dq && dd > ds);
    // Unloaded: conflict-free closed-row access.
    assert_eq!(
        dd.since(ds),
        cfg.dram.timing.row_closed() + cfg.dram.timing.burst
    );
    assert_eq!(p.dram_stats().serviced, 1);
    assert_eq!(p.l2_counts().unwrap(), (0, 1));
}

#[test]
fn second_load_hits_l2_and_skips_dram() {
    let cfg = config();
    let mut p = partition(&cfg);
    let t0 = Cycle::new(0);
    p.accept(load(1, 0x8000, t0), t0, &mut no_trace());
    let (_, t1) = drain(&mut p, t0, 1, 10_000);
    let t2 = t1 + 10;
    p.accept(load(2, 0x8000, t2), t2, &mut no_trace());
    let (done, _) = drain(&mut p, t2, 1, 10_000);
    let tl = &done[0].timeline;
    assert_eq!(
        tl.get(Stamp::DramQueueEnter),
        None,
        "L2 hit must not touch DRAM"
    );
    assert_eq!(p.dram_stats().serviced, 1);
    assert_eq!(p.l2_counts().unwrap().0, 1, "one L2 hit");
    // Hit latency: l2 queue entry -> response exactly hit_latency later
    // (plus the single-cycle queue hop).
    let l2q = tl.get(Stamp::L2QueueEnter).unwrap();
    assert!(l2q.get() > 0);
    // Returned is an SM-side stamp; a partition-only drain never sets it.
    assert_eq!(tl.get(Stamp::Returned), None);
}

#[test]
fn concurrent_same_line_loads_merge_at_l2_mshr() {
    let cfg = config();
    let mut p = partition(&cfg);
    let t0 = Cycle::new(0);
    p.accept(load(1, 0x4000, t0), t0, &mut no_trace());
    p.accept(load(2, 0x4000, t0), t0, &mut no_trace());
    p.accept(load(3, 0x4040, t0), t0, &mut no_trace()); // same line, different offset
    let (done, _) = drain(&mut p, t0, 3, 20_000);
    assert_eq!(done.len(), 3);
    assert_eq!(
        p.dram_stats().serviced,
        1,
        "one DRAM fetch serves all three requests"
    );
    // Merged waiters carry DramScheduled/DramDone stamps from the fill.
    for r in &done {
        assert!(r.timeline.get(Stamp::DramDone).is_some());
    }
}

#[test]
fn stores_write_through_and_are_counted() {
    let cfg = config();
    let mut p = partition(&cfg);
    let t0 = Cycle::new(0);
    // Warm the line, then store to it: the line must be invalidated and the
    // store must reach DRAM.
    p.accept(load(1, 0x2000, t0), t0, &mut no_trace());
    let (_, t1) = drain(&mut p, t0, 1, 10_000);
    let before = p.stores_completed();
    let t2 = t1 + 1;
    p.accept(store(2, 0x2000, t2), t2, &mut no_trace());
    // Stores produce no response; run until the store retires.
    let mut now = t2;
    for _ in 0..10_000 {
        p.tick(now, &mut no_trace());
        if p.stores_completed() > before {
            break;
        }
        now.tick();
    }
    assert_eq!(p.stores_completed(), before + 1);
    // The invalidated line now misses again.
    let t3 = now + 1;
    p.accept(load(3, 0x2000, t3), t3, &mut no_trace());
    let (done, _) = drain(&mut p, t3, 1, 10_000);
    assert!(
        done[0].timeline.get(Stamp::DramQueueEnter).is_some(),
        "write-evict store must have invalidated the L2 line"
    );
}

#[test]
fn rop_queue_backpressures_accept() {
    let cfg = config();
    let mut p = partition(&cfg);
    let t0 = Cycle::new(0);
    for i in 0..cfg.rop_queue as u64 {
        assert!(p.can_accept(), "slot {i} available");
        p.accept(load(i, i * 128, t0), t0, &mut no_trace());
    }
    assert!(!p.can_accept(), "ROP full must back-pressure the network");
    // After a tick at rop_latency, one entry moves into the L2 queue.
    let later = t0 + cfg.rop_latency;
    p.tick(later, &mut no_trace());
    assert!(p.can_accept());
}

#[test]
fn cacheless_partition_routes_straight_to_dram() {
    let mut cfg = config();
    cfg.l2 = None;
    let mut p = partition(&cfg);
    let t0 = Cycle::new(0);
    p.accept(load(1, 0x1000, t0), t0, &mut no_trace());
    let (done, _) = drain(&mut p, t0, 1, 10_000);
    let tl = &done[0].timeline;
    assert!(tl.get(Stamp::DramQueueEnter).is_some());
    assert!(p.l2_counts().is_none());
    // Repeat access also goes to DRAM (nothing caches it).
    let t2 = Cycle::new(5000);
    p.accept(load(2, 0x1000, t2), t2, &mut no_trace());
    drain(&mut p, t2, 1, 10_000);
    assert_eq!(p.dram_stats().serviced, 2);
}

#[test]
fn is_idle_reflects_in_flight_state() {
    let cfg = config();
    let mut p = partition(&cfg);
    assert!(p.is_idle());
    let t0 = Cycle::new(0);
    p.accept(load(1, 0, t0), t0, &mut no_trace());
    assert!(!p.is_idle());
    drain(&mut p, t0, 1, 10_000);
    assert!(p.is_idle(), "drained partition must be idle");
}

mod write_back {
    use super::*;
    use gpu_sim::WritePolicy;

    fn wb_partition() -> (GpuConfig, Partition) {
        let mut cfg = config();
        cfg.l2.as_mut().unwrap().write_policy = WritePolicy::WriteBack;
        let p = partition(&cfg);
        (cfg, p)
    }

    #[test]
    fn store_hit_retires_at_l2_without_dram() {
        let (_, mut p) = wb_partition();
        let t0 = Cycle::new(0);
        // Warm the line with a load, then store to it.
        p.accept(load(1, 0x6000, t0), t0, &mut no_trace());
        let (_, t1) = drain(&mut p, t0, 1, 10_000);
        let dram_before = p.dram_stats().serviced;
        let t2 = t1 + 1;
        p.accept(store(2, 0x6000, t2), t2, &mut no_trace());
        let mut now = t2;
        for _ in 0..10_000 {
            p.tick(now, &mut no_trace());
            if p.stores_completed() > 0 {
                break;
            }
            now.tick();
        }
        assert_eq!(p.stores_completed(), 1, "store retires at the L2");
        assert_eq!(
            p.dram_stats().serviced,
            dram_before,
            "write-back store hit must not touch DRAM"
        );
        // The dirtied line still serves loads.
        let t3 = now + 1;
        p.accept(load(3, 0x6000, t3), t3, &mut no_trace());
        let (done, _) = drain(&mut p, t3, 1, 10_000);
        assert_eq!(done[0].timeline.get(Stamp::DramQueueEnter), None);
    }

    #[test]
    fn store_miss_write_allocates() {
        let (_, mut p) = wb_partition();
        let t0 = Cycle::new(0);
        p.accept(store(1, 0x7000, t0), t0, &mut no_trace());
        let mut now = t0;
        for _ in 0..10_000 {
            p.tick(now, &mut no_trace());
            if p.stores_completed() > 0 {
                break;
            }
            now.tick();
        }
        assert_eq!(p.stores_completed(), 1);
        assert_eq!(p.dram_stats().serviced, 0, "no fetch-on-write, no DRAM yet");
        // A subsequent load of the written line hits the allocated entry.
        let t1 = now + 1;
        p.accept(load(2, 0x7000, t1), t1, &mut no_trace());
        let (done, _) = drain(&mut p, t1, 1, 10_000);
        assert_eq!(done[0].timeline.get(Stamp::DramQueueEnter), None, "L2 hit");
    }

    #[test]
    fn dirty_eviction_writes_back_to_dram() {
        // Fill one set's ways with dirty lines, then push more lines through
        // it: evicted dirty victims must reach DRAM as writes while the
        // partition stays consistent and drains to idle.
        let (cfg, mut p) = wb_partition();
        let ways = cfg.l2.as_ref().unwrap().cache.ways as u64;
        let sets = cfg.l2.as_ref().unwrap().cache.sets as u64;
        let set_stride = sets * cfg.line_size; // same set, new tag
        let mut now = Cycle::new(0);
        // `ways + 2` dirty stores to the same set force >= 2 dirty evictions.
        for k in 0..ways + 2 {
            p.accept(store(k, k * set_stride, now), now, &mut no_trace());
            // Let each store land before the next (queue capacity is small).
            for _ in 0..200 {
                p.tick(now, &mut no_trace());
                now.tick();
            }
        }
        // Drain until fully idle.
        for _ in 0..100_000 {
            p.tick(now, &mut no_trace());
            while p.pop_return().is_some() {}
            if p.is_idle() {
                break;
            }
            now.tick();
        }
        assert!(p.is_idle(), "write-back partition must drain");
        assert_eq!(p.stores_completed(), ways + 2, "all stores retired at L2");
        assert!(
            p.dram_stats().serviced >= 2,
            "dirty evictions must reach DRAM: {:?}",
            p.dram_stats()
        );
    }
}
