//! End-to-end tests of the observability layer: event tracing must never
//! perturb timing, and the exported Chrome-trace spans must tile each
//! request's Timeline lifetime exactly.

use gpu_isa::{KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, GpuConfig, MetricsReport, RunSummary};
use gpu_trace::{json, ChromeTraceBuilder, EventKind};

fn small_config() -> GpuConfig {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.num_sms = 2;
    cfg.num_partitions = 2;
    cfg
}

/// A copy kernel: every thread loads one word and stores it shifted.
fn copy_kernel() -> gpu_isa::Kernel {
    let mut b = KernelBuilder::new("copy");
    let src = b.param(0);
    let dst = b.param(1);
    let gtid = b.special(Special::GlobalTid);
    let off = b.shl(gtid, 2);
    let sa = b.add(src, off);
    let da = b.add(dst, off);
    let v = b.ld_global(Width::W4, sa, 0);
    b.st_global(Width::W4, da, 0, v);
    b.exit();
    b.build().expect("valid kernel")
}

fn run_copy(gpu: &mut Gpu, n: u64) -> RunSummary {
    let src = gpu.alloc(4 * n, 128);
    let dst = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(src + 4 * i, (i * 3) as u32);
    }
    let grid = (n as u32).div_ceil(128);
    gpu.launch(
        copy_kernel(),
        Launch::new(grid, 128, vec![src.get(), dst.get()]),
    )
    .expect("launch");
    gpu.run(10_000_000).expect("run drains")
}

#[test]
fn event_tracing_is_cycle_identical() {
    let mut plain = Gpu::new(small_config());
    let mut traced = Gpu::new(small_config());
    traced.set_event_tracing(true);

    let a = run_copy(&mut plain, 2048);
    let b = run_copy(&mut traced, 2048);

    assert_eq!(a.cycles, b.cycles, "tracing must not perturb timing");
    // Everything except the tracer's own bookkeeping (and wall clock) must
    // match exactly.
    let normalized = RunSummary {
        metrics: MetricsReport {
            host_nanos: a.metrics.host_nanos,
            samples: a.metrics.samples,
            counters: a.metrics.counters,
            events_recorded: a.metrics.events_recorded,
            events_dropped: a.metrics.events_dropped,
            ..b.metrics
        },
        ..b
    };
    assert_eq!(a, normalized);

    assert_eq!(plain.tracer().events_recorded(), 0);
    assert!(traced.tracer().events_recorded() > 0);
}

#[test]
fn enabled_run_emits_the_event_taxonomy() {
    let mut cfg = small_config();
    cfg.trace.enabled = true;
    cfg.trace.sample_interval = 16;
    let mut gpu = Gpu::new(cfg);
    let summary = run_copy(&mut gpu, 2048);
    let data = gpu.take_trace();

    assert!(!data.events.is_empty());
    assert!(!data.samples.is_empty());
    assert_eq!(data.dropped_events, 0);
    assert_eq!(summary.metrics.events_recorded, data.events.len() as u64);
    assert!(summary.metrics.samples >= data.samples.len() as u64);

    let mut seen = std::collections::BTreeSet::new();
    for e in &data.events {
        seen.insert(e.kind.name());
    }
    for kind in [
        "coalesce",
        "mshr_alloc",
        "mshr_fill",
        "icnt_inject",
        "icnt_eject",
        "queue_enter",
        "queue_leave",
        "row_activate",
    ] {
        assert!(seen.contains(kind), "missing event kind {kind}: {seen:?}");
    }
    // Events are recorded in simulation order.
    assert!(data.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    let _ = data
        .events
        .iter()
        .find(|e| matches!(e.kind, EventKind::QueueEnter { .. }))
        .expect("at least one queue event");
}

#[test]
fn exported_spans_tile_each_request_lifetime() {
    let mut cfg = small_config();
    cfg.trace.enabled = true;
    let mut gpu = Gpu::new(cfg);
    gpu.set_tracing(true); // latency sink: collect completed timelines
    run_copy(&mut gpu, 2048);

    let (requests, _) = gpu.take_traces();
    assert!(!requests.is_empty());
    let data = gpu.take_trace();

    let mut builder = ChromeTraceBuilder::new(2, 2);
    for (i, r) in requests.iter().enumerate() {
        builder.add_request_span(r.sm.get(), i as u64, &r.timeline);
    }
    for e in &data.events {
        builder.add_event(e);
    }
    for s in &data.samples {
        builder.add_counter_sample(s);
    }
    let json_text = builder.finish();
    let doc = json::parse(&json_text).expect("exported trace must be valid JSON");
    let verified = gpu_trace::check_span_sums(&doc).expect("span stage sums must tile lifetimes");
    let complete = requests.iter().filter(|r| r.timeline.is_complete()).count() as u64;
    assert_eq!(verified, complete);
    assert!(verified > 0);
}

#[test]
fn stall_attribution_sums_to_stall_cycles() {
    let mut gpu = Gpu::new(small_config());
    let summary = run_copy(&mut gpu, 2048);

    let mut total = 0;
    for st in gpu.sm_stats() {
        assert_eq!(
            st.stalls.total(),
            st.stall_cycles,
            "every stall cycle must be attributed to a reason"
        );
        total += st.stall_cycles;
    }
    assert!(total > 0, "a memory-bound copy must stall somewhere");
    assert_eq!(summary.metrics.stalls.total(), total);
}

#[test]
fn per_load_stall_reasons_are_bounded_by_lifetime() {
    let mut gpu = Gpu::new(small_config());
    gpu.set_tracing(true);
    run_copy(&mut gpu, 2048);
    let (_, loads) = gpu.take_traces();
    assert!(!loads.is_empty());
    for l in &loads {
        assert_eq!(l.stall_reasons.total(), l.exposed);
        assert!(l.exposed <= l.total());
        assert!(l.exposed_fraction() <= 1.0);
    }
}
