//! End-to-end tests of the cycle-level invariant sanitizer.
//!
//! The load-bearing pair: a deliberately seeded L1 MSHR leak (an entry no
//! fill ever releases) drains and "passes" silently when the sanitizer is
//! off — the SM idle check ignores the MSHR table because a leaked entry
//! holds no queue slot — and is caught, named, and turned into a test
//! failure when the sanitizer is on.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gpu_isa::{KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, GpuConfig, Violation};
use gpu_types::Addr;

fn small_config(sanitize: bool) -> GpuConfig {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.num_sms = 2;
    cfg.num_partitions = 2;
    cfg.sanitize = sanitize;
    cfg
}

/// A copy kernel: every thread loads one word and stores it shifted.
fn copy_kernel() -> gpu_isa::Kernel {
    let mut b = KernelBuilder::new("copy");
    let src = b.param(0);
    let dst = b.param(1);
    let gtid = b.special(Special::GlobalTid);
    let off = b.shl(gtid, 2);
    let sa = b.add(src, off);
    let da = b.add(dst, off);
    let v = b.ld_global(Width::W4, sa, 0);
    b.st_global(Width::W4, da, 0, v);
    b.exit();
    b.build().expect("valid kernel")
}

fn run_copy(gpu: &mut Gpu, n: u64) -> Result<gpu_sim::RunSummary, gpu_sim::SimError> {
    let src = gpu.alloc(4 * n, 128);
    let dst = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(src + 4 * i, (i * 3) as u32);
    }
    let grid = (n as u32).div_ceil(128);
    gpu.launch(
        copy_kernel(),
        Launch::new(grid, 128, vec![src.get(), dst.get()]),
    )?;
    let summary = gpu.run(10_000_000)?;
    for i in 0..n {
        assert_eq!(gpu.device().read_u32(dst + 4 * i), (i * 3) as u32);
    }
    Ok(summary)
}

#[test]
fn clean_run_reports_no_violations() {
    let mut gpu = Gpu::new(small_config(true));
    let summary = run_copy(&mut gpu, 2048).expect("clean run");
    assert!(gpu.sanitizer().is_clean(), "{}", gpu.sanitizer().report());
    assert_eq!(summary.sanitizer_violations, 0);
}

#[test]
fn seeded_mshr_leak_passes_silently_without_sanitizer() {
    // This is the baseline the sanitizer exists to fix: the leak changes
    // nothing observable — the run drains, results verify, stats are clean.
    let mut gpu = Gpu::new(small_config(false));
    gpu.debug_seed_mshr_leak(Addr::new(0x7FFF_0000));
    let summary = run_copy(&mut gpu, 2048).expect("run drains despite the leak");
    assert_eq!(summary.sanitizer_violations, 0);
    assert!(gpu.sanitizer().is_clean());
}

#[test]
fn seeded_mshr_leak_is_caught_by_sanitizer() {
    let mut gpu = Gpu::new(small_config(true));
    gpu.debug_seed_mshr_leak(Addr::new(0x7FFF_0000));
    let outcome = catch_unwind(AssertUnwindSafe(|| run_copy(&mut gpu, 2048)));
    if cfg!(debug_assertions) {
        // Test builds: the end-of-run audit panics with the report.
        let err = outcome.expect_err("sanitizer must panic on the seeded leak");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries the report");
        assert!(msg.contains("MSHR leak"), "unexpected report: {msg}");
    } else {
        // Release builds accumulate instead of aborting.
        outcome.expect("release runs do not panic").expect("run ok");
    }
    // Either way the report is queryable afterwards and names the line.
    let report = gpu.sanitizer();
    assert!(!report.is_clean());
    assert!(report.violations().iter().any(|v| matches!(
        v,
        Violation::MshrLeak { lines, .. }
            if lines.contains(&Addr::new(0x7FFF_0000))
    )));
}

#[test]
fn sanitized_and_unsanitized_runs_time_identically() {
    // The sanitizer observes; it must never perturb timing.
    let mut with = Gpu::new(small_config(true));
    let mut without = Gpu::new(small_config(false));
    let a = run_copy(&mut with, 4096).expect("sanitized run");
    let b = run_copy(&mut without, 4096).expect("plain run");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    // Host wall-clock is the summary's only non-deterministic field.
    assert_eq!(
        gpu_sim::RunSummary {
            sanitizer_violations: 0,
            metrics: gpu_sim::MetricsReport {
                host_nanos: b.metrics.host_nanos,
                ..a.metrics
            },
            ..a
        },
        b
    );
}
