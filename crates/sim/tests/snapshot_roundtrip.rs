//! Checkpoint codec integration tests: a snapshot taken mid-flight must
//! decode back into a simulator whose own snapshot is byte-identical
//! (encode → decode → encode equality across every serialized state type at
//! once), and malformed streams of every flavour must be rejected with a
//! typed [`SnapshotError`] — never a panic.

use gpu_isa::{KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, GpuConfig};
use gpu_snapshot::{SnapshotError, FORMAT_VERSION, MAGIC};

fn small_config() -> GpuConfig {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.num_sms = 2;
    cfg.num_partitions = 2;
    cfg.trace.enabled = true;
    cfg.trace.sample_interval = 16;
    cfg
}

/// A copy kernel: every thread loads one word and stores it shifted.
fn copy_kernel() -> gpu_isa::Kernel {
    let mut b = KernelBuilder::new("copy");
    let src = b.param(0);
    let dst = b.param(1);
    let gtid = b.special(Special::GlobalTid);
    let off = b.shl(gtid, 2);
    let sa = b.add(src, off);
    let da = b.add(dst, off);
    let v = b.ld_global(Width::W4, sa, 0);
    b.st_global(Width::W4, da, 0, v);
    b.exit();
    b.build().expect("valid kernel")
}

/// Launches the copy kernel and advances `cycles` ticks, leaving the GPU
/// mid-flight with live warps, occupied queues/MSHRs/networks and pending
/// DRAM traffic — the richest state a snapshot can capture.
fn mid_flight_gpu(cycles: u64) -> Gpu {
    let mut gpu = Gpu::new(small_config());
    gpu.set_tracing(true);
    let n = 2048u64;
    let src = gpu.alloc(4 * n, 128);
    let dst = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(src + 4 * i, (i * 3) as u32);
    }
    gpu.launch(
        copy_kernel(),
        Launch::new((n as u32).div_ceil(128), 128, vec![src.get(), dst.get()]),
    )
    .expect("launch");
    for _ in 0..cycles {
        gpu.tick();
    }
    gpu
}

#[test]
fn encode_decode_encode_is_byte_identical() {
    // Several depths: idle-after-launch, warm-up, deep mid-flight with the
    // memory system saturated, and fully drained.
    for cycles in [0u64, 10, 200, 1000] {
        let gpu = mid_flight_gpu(cycles);
        let bytes = gpu.snapshot();
        let restored = Gpu::restore(&bytes).expect("restore succeeds");
        assert_eq!(
            bytes,
            restored.snapshot(),
            "snapshot of restored GPU differs at {cycles} cycles"
        );
    }
}

#[test]
fn drained_gpu_roundtrips_too() {
    let mut gpu = mid_flight_gpu(0);
    gpu.run(10_000_000).expect("run drains");
    let bytes = gpu.snapshot();
    let restored = Gpu::restore(&bytes).expect("restore succeeds");
    assert_eq!(bytes, restored.snapshot());
    assert_eq!(gpu.summary(), restored.summary());
}

#[test]
fn truncated_stream_is_rejected_at_every_length() {
    let bytes = mid_flight_gpu(100).snapshot();
    // Every strict prefix must fail with a typed error, never a panic.
    // Stride keeps the test fast; the ends and the header region are dense.
    let mut cuts: Vec<usize> = (0..bytes.len().min(64)).collect();
    cuts.extend((64..bytes.len()).step_by(997));
    cuts.push(bytes.len() - 1);
    for cut in cuts {
        let err = match Gpu::restore(&bytes[..cut]) {
            Err(e) => e,
            Ok(_) => panic!("prefix of {cut} bytes must fail to restore"),
        };
        assert!(
            matches!(
                err,
                SnapshotError::UnexpectedEof { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::UnsupportedVersion(_)
                    | SnapshotError::ChecksumMismatch { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut bytes = mid_flight_gpu(50).snapshot();
    bytes[0] ^= 0xFF;
    assert!(matches!(Gpu::restore(&bytes), Err(SnapshotError::BadMagic)));
}

#[test]
fn wrong_version_is_rejected() {
    let mut bytes = mid_flight_gpu(50).snapshot();
    let future = (FORMAT_VERSION + 1).to_le_bytes();
    bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&future);
    assert!(matches!(
        Gpu::restore(&bytes),
        Err(SnapshotError::UnsupportedVersion(v)) if v == FORMAT_VERSION + 1
    ));
}

#[test]
fn payload_corruption_is_rejected_everywhere() {
    let bytes = mid_flight_gpu(100).snapshot();
    // Flip one byte at a spread of offsets; the checksum (or, for header
    // bytes, the frame validation) must catch every single one.
    for pos in (0..bytes.len()).step_by(501) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x5A;
        assert!(
            Gpu::restore(&bad).is_err(),
            "flip at byte {pos} was not detected"
        );
    }
}

#[test]
fn garbage_and_empty_streams_are_rejected() {
    assert!(matches!(
        Gpu::restore(&[]),
        Err(SnapshotError::UnexpectedEof { .. })
    ));
    assert!(Gpu::restore(b"not a snapshot at all").is_err());
    // A well-framed stream whose payload is not a GPU state.
    let mut e = gpu_snapshot::Encoder::new();
    e.str("hello");
    e.u64(42);
    assert!(Gpu::restore(&e.finish()).is_err());
}

#[test]
fn restored_gpu_completes_identically() {
    let mut original = mid_flight_gpu(300);
    let mut restored = Gpu::restore(&original.snapshot()).expect("restore");
    let a = original.run(10_000_000).expect("original drains");
    let b = restored.run(10_000_000).expect("restored drains");
    // Only host wall-clock may differ: the restored GPU lost the nanos
    // spent before the snapshot.
    let normalized = gpu_sim::RunSummary {
        metrics: gpu_sim::MetricsReport {
            host_nanos: a.metrics.host_nanos,
            ..b.metrics
        },
        ..b
    };
    assert_eq!(a, normalized);
    assert_eq!(a.content_hash, b.content_hash);
    assert_ne!(a.content_hash, 0);
}

#[test]
fn resume_latest_picks_newest_checkpoint() {
    let dir = std::env::temp_dir().join(format!("gsnp-latest-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    assert!(Gpu::resume_latest(&dir)
        .expect("missing dir is None")
        .is_none());

    let mut gpu = mid_flight_gpu(100);
    gpu.write_checkpoint(&dir).expect("checkpoint 1");
    for _ in 0..100 {
        gpu.tick();
    }
    let at = gpu.now().get();
    gpu.write_checkpoint(&dir).expect("checkpoint 2");
    let resumed = Gpu::resume_latest(&dir)
        .expect("resume reads")
        .expect("checkpoint exists");
    assert_eq!(resumed.now().get(), at, "newest checkpoint wins");
    std::fs::remove_dir_all(&dir).ok();
}
