//! Randomized tests of the timing simulator, driven by the workspace's
//! hermetic [`gpu_types::rng`] (fixed seeds, fully reproducible): functional
//! results must be independent of timing configuration, and no configuration
//! may deadlock.

use gpu_isa::{CmpOp, KernelBuilder, LaneAccess, Launch, Special, Width};
use gpu_sim::{coalesce, Gpu, GpuConfig, SchedPolicy};
use gpu_types::rng::Rng;
use gpu_types::Addr;

fn scaled_config(
    num_sms: usize,
    with_l1: bool,
    with_l2: bool,
    sched: SchedPolicy,
    issue_width: usize,
) -> GpuConfig {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.num_sms = num_sms;
    cfg.num_partitions = 2;
    cfg.scheduler = sched;
    cfg.issue_width = issue_width;
    if !with_l1 {
        cfg.l1 = None;
    }
    if !with_l2 {
        cfg.l2 = None;
    }
    cfg
}

fn saxpy_kernel() -> gpu_isa::Kernel {
    let mut b = KernelBuilder::new("saxpy");
    let x = b.param(0);
    let y = b.param(1);
    let n = b.param(2);
    let gtid = b.special(Special::GlobalTid);
    let p = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(p, |b| {
        let off = b.shl(gtid, 2);
        let xa = b.add(x, off);
        let ya = b.add(y, off);
        let xv = b.ld_global(Width::W4, xa, 0);
        let yv = b.ld_global(Width::W4, ya, 0);
        let t = b.mul(xv, 3);
        let s = b.add(t, yv);
        b.st_global(Width::W4, ya, 0, s);
    });
    b.exit();
    b.build().expect("valid kernel")
}

/// Functional results are identical across machine shapes, schedulers
/// and cache configurations — timing never changes architectural state.
#[test]
fn results_independent_of_timing_config() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0x7131_0000 + case);
        let n = rng.gen_range_u64(1, 600);
        let block = 1u32 << rng.gen_range_u32(5, 9); // 32..256
        let num_sms = rng.gen_range_usize(1, 5);
        let with_l1 = rng.gen_bool();
        let with_l2 = rng.gen_bool();
        let sched = if rng.gen_bool() {
            SchedPolicy::Gto
        } else {
            SchedPolicy::Lrr
        };
        let issue_width = rng.gen_range_usize(1, 3);
        let cfg = scaled_config(num_sms, with_l1, with_l2, sched, issue_width);
        let mut gpu = Gpu::new(cfg);
        let x = gpu.alloc(4 * n, 128);
        let y = gpu.alloc(4 * n, 128);
        for i in 0..n {
            gpu.device_mut().write_u32(x + 4 * i, i as u32);
            gpu.device_mut().write_u32(y + 4 * i, 7);
        }
        let grid = (n as u32).div_ceil(block);
        gpu.launch(
            saxpy_kernel(),
            Launch::new(grid, block, vec![x.get(), y.get(), n]),
        )
        .expect("launch");
        let summary = gpu.run(50_000_000).expect("no deadlock within bound");
        for i in 0..n {
            assert_eq!(
                gpu.device().read_u32(y + 4 * i),
                3 * i as u32 + 7,
                "case {case}: element {i}"
            );
        }
        assert!(summary.cycles > 0, "case {case}");
        assert_eq!(summary.ctas, grid as u64, "case {case}");
    }
}

/// Tiny queues everywhere must back-pressure, not deadlock or drop
/// requests.
#[test]
fn minimal_queues_never_deadlock() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xDEAD_0000 + case);
        let n = rng.gen_range_u64(1, 300);
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 2;
        cfg.num_partitions = 2;
        if let Some(l1) = cfg.l1.as_mut() {
            l1.miss_queue = rng.gen_range_usize(1, 3);
            l1.mshr.entries = 2;
            l1.mshr.max_merged = 1;
        }
        cfg.icnt.output_queue = rng.gen_range_usize(1, 3);
        cfg.rop_queue = rng.gen_range_usize(1, 3);
        if let Some(l2) = cfg.l2.as_mut() {
            l2.input_queue = 1;
            l2.mshr.entries = 2;
            l2.mshr.max_merged = 1;
        }
        cfg.dram.queue_capacity = rng.gen_range_usize(1, 3);
        let mut gpu = Gpu::new(cfg);
        let x = gpu.alloc(4 * n, 128);
        let y = gpu.alloc(4 * n, 128);
        for i in 0..n {
            gpu.device_mut().write_u32(x + 4 * i, 2);
            gpu.device_mut().write_u32(y + 4 * i, i as u32);
        }
        let grid = (n as u32).div_ceil(64);
        gpu.launch(
            saxpy_kernel(),
            Launch::new(grid, 64, vec![x.get(), y.get(), n]),
        )
        .expect("launch");
        gpu.run(50_000_000)
            .expect("no deadlock under minimal queues");
        for i in 0..n {
            assert_eq!(
                gpu.device().read_u32(y + 4 * i),
                6 + i as u32,
                "case {case}: element {i}"
            );
        }
    }
}

/// Coalescing covers every accessed byte with line-aligned, deduplicated
/// transactions.
#[test]
fn coalesce_covers_all_bytes() {
    for case in 0..256u64 {
        let mut rng = Rng::seed_from_u64(0xC0A1_0000 + case);
        let n_accesses = rng.gen_range_usize(1, 33);
        let lane_accesses: Vec<LaneAccess> = (0..n_accesses)
            .map(|lane| LaneAccess {
                lane: lane as u32,
                addr: Addr::new(rng.gen_range_u64(0, 4096) * 4),
                width: if rng.gen_bool() { Width::W8 } else { Width::W4 },
            })
            .collect();
        let lines = coalesce(&lane_accesses, 128);
        // Sorted, unique, aligned.
        for w in lines.windows(2) {
            assert!(w[0] < w[1], "case {case}");
        }
        for l in &lines {
            assert!(l.is_aligned(128), "case {case}");
        }
        // Coverage of every accessed byte.
        for a in &lane_accesses {
            for b in 0..a.width.bytes() {
                let line = (a.addr + b).align_down(128);
                assert!(
                    lines.contains(&line),
                    "case {case}: byte {} uncovered",
                    (a.addr + b).get()
                );
            }
        }
        // Minimality: every returned line is touched by some access.
        for line in &lines {
            let touched = lane_accesses
                .iter()
                .any(|a| (0..a.width.bytes()).any(|b| (a.addr + b).align_down(128) == *line));
            assert!(
                touched,
                "case {case}: line {line} returned but never accessed"
            );
        }
    }
}
