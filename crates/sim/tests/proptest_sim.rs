//! Property-based tests of the timing simulator: functional results must be
//! independent of timing configuration, and no configuration may deadlock.

use gpu_isa::{CmpOp, KernelBuilder, Launch, LaneAccess, Special, Width};
use gpu_sim::{coalesce, Gpu, GpuConfig, SchedPolicy};
use gpu_types::Addr;
use proptest::prelude::*;

fn scaled_config(
    num_sms: usize,
    with_l1: bool,
    with_l2: bool,
    sched: SchedPolicy,
    issue_width: usize,
) -> GpuConfig {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.num_sms = num_sms;
    cfg.num_partitions = 2;
    cfg.scheduler = sched;
    cfg.issue_width = issue_width;
    if !with_l1 {
        cfg.l1 = None;
    }
    if !with_l2 {
        cfg.l2 = None;
    }
    cfg
}

fn saxpy_kernel() -> gpu_isa::Kernel {
    let mut b = KernelBuilder::new("saxpy");
    let x = b.param(0);
    let y = b.param(1);
    let n = b.param(2);
    let gtid = b.special(Special::GlobalTid);
    let p = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(p, |b| {
        let off = b.shl(gtid, 2);
        let xa = b.add(x, off);
        let ya = b.add(y, off);
        let xv = b.ld_global(Width::W4, xa, 0);
        let yv = b.ld_global(Width::W4, ya, 0);
        let t = b.mul(xv, 3);
        let s = b.add(t, yv);
        b.st_global(Width::W4, ya, 0, s);
    });
    b.exit();
    b.build().expect("valid kernel")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Functional results are identical across machine shapes, schedulers
    /// and cache configurations — timing never changes architectural state.
    #[test]
    fn results_independent_of_timing_config(
        n in 1u64..600,
        block_exp in 5u32..9, // 32..256
        num_sms in 1usize..5,
        with_l1 in any::<bool>(),
        with_l2 in any::<bool>(),
        gto in any::<bool>(),
        issue_width in 1usize..3,
    ) {
        let block = 1u32 << block_exp;
        let sched = if gto { SchedPolicy::Gto } else { SchedPolicy::Lrr };
        let cfg = scaled_config(num_sms, with_l1, with_l2, sched, issue_width);
        let mut gpu = Gpu::new(cfg);
        let x = gpu.alloc(4 * n, 128);
        let y = gpu.alloc(4 * n, 128);
        for i in 0..n {
            gpu.device_mut().write_u32(x + 4 * i, i as u32);
            gpu.device_mut().write_u32(y + 4 * i, 7);
        }
        let grid = (n as u32).div_ceil(block);
        gpu.launch(saxpy_kernel(), Launch::new(grid, block, vec![x.get(), y.get(), n]))
            .expect("launch");
        let summary = gpu.run(50_000_000).expect("no deadlock within bound");
        for i in 0..n {
            prop_assert_eq!(gpu.device().read_u32(y + 4 * i), 3 * i as u32 + 7);
        }
        prop_assert!(summary.cycles > 0);
        prop_assert_eq!(summary.ctas, grid as u64);
    }

    /// Tiny queues everywhere must back-pressure, not deadlock or drop
    /// requests.
    #[test]
    fn minimal_queues_never_deadlock(
        n in 1u64..300,
        miss_q in 1usize..3,
        icnt_q in 1usize..3,
        rop_q in 1usize..3,
        dram_q in 1usize..3,
    ) {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 2;
        cfg.num_partitions = 2;
        if let Some(l1) = cfg.l1.as_mut() {
            l1.miss_queue = miss_q;
            l1.mshr.entries = 2;
            l1.mshr.max_merged = 1;
        }
        cfg.icnt.output_queue = icnt_q;
        cfg.rop_queue = rop_q;
        if let Some(l2) = cfg.l2.as_mut() {
            l2.input_queue = 1;
            l2.mshr.entries = 2;
            l2.mshr.max_merged = 1;
        }
        cfg.dram.queue_capacity = dram_q;
        let mut gpu = Gpu::new(cfg);
        let x = gpu.alloc(4 * n, 128);
        let y = gpu.alloc(4 * n, 128);
        for i in 0..n {
            gpu.device_mut().write_u32(x + 4 * i, 2);
            gpu.device_mut().write_u32(y + 4 * i, i as u32);
        }
        let grid = (n as u32).div_ceil(64);
        gpu.launch(saxpy_kernel(), Launch::new(grid, 64, vec![x.get(), y.get(), n]))
            .expect("launch");
        gpu.run(50_000_000).expect("no deadlock under minimal queues");
        for i in 0..n {
            prop_assert_eq!(gpu.device().read_u32(y + 4 * i), 6 + i as u32);
        }
    }

    /// Coalescing covers every accessed byte with line-aligned, deduplicated
    /// transactions.
    #[test]
    fn coalesce_covers_all_bytes(
        accesses in proptest::collection::vec((0u64..4096, any::<bool>()), 1..33),
    ) {
        let lane_accesses: Vec<LaneAccess> = accesses
            .iter()
            .enumerate()
            .map(|(lane, &(a, wide))| LaneAccess {
                lane: lane as u32,
                addr: Addr::new(a * 4),
                width: if wide { Width::W8 } else { Width::W4 },
            })
            .collect();
        let lines = coalesce(&lane_accesses, 128);
        // Sorted, unique, aligned.
        for w in lines.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for l in &lines {
            prop_assert!(l.is_aligned(128));
        }
        // Coverage of every accessed byte.
        for a in &lane_accesses {
            for b in 0..a.width.bytes() {
                let line = (a.addr + b).align_down(128);
                prop_assert!(lines.contains(&line), "byte {} uncovered", (a.addr + b).get());
            }
        }
        // Minimality: every returned line is touched by some access.
        for line in &lines {
            let touched = lane_accesses.iter().any(|a| {
                (0..a.width.bytes()).any(|b| (a.addr + b).align_down(128) == *line)
            });
            prop_assert!(touched, "line {line} returned but never accessed");
        }
    }
}
