//! Interconnection-network model for the `gpu-latency` simulator.
//!
//! A GPU's SMs talk to its memory partitions over an on-chip network; in
//! GF100-class parts this is a crossbar. [`Crossbar`] models one direction of
//! such a network (instantiate it twice: request network SM→partition, reply
//! network partition→SM) with:
//!
//! - a fixed zero-load traversal latency,
//! - finite per-destination output queues, and
//! - per-cycle injection/ejection bandwidth limits.
//!
//! Contention is not modeled with routers and virtual channels; it *emerges*
//! from the finite queues and bandwidth limits, which is the level of detail
//! the paper's latency components need: time a request spends queued between
//! the L1 and the network is `L1toICNT`, and time inside the network plus in
//! the partition input queue is `ICNTtoROP`.
//!
//! # Examples
//!
//! ```
//! use gpu_icnt::{Crossbar, IcntConfig};
//! use gpu_types::Cycle;
//!
//! let mut xbar: Crossbar<&str> = Crossbar::new(2, 2, IcntConfig {
//!     latency: 8,
//!     output_queue: 4,
//!     inject_per_src: 1,
//!     eject_per_dst: 1,
//! });
//! let now = Cycle::new(0);
//! xbar.begin_cycle();
//! xbar.try_inject(0, 1, "pkt", now).unwrap();
//! assert_eq!(xbar.eject(1, Cycle::new(7)), None);     // still in flight
//! assert_eq!(xbar.eject(1, Cycle::new(8)), Some("pkt"));
//! ```

use gpu_types::{Cycle, DelayQueue};

/// Crossbar configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcntConfig {
    /// Zero-load traversal latency in cycles.
    pub latency: u64,
    /// Per-destination queue capacity (slots occupied during traversal and
    /// while awaiting ejection).
    pub output_queue: usize,
    /// Packets each source may inject per cycle.
    pub inject_per_src: usize,
    /// Packets each destination may eject per cycle.
    pub eject_per_dst: usize,
}

/// Aggregate crossbar statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcntStats {
    /// Packets accepted.
    pub injected: u64,
    /// Packets delivered.
    pub ejected: u64,
    /// Injection attempts rejected by a full queue or bandwidth limit.
    pub inject_stalls: u64,
}

/// One direction of an SM↔partition crossbar network.
#[derive(Debug)]
pub struct Crossbar<T> {
    config: IcntConfig,
    sources: usize,
    queues: Vec<DelayQueue<T>>,
    injected_this_cycle: Vec<usize>,
    ejected_this_cycle: Vec<usize>,
    stats: IcntStats,
}

impl<T> Crossbar<T> {
    /// Creates a crossbar with `sources` injection ports and `dests`
    /// ejection ports.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or bandwidth/queue parameter is zero.
    pub fn new(sources: usize, dests: usize, config: IcntConfig) -> Self {
        assert!(
            sources > 0 && dests > 0,
            "crossbar dimensions must be positive"
        );
        assert!(
            config.inject_per_src > 0 && config.eject_per_dst > 0,
            "bandwidth limits must be positive"
        );
        Crossbar {
            config,
            sources,
            queues: (0..dests)
                .map(|_| DelayQueue::new(config.output_queue, config.latency))
                .collect(),
            injected_this_cycle: vec![0; sources],
            ejected_this_cycle: vec![0; dests],
            stats: IcntStats::default(),
        }
    }

    /// Number of injection ports.
    pub fn sources(&self) -> usize {
        self.sources
    }

    /// Number of ejection ports.
    pub fn dests(&self) -> usize {
        self.queues.len()
    }

    /// The configuration.
    pub fn config(&self) -> &IcntConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> IcntStats {
        self.stats
    }

    /// Resets per-cycle bandwidth accounting; call once at the top of every
    /// simulated cycle.
    pub fn begin_cycle(&mut self) {
        self.injected_this_cycle.iter_mut().for_each(|c| *c = 0);
        self.ejected_this_cycle.iter_mut().for_each(|c| *c = 0);
    }

    /// Returns `true` if `src` may inject toward `dst` this cycle (bandwidth
    /// and queue space permitting).
    pub fn can_inject(&self, src: usize, dst: usize) -> bool {
        self.injected_this_cycle[src] < self.config.inject_per_src && !self.queues[dst].is_full()
    }

    /// Attempts to inject `item` from `src` toward `dst` at time `now`.
    ///
    /// # Errors
    ///
    /// Returns `item` back if the source's per-cycle bandwidth is spent or
    /// the destination queue is full; the caller must retry next cycle
    /// (back-pressure).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn try_inject(&mut self, src: usize, dst: usize, item: T, now: Cycle) -> Result<(), T> {
        if self.injected_this_cycle[src] >= self.config.inject_per_src {
            self.stats.inject_stalls += 1;
            return Err(item);
        }
        match self.queues[dst].push(now, item) {
            Ok(()) => {
                self.injected_this_cycle[src] += 1;
                self.stats.injected += 1;
                Ok(())
            }
            Err(e) => {
                self.stats.inject_stalls += 1;
                Err(e.into_inner())
            }
        }
    }

    /// Ejects the next delivered packet at `dst`, if its traversal latency
    /// has elapsed and ejection bandwidth remains this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn eject(&mut self, dst: usize, now: Cycle) -> Option<T> {
        if self.ejected_this_cycle[dst] >= self.config.eject_per_dst {
            return None;
        }
        let item = self.queues[dst].pop_ready(now)?;
        self.ejected_this_cycle[dst] += 1;
        self.stats.ejected += 1;
        Some(item)
    }

    /// Peeks at the next deliverable packet at `dst` without consuming
    /// bandwidth.
    pub fn peek(&self, dst: usize, now: Cycle) -> Option<&T> {
        self.queues[dst].front_ready(now)
    }

    /// Splits the crossbar into one independently borrowable ejection port
    /// per destination, so a parallel tick stage can drain every port
    /// concurrently. Each port owns its destination's queue and bandwidth
    /// counter; only the shared [`IcntStats::ejected`] tally is deferred —
    /// the caller must sum [`EjectPort::delivered`] back via
    /// [`Crossbar::credit_ejected`] after the concurrent stage (a plain sum,
    /// so the tally is independent of completion order).
    pub fn eject_ports(&mut self) -> Vec<EjectPort<'_, T>> {
        let eject_per_dst = self.config.eject_per_dst;
        self.queues
            .iter_mut()
            .zip(self.ejected_this_cycle.iter_mut())
            .map(|(queue, ejected)| EjectPort {
                queue,
                ejected,
                eject_per_dst,
                delivered: 0,
            })
            .collect()
    }

    /// Folds per-port delivery counts from a concurrent ejection stage back
    /// into [`IcntStats::ejected`].
    pub fn credit_ejected(&mut self, n: u64) {
        self.stats.ejected += n;
    }

    /// Total packets currently inside the network.
    pub fn in_flight(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Returns `true` if nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight() == 0
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes the in-flight packets (per destination, with their absolute
    /// ready times) and the accumulated statistics. The per-cycle bandwidth
    /// counters are *not* serialized: snapshots are taken at cycle
    /// boundaries, where [`Crossbar::begin_cycle`] resets them anyway.
    /// The packet payload is caller-defined, hence the encode callback.
    pub fn encode_state_with(
        &self,
        e: &mut gpu_snapshot::Encoder,
        mut enc: impl FnMut(&T, &mut gpu_snapshot::Encoder),
    ) {
        e.usize(self.queues.len());
        for q in &self.queues {
            e.usize(q.len());
            for (ready_at, item) in q.entries() {
                e.u64(ready_at.get());
                enc(item, e);
            }
        }
        e.u64(self.stats.injected);
        e.u64(self.stats.ejected);
        e.u64(self.stats.inject_stalls);
    }

    /// Replaces this crossbar's in-flight packets and statistics with a
    /// decoded checkpoint, using `dec` to read each packet.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose destination count or queue occupancy exceeds
    /// this crossbar's configuration, and propagates decoder errors.
    pub fn restore_state_with(
        &mut self,
        d: &mut gpu_snapshot::Decoder,
        mut dec: impl FnMut(&mut gpu_snapshot::Decoder) -> Result<T, gpu_snapshot::SnapshotError>,
    ) -> Result<(), gpu_snapshot::SnapshotError> {
        use gpu_snapshot::SnapshotError::InvalidValue;
        if d.usize()? != self.queues.len() {
            return Err(InvalidValue("crossbar destination count mismatch"));
        }
        for q in &mut self.queues {
            *q = DelayQueue::new(self.config.output_queue, self.config.latency);
            for _ in 0..d.usize()? {
                let ready_at = Cycle::new(d.u64()?);
                let item = dec(d)?;
                q.push_with_ready_at(ready_at, item)
                    .map_err(|_| InvalidValue("crossbar queue occupancy exceeds capacity"))?;
            }
        }
        self.stats.injected = d.u64()?;
        self.stats.ejected = d.u64()?;
        self.stats.inject_stalls = d.u64()?;
        Ok(())
    }
}

/// One destination's ejection port, split out of a [`Crossbar`] by
/// [`Crossbar::eject_ports`]. Ejection through a port is identical to
/// [`Crossbar::eject`] on that destination, except the shared statistics
/// tally is deferred to [`EjectPort::delivered`].
#[derive(Debug)]
pub struct EjectPort<'a, T> {
    queue: &'a mut DelayQueue<T>,
    ejected: &'a mut usize,
    eject_per_dst: usize,
    delivered: u64,
}

impl<T> EjectPort<'_, T> {
    /// Ejects the next delivered packet, if its traversal latency has
    /// elapsed and ejection bandwidth remains this cycle.
    pub fn eject(&mut self, now: Cycle) -> Option<T> {
        if *self.ejected >= self.eject_per_dst {
            return None;
        }
        let item = self.queue.pop_ready(now)?;
        *self.ejected += 1;
        self.delivered += 1;
        Some(item)
    }

    /// Packets this port delivered since it was split off.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar(latency: u64, queue: usize) -> Crossbar<u32> {
        Crossbar::new(
            2,
            2,
            IcntConfig {
                latency,
                output_queue: queue,
                inject_per_src: 1,
                eject_per_dst: 1,
            },
        )
    }

    #[test]
    fn traversal_takes_latency_cycles() {
        let mut x = xbar(10, 8);
        x.begin_cycle();
        x.try_inject(0, 1, 42, Cycle::new(100)).unwrap();
        assert_eq!(x.eject(1, Cycle::new(109)), None);
        assert_eq!(x.peek(1, Cycle::new(110)), Some(&42));
        assert_eq!(x.eject(1, Cycle::new(110)), Some(42));
        assert!(x.is_idle());
    }

    #[test]
    fn injection_bandwidth_is_per_source_per_cycle() {
        let mut x = xbar(1, 8);
        x.begin_cycle();
        assert!(x.can_inject(0, 0));
        x.try_inject(0, 0, 1, Cycle::new(0)).unwrap();
        assert!(!x.can_inject(0, 0), "source 0 spent its slot");
        assert_eq!(x.try_inject(0, 1, 2, Cycle::new(0)), Err(2));
        // Source 1 still has bandwidth.
        x.try_inject(1, 0, 3, Cycle::new(0)).unwrap();
        // Next cycle the limit resets.
        x.begin_cycle();
        x.try_inject(0, 1, 2, Cycle::new(1)).unwrap();
        assert_eq!(x.stats().inject_stalls, 1);
        assert_eq!(x.stats().injected, 3);
    }

    #[test]
    fn ejection_bandwidth_limits_drain_rate() {
        let mut x = xbar(0, 8);
        x.begin_cycle();
        x.try_inject(0, 0, 1, Cycle::new(0)).unwrap();
        x.try_inject(1, 0, 2, Cycle::new(0)).unwrap();
        assert_eq!(x.eject(0, Cycle::new(0)), Some(1));
        assert_eq!(x.eject(0, Cycle::new(0)), None, "one ejection per cycle");
        x.begin_cycle();
        assert_eq!(x.eject(0, Cycle::new(1)), Some(2));
    }

    #[test]
    fn full_queue_backpressures() {
        let mut x = xbar(100, 2);
        x.begin_cycle();
        x.try_inject(0, 0, 1, Cycle::new(0)).unwrap();
        x.try_inject(1, 0, 2, Cycle::new(0)).unwrap();
        x.begin_cycle();
        assert!(!x.can_inject(0, 0));
        assert_eq!(x.try_inject(0, 0, 3, Cycle::new(1)), Err(3));
        assert_eq!(x.in_flight(), 2);
    }

    #[test]
    fn contention_creates_queueing_delay() {
        // Two sources hammer one destination; with eject rate 1/cycle the
        // second packet of each cycle waits an extra cycle.
        let mut x = xbar(5, 16);
        x.begin_cycle();
        x.try_inject(0, 0, 10, Cycle::new(0)).unwrap();
        x.try_inject(1, 0, 11, Cycle::new(0)).unwrap();
        // Both arrive at cycle 5; only one ejects per cycle.
        assert_eq!(x.eject(0, Cycle::new(5)), Some(10));
        assert_eq!(x.eject(0, Cycle::new(5)), None);
        x.begin_cycle();
        assert_eq!(x.eject(0, Cycle::new(6)), Some(11));
        assert_eq!(x.stats().ejected, 2);
    }

    #[test]
    fn eject_ports_mirror_serial_ejection() {
        // Same traffic through both drain paths: per-port ejection must obey
        // the same latency and bandwidth rules and land on the same stats.
        let mut serial = xbar(5, 8);
        let mut split = xbar(5, 8);
        for x in [&mut serial, &mut split] {
            x.begin_cycle();
            x.try_inject(0, 0, 10, Cycle::new(0)).unwrap();
            x.try_inject(1, 1, 20, Cycle::new(0)).unwrap();
            x.begin_cycle();
            x.try_inject(0, 0, 11, Cycle::new(1)).unwrap();
            x.begin_cycle();
        }
        let now = Cycle::new(5);
        let a = (
            serial.eject(0, now),
            serial.eject(0, now),
            serial.eject(1, now),
        );
        let (b, credit) = {
            let mut ports = split.eject_ports();
            let b = (
                ports[0].eject(now),
                ports[0].eject(now),
                ports[1].eject(now),
            );
            (b, ports.iter().map(|p| p.delivered()).sum::<u64>())
        };
        split.credit_ejected(credit);
        assert_eq!(a, b);
        assert_eq!(a, (Some(10), None, Some(20)));
        assert_eq!(split.stats(), serial.stats());
        assert_eq!(split.in_flight(), serial.in_flight());
    }

    #[test]
    fn crossbar_codec_round_trips_in_flight_packets() {
        let mut x = xbar(10, 8);
        x.begin_cycle();
        x.try_inject(0, 1, 42, Cycle::new(100)).unwrap();
        x.try_inject(1, 0, 7, Cycle::new(100)).unwrap();
        x.begin_cycle();
        x.try_inject(0, 1, 43, Cycle::new(101)).unwrap();
        assert_eq!(x.try_inject(1, 1, 9, Cycle::new(101)), Ok(())); // 2nd src
        assert_eq!(x.try_inject(1, 1, 9, Cycle::new(101)), Err(9)); // stall

        let mut e = gpu_snapshot::Encoder::new();
        x.encode_state_with(&mut e, |item, e| e.u32(*item));
        let framed = e.finish();

        let mut restored = xbar(10, 8);
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        restored.restore_state_with(&mut d, |d| d.u32()).unwrap();
        d.expect_end().unwrap();

        assert_eq!(restored.stats(), x.stats());
        assert_eq!(restored.in_flight(), x.in_flight());
        // Re-encode equality.
        let mut e2 = gpu_snapshot::Encoder::new();
        restored.encode_state_with(&mut e2, |item, e| e.u32(*item));
        assert_eq!(e2.finish(), framed);
        // Delivery times survive the round trip exactly.
        restored.begin_cycle();
        assert_eq!(restored.eject(0, Cycle::new(110)), Some(7));
        assert_eq!(restored.eject(1, Cycle::new(110)), Some(42));
        restored.begin_cycle();
        assert_eq!(restored.eject(1, Cycle::new(110)), None, "not ready yet");
        assert_eq!(restored.eject(1, Cycle::new(111)), Some(43));
    }

    #[test]
    fn crossbar_restore_rejects_shape_mismatch() {
        let x = xbar(10, 8);
        let mut e = gpu_snapshot::Encoder::new();
        x.encode_state_with(&mut e, |item, e| e.u32(*item));
        let framed = e.finish();
        let mut wrong: Crossbar<u32> = Crossbar::new(
            2,
            3, // snapshot has 2 destinations
            IcntConfig {
                latency: 10,
                output_queue: 8,
                inject_per_src: 1,
                eject_per_dst: 1,
            },
        );
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        assert!(matches!(
            wrong.restore_state_with(&mut d, |d| d.u32()),
            Err(gpu_snapshot::SnapshotError::InvalidValue(_))
        ));
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_panic() {
        let _: Crossbar<u8> = Crossbar::new(
            0,
            1,
            IcntConfig {
                latency: 1,
                output_queue: 1,
                inject_per_src: 1,
                eject_per_dst: 1,
            },
        );
    }
}

#[cfg(test)]
mod conservation_tests {
    use super::*;

    /// Packet conservation under randomized traffic: everything injected is
    /// eventually ejected, exactly once, per destination, in FIFO order.
    #[test]
    fn randomized_traffic_conserves_packets() {
        // Deterministic LCG so the test needs no RNG dependency.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let sources = 4;
        let dests = 3;
        let mut x: Crossbar<(usize, u64)> = Crossbar::new(
            sources,
            dests,
            IcntConfig {
                latency: 12,
                output_queue: 6,
                inject_per_src: 1,
                eject_per_dst: 1,
            },
        );
        let mut seq = 0u64;
        let mut injected = vec![0u64; dests];
        let mut ejected: Vec<Vec<(usize, u64)>> = vec![Vec::new(); dests];
        let mut now = Cycle::ZERO;
        for _ in 0..2000 {
            x.begin_cycle();
            for src in 0..sources {
                if rand() % 3 == 0 {
                    let dst = (rand() % dests as u64) as usize;
                    if x.can_inject(src, dst) {
                        x.try_inject(src, dst, (dst, seq), now).unwrap();
                        injected[dst] += 1;
                        seq += 1;
                    }
                }
            }
            for (dst, sink) in ejected.iter_mut().enumerate() {
                if let Some(pkt) = x.eject(dst, now) {
                    sink.push(pkt);
                }
            }
            now.tick();
        }
        // Drain.
        while !x.is_idle() {
            x.begin_cycle();
            for (dst, sink) in ejected.iter_mut().enumerate() {
                if let Some(pkt) = x.eject(dst, now) {
                    sink.push(pkt);
                }
            }
            now.tick();
        }
        for dst in 0..dests {
            assert_eq!(ejected[dst].len() as u64, injected[dst], "dest {dst}");
            // Right destination and strictly increasing sequence (FIFO per
            // destination, since all injections happen in global seq order).
            for w in ejected[dst].windows(2) {
                assert!(w[0].1 < w[1].1, "FIFO violated at dest {dst}");
            }
            assert!(ejected[dst].iter().all(|p| p.0 == dst));
        }
        let stats = x.stats();
        assert_eq!(stats.injected, seq);
        assert_eq!(stats.ejected, seq);
    }
}
