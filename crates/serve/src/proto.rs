//! The newline-delimited JSON wire protocol.
//!
//! Requests are single JSON objects, one per line, with a `"cmd"` field:
//!
//! ```text
//! {"cmd":"submit","spec":{...},"watch":true}
//! {"cmd":"status","job":"00f3ab..."}
//! {"cmd":"watch","job":"00f3ab..."}
//! {"cmd":"cancel","job":"00f3ab..."}
//! {"cmd":"stats"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses are JSONL events; each request yields at least one line, and
//! `submit`/`watch` with streaming enabled yields `progress` events followed
//! by exactly one terminal `result`/`cancelled` line. Errors are themselves
//! events (`{"event":"error","code":...,"message":...}`) and never tear down
//! the connection: the daemon keeps reading the next line.

use std::io::{BufRead, ErrorKind, Read};

use gpu_trace::json::{escape_into, Value};

use crate::spec::{JobSpec, SpecError};

/// Hard cap on one request line. Anything longer is drained and answered
/// with a typed `oversized_request` error; the connection stays up.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; with `watch`, stream events until the terminal line.
    Submit {
        /// The validated job.
        spec: Box<JobSpec>,
        /// Stream progress + result instead of returning after `accepted`.
        watch: bool,
    },
    /// One-shot job state query.
    Status(u64),
    /// Attach to a job's event stream until it reaches a terminal state.
    Watch(u64),
    /// Cancel a queued or running job.
    Cancel(u64),
    /// Daemon-wide counters (dedup, execution, cache, recovery).
    Stats,
    /// Graceful shutdown of the daemon.
    Shutdown,
}

/// Why a request line could not be turned into a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The line was not valid JSON.
    BadJson(String),
    /// No `"cmd"` string field.
    MissingCmd,
    /// `"cmd"` named no known command.
    UnknownCmd(String),
    /// `submit` without a `"spec"` object.
    MissingSpec,
    /// A job-addressed command without a valid 16-hex `"job"` id.
    BadJobId(String),
    /// The spec itself was malformed.
    Spec(SpecError),
    /// The line exceeded [`MAX_REQUEST_BYTES`].
    Oversized(usize),
}

impl RequestError {
    /// Stable machine-readable code for the JSON error event.
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::BadJson(_) => "bad_json",
            RequestError::MissingCmd => "missing_cmd",
            RequestError::UnknownCmd(_) => "unknown_cmd",
            RequestError::MissingSpec => "missing_spec",
            RequestError::BadJobId(_) => "bad_job_id",
            RequestError::Spec(e) => e.code(),
            RequestError::Oversized(_) => "oversized_request",
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::BadJson(e) => write!(f, "request is not valid JSON: {e}"),
            RequestError::MissingCmd => write!(f, "request needs a \"cmd\" string"),
            RequestError::UnknownCmd(c) => write!(f, "unknown cmd {c:?}"),
            RequestError::MissingSpec => write!(f, "submit needs a \"spec\" object"),
            RequestError::BadJobId(j) => write!(f, "bad job id {j:?} (want 16 hex digits)"),
            RequestError::Spec(e) => write!(f, "{e}"),
            RequestError::Oversized(n) => {
                write!(f, "request of {n}+ bytes exceeds limit {MAX_REQUEST_BYTES}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Renders a job id the way every event spells it.
pub fn format_job_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a job id as spelled by [`format_job_id`].
pub fn parse_job_id(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

fn job_field(obj: &Value) -> Result<u64, RequestError> {
    let raw = obj
        .get("job")
        .and_then(Value::as_str)
        .ok_or_else(|| RequestError::BadJobId("<missing>".to_string()))?;
    parse_job_id(raw).ok_or_else(|| RequestError::BadJobId(raw.to_string()))
}

/// Parses one request line.
///
/// # Errors
///
/// Every malformed line maps to a typed [`RequestError`]; the caller answers
/// with an error event and keeps the connection alive.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let v = gpu_trace::json::parse(line).map_err(RequestError::BadJson)?;
    let cmd = v
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or(RequestError::MissingCmd)?;
    match cmd {
        "submit" => {
            let spec_v = v.get("spec").ok_or(RequestError::MissingSpec)?;
            let spec = JobSpec::parse(spec_v).map_err(RequestError::Spec)?;
            let watch = matches!(v.get("watch"), Some(Value::Bool(true)));
            Ok(Request::Submit {
                spec: Box::new(spec),
                watch,
            })
        }
        "status" => Ok(Request::Status(job_field(&v)?)),
        "watch" => Ok(Request::Watch(job_field(&v)?)),
        "cancel" => Ok(Request::Cancel(job_field(&v)?)),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(RequestError::UnknownCmd(other.to_string())),
    }
}

/// Builds an `error` event line (no trailing newline).
pub fn error_event(code: &str, message: &str) -> String {
    let mut out = String::from("{\"event\":\"error\",\"code\":");
    escape_into(&mut out, code);
    out.push_str(",\"message\":");
    escape_into(&mut out, message);
    out.push('}');
    out
}

/// Builds the `accepted` event answering a submit.
pub fn accepted_event(job: u64, state: &str, total: usize, deduped: bool) -> String {
    let mut out = String::from("{\"event\":\"accepted\",\"job\":");
    escape_into(&mut out, &format_job_id(job));
    out.push_str(",\"state\":");
    escape_into(&mut out, state);
    out.push_str(&format!(",\"points\":{total},\"deduped\":{deduped}}}"));
    out
}

/// Builds a `progress` event.
pub fn progress_event(job: u64, done: usize, total: usize) -> String {
    let mut out = String::from("{\"event\":\"progress\",\"job\":");
    escape_into(&mut out, &format_job_id(job));
    out.push_str(&format!(",\"done\":{done},\"total\":{total}}}"));
    out
}

/// Builds a `status` event.
pub fn status_event(job: u64, state: &str, done: usize, total: usize) -> String {
    let mut out = String::from("{\"event\":\"status\",\"job\":");
    escape_into(&mut out, &format_job_id(job));
    out.push_str(",\"state\":");
    escape_into(&mut out, state);
    out.push_str(&format!(",\"done\":{done},\"total\":{total}}}"));
    out
}

/// Builds the terminal `cancelled` event.
pub fn cancelled_event(job: u64) -> String {
    let mut out = String::from("{\"event\":\"cancelled\",\"job\":");
    escape_into(&mut out, &format_job_id(job));
    out.push('}');
    out
}

/// True when an event line ends a submit/watch stream: a terminal `result`
/// or `cancelled`, or an `error` (the request failed outright).
pub fn is_terminal_event(line: &str) -> bool {
    let Ok(v) = gpu_trace::json::parse(line) else {
        return true;
    };
    matches!(
        v.get("event").and_then(Value::as_str),
        Some("result") | Some("cancelled") | Some("error") | None
    )
}

/// Reads one `\n`-terminated line with a hard byte cap.
///
/// Returns `Ok(None)` on EOF. An overlong line is drained through its
/// newline and reported as `Some(Err(Oversized))`, so the caller can answer
/// with a typed error and keep serving the same connection.
///
/// # Errors
///
/// Only transport I/O failures propagate as `Err`.
pub fn read_line_capped<R: BufRead>(
    r: &mut R,
) -> std::io::Result<Option<Result<String, RequestError>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF: a final unterminated line still counts.
            if buf.is_empty() && !overflow {
                return Ok(None);
            }
            break;
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if !overflow {
            let room = MAX_REQUEST_BYTES.saturating_sub(buf.len());
            if take > room + 1 {
                overflow = true;
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        r.consume(take);
        if done {
            break;
        }
    }
    if overflow || buf.len() > MAX_REQUEST_BYTES {
        return Ok(Some(Err(RequestError::Oversized(MAX_REQUEST_BYTES))));
    }
    while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Some(Ok(s))),
        Err(_) => Ok(Some(Err(RequestError::BadJson(
            "request is not UTF-8".to_string(),
        )))),
    }
}

/// Reads capped lines from a reader, skipping blank lines, until EOF.
pub struct LineReader<R: BufRead> {
    inner: R,
}

impl<R: BufRead> LineReader<R> {
    /// Wraps a buffered reader.
    pub fn new(inner: R) -> Self {
        LineReader { inner }
    }

    /// Next non-blank line (or oversize/encoding error), `None` at EOF.
    ///
    /// # Errors
    ///
    /// Propagates transport I/O errors.
    pub fn next_line(&mut self) -> std::io::Result<Option<Result<String, RequestError>>> {
        loop {
            match read_line_capped(&mut self.inner)? {
                None => return Ok(None),
                Some(Ok(line)) if line.trim().is_empty() => continue,
                Some(other) => return Ok(Some(other)),
            }
        }
    }

    /// The wrapped reader (for handing the stream back).
    pub fn into_inner(self) -> R {
        self.inner
    }
}

/// Marker impl so generic bounds can say "any bidirectional byte stream".
pub trait Transport: Read + std::io::Write {}
impl<T: Read + std::io::Write> Transport for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_submit_with_watch() {
        let req = parse_request(
            "{\"cmd\":\"submit\",\"watch\":true,\"spec\":{\"preset\":\"gf106\",\
             \"sweep\":{\"footprints\":[4096],\"strides\":[128]}}}",
        )
        .unwrap();
        match req {
            Request::Submit { watch, .. } => assert!(watch),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn request_errors_are_typed() {
        assert_eq!(parse_request("not json").unwrap_err().code(), "bad_json");
        assert_eq!(parse_request("{}").unwrap_err().code(), "missing_cmd");
        assert_eq!(
            parse_request("{\"cmd\":\"fly\"}").unwrap_err().code(),
            "unknown_cmd"
        );
        assert_eq!(
            parse_request("{\"cmd\":\"submit\"}").unwrap_err().code(),
            "missing_spec"
        );
        assert_eq!(
            parse_request("{\"cmd\":\"status\",\"job\":\"xyz\"}")
                .unwrap_err()
                .code(),
            "bad_job_id"
        );
        assert_eq!(
            parse_request(
                "{\"cmd\":\"submit\",\"spec\":{\"preset\":\"nope\",\
                 \"sweep\":{\"footprints\":[4096],\"strides\":[128]}}}"
            )
            .unwrap_err()
            .code(),
            "unknown_preset"
        );
    }

    #[test]
    fn job_id_roundtrip() {
        let id = 0x00ab_cdef_1234_5678u64;
        assert_eq!(parse_job_id(&format_job_id(id)), Some(id));
        assert_eq!(parse_job_id("123"), None);
    }

    #[test]
    fn events_are_valid_json() {
        for line in [
            error_event("bad_json", "oops \"quoted\""),
            accepted_event(42, "queued", 10, false),
            progress_event(42, 3, 10),
            status_event(42, "running", 3, 10),
            cancelled_event(42),
        ] {
            let v = gpu_trace::json::parse(&line).unwrap();
            assert!(v.get("event").is_some(), "{line}");
        }
    }

    #[test]
    fn terminal_detection() {
        assert!(is_terminal_event(&cancelled_event(1)));
        assert!(is_terminal_event(&error_event("x", "y")));
        assert!(is_terminal_event("{\"event\":\"result\",\"job\":\"0\"}"));
        assert!(!is_terminal_event(&progress_event(1, 0, 1)));
        assert!(!is_terminal_event(&accepted_event(1, "queued", 1, false)));
    }

    #[test]
    fn oversized_line_is_drained_not_fatal() {
        let big = "x".repeat(MAX_REQUEST_BYTES + 100);
        let input = format!("{big}\n{{\"cmd\":\"stats\"}}\n");
        let mut r = LineReader::new(BufReader::new(input.as_bytes()));
        let first = r.next_line().unwrap().unwrap().unwrap_err();
        assert_eq!(first.code(), "oversized_request");
        // The connection survives: the next line parses normally.
        let second = r.next_line().unwrap().unwrap().unwrap();
        assert_eq!(parse_request(&second).unwrap(), Request::Stats);
        assert!(r.next_line().unwrap().is_none());
    }

    #[test]
    fn capped_reader_handles_eof_without_newline() {
        let mut r = BufReader::new("{\"cmd\":\"stats\"}".as_bytes());
        let line = read_line_capped(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(line, "{\"cmd\":\"stats\"}");
        assert!(read_line_capped(&mut r).unwrap().is_none());
    }
}
