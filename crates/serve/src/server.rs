//! The job daemon: dedup, scheduling, streaming, and crash recovery.
//!
//! One [`Server`] owns three maps behind a single mutex — jobs by id,
//! chase points by cache key, and a FIFO work queue — plus a bounded worker
//! pool sized to the `LATENCY_THREADS`/tick-thread budget. Submissions
//! dedup at two levels:
//!
//! * **job level** — an identical spec (same [`JobSpec::job_id`]) joins the
//!   existing job instead of spawning a second one; every attached client
//!   receives the same result line, byte for byte;
//! * **point level** — distinct jobs sharing a grid point (same
//!   `latency_core::chase_key`) wait on one in-flight execution, and the
//!   measurement fans out to all of them.
//!
//! Durability: each accepted job persists its canonical spec under
//! `state/jobs/<id>/spec.json` before any work runs, terminal results land
//! atomically in `result.json`, and BFS jobs checkpoint the whole GPU into
//! `ckpt/` via [`Gpu::run_checkpointed`]. On boot, [`Server::recover`]
//! rescans the tree: finished jobs reload their result lines, unfinished
//! ones re-enqueue (BFS resuming from the newest checkpoint), so a kill -9
//! mid-job costs at most one checkpoint interval of re-simulation and the
//! final result is bit-identical to an uninterrupted run.

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Read, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use gpu_sim::{CheckpointPolicy, Gpu, GpuConfig};
use gpu_snapshot::{store, StableHasher};
use gpu_trace::json::escape_into;
use gpu_workloads::{bfs, Graph};
use latency_core::{chase_key, measure_chase, ChaseMeasurement, ChaseParams};

use crate::proto::{
    accepted_event, cancelled_event, error_event, format_job_id, parse_request, progress_event,
    status_event, LineReader, Request,
};
use crate::spec::{JobKind, JobSpec, SPEC_VERSION};

/// How the daemon is laid out on disk and how wide its pool is.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root of the persistent state: `cache/`, `jobs/`, `serve.addr`.
    pub state_dir: PathBuf,
    /// Worker threads executing grid points and BFS jobs.
    pub workers: usize,
}

impl ServerConfig {
    /// Config with the default pool width: the `LATENCY_THREADS` budget
    /// divided by the per-simulation tick threads, so `workers × tick
    /// threads` never oversubscribes the host.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            state_dir: state_dir.into(),
            workers: latency_core::grid_worker_count(),
        }
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobPhase {
    fn as_str(self) -> &'static str {
        match self {
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

/// A subscriber receives event lines; the flag marks the terminal one.
type StreamMsg = (String, bool);

struct Job {
    spec: JobSpec,
    phase: JobPhase,
    total: usize,
    done: usize,
    results: Vec<Option<ChaseMeasurement>>,
    result_line: Option<String>,
    subscribers: Vec<Sender<StreamMsg>>,
}

/// A chase point is executed at most once per daemon lifetime; jobs arriving
/// while it is in flight just add themselves as waiters.
enum PointState {
    InFlight(Vec<(u64, usize)>),
    Done(ChaseMeasurement),
}

enum Task {
    Point {
        key: u64,
        config: Arc<GpuConfig>,
        params: ChaseParams,
    },
    Bfs {
        job: u64,
    },
}

#[derive(Default)]
struct Inner {
    jobs: HashMap<u64, Job>,
    points: HashMap<u64, PointState>,
    queue: VecDeque<Task>,
}

/// Daemon-wide monotonic counters, exposed by the `stats` command. All
/// simulation-pure: none depend on wall-clock time.
#[derive(Default)]
struct Counters {
    jobs_submitted: AtomicU64,
    jobs_deduped: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_recovered: AtomicU64,
    points_requested: AtomicU64,
    points_executed: AtomicU64,
    points_deduped: AtomicU64,
}

/// What a submit produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// The job's deterministic id.
    pub job: u64,
    /// `"running"` or `"done"` (everything already cached / deduped onto a
    /// finished job).
    pub state: &'static str,
    /// Grid points (1 for BFS).
    pub total: usize,
    /// True when this submit joined an existing job instead of creating one.
    pub deduped: bool,
}

/// Result of attaching to a job's event stream.
pub enum WatchAttach {
    /// No such job.
    Unknown,
    /// The job already ended; here is its terminal line.
    Terminal(String),
    /// The job is live: an initial status line plus the event stream.
    Stream(String, Receiver<StreamMsg>),
}

/// The daemon state shared by every connection and worker.
pub struct Server {
    cfg: ServerConfig,
    inner: Mutex<Inner>,
    work: Condvar,
    counters: Counters,
    shutdown: AtomicBool,
}

impl Server {
    /// Creates the on-disk layout and points the process-global chase cache
    /// at `state/cache`, so every worker's `measure_chase` goes through the
    /// content-addressed store.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(cfg: ServerConfig) -> std::io::Result<Arc<Server>> {
        std::fs::create_dir_all(cfg.state_dir.join("jobs"))?;
        std::fs::create_dir_all(cfg.state_dir.join("cache"))?;
        latency_core::set_cache_dir(cfg.state_dir.join("cache"));
        Ok(Arc::new(Server {
            cfg,
            inner: Mutex::new(Inner::default()),
            work: Condvar::new(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
        }))
    }

    fn jobs_root(&self) -> PathBuf {
        self.cfg.state_dir.join("jobs")
    }

    fn job_dir(&self, id: u64) -> PathBuf {
        self.jobs_root().join(format_job_id(id))
    }

    /// Scans `state/jobs` on boot: jobs with a persisted result reload it,
    /// unfinished jobs re-enqueue (sweeps rebuild from the chase cache, BFS
    /// resumes from its newest checkpoint). Returns how many jobs were
    /// re-enqueued.
    pub fn recover(self: &Arc<Self>) -> usize {
        let Ok(entries) = std::fs::read_dir(self.jobs_root()) else {
            return 0;
        };
        let mut resumed = 0;
        for entry in entries.flatten() {
            let dir = entry.path();
            let Some(id) = entry
                .file_name()
                .to_str()
                .and_then(crate::proto::parse_job_id)
            else {
                continue;
            };
            let Ok(spec_text) = std::fs::read_to_string(dir.join("spec.json")) else {
                continue;
            };
            let Ok(spec) = JobSpec::parse_str(&spec_text) else {
                continue;
            };
            if spec.job_id() != id {
                // A corrupted or hand-edited spec must not be served under
                // the old identity.
                continue;
            }
            if let Ok(line) = std::fs::read_to_string(dir.join("result.json")) {
                let total = match &spec.kind {
                    JobKind::Sweep { .. } => spec.kind.sweep_points().len(),
                    JobKind::Bfs { .. } => 1,
                };
                let mut inner = self.inner.lock().unwrap();
                inner.jobs.insert(
                    id,
                    Job {
                        spec,
                        phase: JobPhase::Done,
                        total,
                        done: total,
                        results: Vec::new(),
                        result_line: Some(line.trim_end().to_string()),
                        subscribers: Vec::new(),
                    },
                );
                continue;
            }
            let Ok(config) = spec.build_config() else {
                continue;
            };
            self.counters.jobs_recovered.fetch_add(1, Ordering::Relaxed);
            if self.admit(spec, config, false).is_ok() {
                resumed += 1;
            }
        }
        resumed
    }

    /// Submits a job, deduping against live and finished ones.
    ///
    /// # Errors
    ///
    /// Propagates the spec-persistence write failure (the job is not
    /// admitted in that case).
    pub fn submit(&self, spec: JobSpec, config: GpuConfig) -> std::io::Result<Submission> {
        self.admit(spec, config, true)
    }

    fn admit(
        &self,
        spec: JobSpec,
        config: GpuConfig,
        persist: bool,
    ) -> std::io::Result<Submission> {
        let id = spec.job_id();
        let config = Arc::new(config);
        let mut inner = self.inner.lock().unwrap();
        if let Some(job) = inner.jobs.get(&id) {
            match job.phase {
                JobPhase::Running | JobPhase::Done => {
                    self.counters.jobs_deduped.fetch_add(1, Ordering::Relaxed);
                    return Ok(Submission {
                        job: id,
                        state: job.phase.as_str(),
                        total: job.total,
                        deduped: true,
                    });
                }
                // A failed or cancelled job may be resubmitted fresh.
                JobPhase::Failed | JobPhase::Cancelled => {
                    inner.jobs.remove(&id);
                }
            }
        }
        if persist {
            self.counters.jobs_submitted.fetch_add(1, Ordering::Relaxed);
            let dir = self.job_dir(id);
            std::fs::create_dir_all(&dir)?;
            store::write_atomic(&dir.join("spec.json"), spec.canonical_json().as_bytes())?;
        }
        let points = spec.kind.sweep_points();
        let is_sweep = matches!(spec.kind, JobKind::Sweep { .. });
        let total = if is_sweep { points.len() } else { 1 };
        inner.jobs.insert(
            id,
            Job {
                spec,
                phase: JobPhase::Running,
                total,
                done: 0,
                results: vec![None; total],
                result_line: None,
                subscribers: Vec::new(),
            },
        );
        if is_sweep {
            self.counters
                .points_requested
                .fetch_add(total as u64, Ordering::Relaxed);
            let mut ready = Vec::new();
            for (idx, params) in points.iter().enumerate() {
                let key = chase_key(&config, params);
                match inner.points.get_mut(&key) {
                    Some(PointState::Done(m)) => {
                        self.counters.points_deduped.fetch_add(1, Ordering::Relaxed);
                        ready.push((idx, *m));
                    }
                    Some(PointState::InFlight(waiters)) => {
                        self.counters.points_deduped.fetch_add(1, Ordering::Relaxed);
                        waiters.push((id, idx));
                    }
                    None => {
                        inner
                            .points
                            .insert(key, PointState::InFlight(vec![(id, idx)]));
                        inner.queue.push_back(Task::Point {
                            key,
                            config: Arc::clone(&config),
                            params: *params,
                        });
                        self.work.notify_one();
                    }
                }
            }
            let mut finalize = false;
            for (idx, m) in ready {
                finalize |= self.record_point(&mut inner, id, idx, &m);
            }
            if finalize {
                self.finalize_sweep(&mut inner, id);
            }
        } else {
            inner.queue.push_back(Task::Bfs { job: id });
            self.work.notify_one();
        }
        let state = inner.jobs[&id].phase.as_str();
        Ok(Submission {
            job: id,
            state,
            total,
            deduped: false,
        })
    }

    /// Records one measured point into a job; true when the job is now
    /// complete and needs finalizing.
    fn record_point(
        &self,
        inner: &mut Inner,
        job_id: u64,
        idx: usize,
        m: &ChaseMeasurement,
    ) -> bool {
        let Some(job) = inner.jobs.get_mut(&job_id) else {
            return false;
        };
        if job.phase != JobPhase::Running || job.results[idx].is_some() {
            return false;
        }
        job.results[idx] = Some(*m);
        job.done += 1;
        if job.done < job.total {
            if !job.subscribers.is_empty() {
                let line = progress_event(job_id, job.done, job.total);
                job.subscribers
                    .retain(|s| s.send((line.clone(), false)).is_ok());
            }
            false
        } else {
            true
        }
    }

    /// Builds, persists, and fans out a completed sweep's result line.
    fn finalize_sweep(&self, inner: &mut Inner, job_id: u64) {
        let job = inner.jobs.get_mut(&job_id).expect("finalizing unknown job");
        let line = sweep_result_line(job_id, &job.spec, &job.results);
        self.finish_job(job_id, job, line, JobPhase::Done, true);
    }

    /// Common terminal transition: persist (for successes), notify, count.
    fn finish_job(&self, job_id: u64, job: &mut Job, line: String, phase: JobPhase, persist: bool) {
        if persist {
            let path = self.job_dir(job_id).join("result.json");
            if let Err(e) = store::write_atomic(&path, line.as_bytes()) {
                eprintln!("serve: failed to persist {}: {e}", path.display());
            }
        }
        job.phase = phase;
        job.result_line = Some(line.clone());
        for sub in job.subscribers.drain(..) {
            let _ = sub.send((line.clone(), true));
        }
        let counter = match phase {
            JobPhase::Done => &self.counters.jobs_completed,
            JobPhase::Failed => &self.counters.jobs_failed,
            JobPhase::Cancelled => &self.counters.jobs_cancelled,
            JobPhase::Running => unreachable!("finish_job to a live phase"),
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn fail_job(&self, inner: &mut Inner, job_id: u64, message: &str) {
        let Some(job) = inner.jobs.get_mut(&job_id) else {
            return;
        };
        if job.phase != JobPhase::Running {
            return;
        }
        let mut line = String::from("{\"event\":\"result\",\"job\":");
        escape_into(&mut line, &format_job_id(job_id));
        line.push_str(",\"status\":\"failed\",\"error\":");
        escape_into(&mut line, message);
        line.push('}');
        // Failures are not persisted: the spec stays on disk, so a restart
        // retries the job (transient errors heal; deterministic ones fail
        // again and keep reporting).
        self.finish_job(job_id, job, line, JobPhase::Failed, false);
    }

    /// One-shot state query.
    pub fn status(&self, job_id: u64) -> Option<(String, usize, usize)> {
        let inner = self.inner.lock().unwrap();
        inner
            .jobs
            .get(&job_id)
            .map(|j| (j.phase.as_str().to_string(), j.done, j.total))
    }

    /// Attaches to a job's event stream.
    pub fn attach_watch(&self, job_id: u64) -> WatchAttach {
        let mut inner = self.inner.lock().unwrap();
        let Some(job) = inner.jobs.get_mut(&job_id) else {
            return WatchAttach::Unknown;
        };
        match job.phase {
            JobPhase::Running => {
                let (tx, rx) = channel();
                job.subscribers.push(tx);
                WatchAttach::Stream(
                    status_event(job_id, job.phase.as_str(), job.done, job.total),
                    rx,
                )
            }
            JobPhase::Cancelled => WatchAttach::Terminal(cancelled_event(job_id)),
            JobPhase::Done | JobPhase::Failed => WatchAttach::Terminal(
                job.result_line
                    .clone()
                    .unwrap_or_else(|| error_event("lost_result", "job ended without a result")),
            ),
        }
    }

    /// Cancels a queued or running job. Shared in-flight points keep
    /// running (another job may need them); this job stops listening, its
    /// persisted spec is removed so a restart will not resurrect it.
    pub fn cancel(&self, job_id: u64) -> Option<&'static str> {
        let mut inner = self.inner.lock().unwrap();
        let job = inner.jobs.get_mut(&job_id)?;
        match job.phase {
            JobPhase::Running => {
                let line = cancelled_event(job_id);
                self.finish_job(job_id, job, line, JobPhase::Cancelled, false);
                let _ = std::fs::remove_dir_all(self.job_dir(job_id));
                Some("cancelled")
            }
            phase => Some(phase.as_str()),
        }
    }

    /// The `stats` event line: every daemon counter plus the chase-cache
    /// counters, all simulation-pure.
    pub fn stats_line(&self) -> String {
        let c = &self.counters;
        let cache = latency_core::cache_stats();
        let queue_depth = self.inner.lock().unwrap().queue.len();
        format!(
            "{{\"event\":\"stats\",\"jobs_submitted\":{},\"jobs_deduped\":{},\
             \"jobs_completed\":{},\"jobs_failed\":{},\"jobs_cancelled\":{},\
             \"jobs_recovered\":{},\"points_requested\":{},\"points_executed\":{},\
             \"points_deduped\":{},\"queue_depth\":{queue_depth},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"stores\":{}}}}}",
            c.jobs_submitted.load(Ordering::Relaxed),
            c.jobs_deduped.load(Ordering::Relaxed),
            c.jobs_completed.load(Ordering::Relaxed),
            c.jobs_failed.load(Ordering::Relaxed),
            c.jobs_cancelled.load(Ordering::Relaxed),
            c.jobs_recovered.load(Ordering::Relaxed),
            c.points_requested.load(Ordering::Relaxed),
            c.points_executed.load(Ordering::Relaxed),
            c.points_deduped.load(Ordering::Relaxed),
            cache.hits,
            cache.misses,
            cache.stores,
        )
    }

    /// Asks every worker and acceptor loop to wind down.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.work.notify_all();
    }

    /// True once [`Server::shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Spawns the worker pool.
    pub fn start_workers(self: &Arc<Self>) -> Vec<JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|i| {
                let server = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || server.worker_loop())
                    .expect("spawn worker")
            })
            .collect()
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let task = {
                let mut inner = self.inner.lock().unwrap();
                loop {
                    if let Some(task) = inner.queue.pop_front() {
                        break task;
                    }
                    if self.is_shutdown() {
                        return;
                    }
                    inner = self.work.wait(inner).unwrap();
                }
            };
            match task {
                Task::Point {
                    key,
                    config,
                    params,
                } => self.execute_point(key, &config, &params),
                Task::Bfs { job } => self.execute_bfs(job),
            }
        }
    }

    fn execute_point(&self, key: u64, config: &GpuConfig, params: &ChaseParams) {
        // `measure_chase` consults the content-addressed cache itself, so a
        // point already on disk costs one read, not a simulation.
        let result = measure_chase(config, params);
        self.counters
            .points_executed
            .fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        let waiters = match inner.points.get_mut(&key) {
            Some(PointState::InFlight(w)) => std::mem::take(w),
            _ => Vec::new(),
        };
        match result {
            Ok(m) => {
                inner.points.insert(key, PointState::Done(m));
                let mut finalize = Vec::new();
                for (job, idx) in waiters {
                    if self.record_point(&mut inner, job, idx, &m) {
                        finalize.push(job);
                    }
                }
                for job in finalize {
                    self.finalize_sweep(&mut inner, job);
                }
            }
            Err(e) => {
                // Drop the point so a resubmission retries it.
                inner.points.remove(&key);
                let message = e.to_string();
                for (job, _) in waiters {
                    self.fail_job(&mut inner, job, &message);
                }
            }
        }
    }

    fn execute_bfs(&self, job_id: u64) {
        let spec = {
            let inner = self.inner.lock().unwrap();
            match inner.jobs.get(&job_id) {
                Some(job) if job.phase == JobPhase::Running => job.spec.clone(),
                // Cancelled (or vanished) while queued.
                _ => return,
            }
        };
        let JobKind::Bfs {
            nodes,
            degree,
            seed,
            block_dim,
            checkpoint_every,
        } = spec.kind
        else {
            return;
        };
        let ckpt = self.job_dir(job_id).join("ckpt");
        let policy = CheckpointPolicy::new(checkpoint_every, &ckpt);
        let outcome = run_or_resume_bfs(&spec, nodes, degree, seed, block_dim, &policy, &ckpt);
        let mut inner = self.inner.lock().unwrap();
        match outcome {
            Ok(line) => {
                let Some(job) = inner.jobs.get_mut(&job_id) else {
                    return;
                };
                if job.phase != JobPhase::Running {
                    return;
                }
                job.done = job.total;
                self.finish_job(job_id, job, line, JobPhase::Done, true);
                drop(inner);
                // The result is durable; the checkpoints have served their
                // purpose.
                let _ = std::fs::remove_dir_all(&ckpt);
            }
            Err(message) => self.fail_job(&mut inner, job_id, &message),
        }
    }
}

/// Runs (or, when `ckpt` already holds a checkpoint, resumes) one
/// checkpointed BFS job to completion and renders its terminal result line.
/// The line contains only simulation-pure fields, so a resumed run is
/// byte-identical to an uninterrupted one.
fn run_or_resume_bfs(
    spec: &JobSpec,
    nodes: u32,
    degree: u32,
    seed: u64,
    block_dim: u32,
    policy: &CheckpointPolicy,
    ckpt: &Path,
) -> Result<String, String> {
    let graph = Graph::uniform_random(nodes, degree, seed);
    let has_checkpoint = store::latest_checkpoint(ckpt)
        .map_err(|e| format!("scanning {}: {e}", ckpt.display()))?
        .is_some();
    let (gpu, dev, run) = if has_checkpoint {
        let mut gpu = Gpu::resume_latest(ckpt)
            .map_err(|e| format!("resume from {}: {e}", ckpt.display()))?
            .ok_or_else(|| format!("checkpoint vanished from {}", ckpt.display()))?;
        // Snapshots never carry host-side executor state: re-apply it.
        gpu.set_tick_threads(latency_core::tick_threads());
        let dev = bfs::peek_mask_tag(gpu.host_tag())
            .map_err(|e| format!("checkpoint carries no BFS host tag: {e}"))?;
        match bfs::resume_bfs_mask(&mut gpu, policy).map_err(|e| e.to_string())? {
            bfs::BfsMaskOutcome::Completed(run) => (gpu, dev, run),
            bfs::BfsMaskOutcome::Killed { at } => {
                return Err(format!("unexpected kill at cycle {at}"))
            }
        }
    } else {
        let config = spec.build_config().map_err(|e| e.to_string())?;
        let mut gpu = Gpu::new(config);
        gpu.set_tick_threads(latency_core::tick_threads());
        let dev = bfs::upload_graph_mask(&mut gpu, &graph);
        match bfs::run_bfs_mask_checkpointed(&mut gpu, &dev, 0, block_dim, policy)
            .map_err(|e| e.to_string())?
        {
            bfs::BfsMaskOutcome::Completed(run) => (gpu, dev, run),
            bfs::BfsMaskOutcome::Killed { at } => {
                return Err(format!("unexpected kill at cycle {at}"))
            }
        }
    };
    if bfs::read_costs(&gpu, &dev) != graph.bfs_levels(0) {
        return Err("device BFS diverged from host reference".to_string());
    }
    let summary = gpu.summary();
    let mut line = String::from("{\"event\":\"result\",\"job\":");
    escape_into(&mut line, &format_job_id(spec.job_id()));
    line.push_str(&format!(
        ",\"kind\":\"bfs\",\"status\":\"done\",\"levels\":{},\"cycles\":{},\
         \"instructions\":{},\"content_hash\":",
        run.levels_run, summary.cycles, summary.instructions
    ));
    escape_into(&mut line, &format!("{:016x}", summary.content_hash));
    line.push('}');
    Ok(line)
}

/// Renders a finished sweep's terminal line: the measured grid in submission
/// order plus a stable content hash over every measurement. Nothing in it is
/// wall-clock-derived, so two clients — or two daemon lifetimes — render the
/// same bytes.
fn sweep_result_line(job_id: u64, spec: &JobSpec, results: &[Option<ChaseMeasurement>]) -> String {
    let points = spec.kind.sweep_points();
    let mut h = StableHasher::new();
    h.u32(SPEC_VERSION);
    h.u64(job_id);
    let mut line = String::from("{\"event\":\"result\",\"job\":");
    escape_into(&mut line, &format_job_id(job_id));
    line.push_str(",\"kind\":\"sweep\",\"status\":\"done\",\"points\":[");
    for (i, (params, m)) in points.iter().zip(results).enumerate() {
        let m = m.as_ref().expect("finalized sweep with a hole");
        h.u64(params.footprint);
        h.u64(params.stride);
        h.u64(m.per_access.to_bits());
        h.u64(m.accesses);
        h.u64(m.cycles_short);
        h.u64(m.cycles_long);
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!(
            "{{\"footprint\":{},\"stride\":{},\"per_access\":{},\"accesses\":{},\
             \"cycles_short\":{},\"cycles_long\":{}}}",
            params.footprint,
            params.stride,
            m.per_access,
            m.accesses,
            m.cycles_short,
            m.cycles_long
        ));
    }
    line.push_str("],\"content_hash\":");
    escape_into(&mut line, &format!("{:016x}", h.finish()));
    line.push('}');
    line
}

/// Serves one connection: reads request lines, answers with event lines.
/// Malformed input — bad JSON, unknown commands, broken specs, oversized
/// lines — is answered with a typed error event and the loop continues;
/// only EOF, transport errors, and `shutdown` end the session.
///
/// # Errors
///
/// Propagates transport I/O failures.
pub fn serve_session<R: Read, W: Write>(
    server: &Arc<Server>,
    reader: R,
    mut writer: W,
) -> std::io::Result<()> {
    let mut lines = LineReader::new(BufReader::new(reader));
    loop {
        let Some(next) = lines.next_line()? else {
            return Ok(());
        };
        let request = match next.and_then(|line| parse_request(&line)) {
            Ok(request) => request,
            Err(e) => {
                send(&mut writer, &error_event(e.code(), &e.to_string()))?;
                continue;
            }
        };
        match request {
            Request::Submit { spec, watch } => {
                let config = match spec.build_config() {
                    Ok(config) => config,
                    Err(e) => {
                        send(&mut writer, &error_event(e.code(), &e.to_string()))?;
                        continue;
                    }
                };
                let sub = match server.submit(*spec, config) {
                    Ok(sub) => sub,
                    Err(e) => {
                        send(
                            &mut writer,
                            &error_event("io_error", &format!("persisting job spec: {e}")),
                        )?;
                        continue;
                    }
                };
                send(
                    &mut writer,
                    &accepted_event(sub.job, sub.state, sub.total, sub.deduped),
                )?;
                if watch {
                    stream_job(server, sub.job, &mut writer)?;
                }
            }
            Request::Status(job) => match server.status(job) {
                Some((state, done, total)) => {
                    send(&mut writer, &status_event(job, &state, done, total))?;
                }
                None => send(&mut writer, &unknown_job(job))?,
            },
            Request::Watch(job) => stream_job(server, job, &mut writer)?,
            Request::Cancel(job) => match server.cancel(job) {
                Some("cancelled") => send(&mut writer, &cancelled_event(job))?,
                Some(state) => send(&mut writer, &status_event(job, state, 0, 0))?,
                None => send(&mut writer, &unknown_job(job))?,
            },
            Request::Stats => send(&mut writer, &server.stats_line())?,
            Request::Shutdown => {
                send(&mut writer, "{\"event\":\"shutdown\"}")?;
                server.shutdown();
                return Ok(());
            }
        }
    }
}

fn unknown_job(job: u64) -> String {
    error_event("unknown_job", &format!("no job {}", format_job_id(job)))
}

fn send<W: Write>(writer: &mut W, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Streams a job's events to a writer until its terminal line.
fn stream_job<W: Write>(server: &Arc<Server>, job: u64, writer: &mut W) -> std::io::Result<()> {
    match server.attach_watch(job) {
        WatchAttach::Unknown => send(writer, &unknown_job(job)),
        WatchAttach::Terminal(line) => send(writer, &line),
        WatchAttach::Stream(status, rx) => {
            send(writer, &status)?;
            for (line, terminal) in rx {
                send(writer, &line)?;
                if terminal {
                    break;
                }
            }
            Ok(())
        }
    }
}

/// Accept loop for a TCP listener: one thread per connection, polling the
/// shutdown flag between accepts.
pub fn serve_tcp(server: Arc<Server>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if server.is_shutdown() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    if let Ok(reader) = stream.try_clone() {
                        let _ = serve_session(&server, reader, stream);
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Accept loop for a Unix socket, same shape as [`serve_tcp`].
#[cfg(unix)]
pub fn serve_unix(
    server: Arc<Server>,
    listener: std::os::unix::net::UnixListener,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if server.is_shutdown() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    if let Ok(reader) = stream.try_clone() {
                        let _ = serve_session(&server, reader, stream);
                    }
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
}

/// An in-process daemon: recovery, worker pool, and TCP acceptor all
/// running, with the bound address written to `state/serve.addr` so clients
/// (and the CI smoke script) can find an ephemeral port.
pub struct ServerHandle {
    /// The bound address.
    pub addr: std::net::SocketAddr,
    /// Jobs re-enqueued by boot recovery.
    pub recovered: usize,
    server: Arc<Server>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Boots a full daemon on `bind` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates state-dir and socket setup failures.
    pub fn spawn(cfg: ServerConfig, bind: &str) -> std::io::Result<ServerHandle> {
        let state_dir = cfg.state_dir.clone();
        let server = Server::new(cfg)?;
        let recovered = server.recover();
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        store::write_atomic(&state_dir.join("serve.addr"), addr.to_string().as_bytes())?;
        let mut threads = server.start_workers();
        let acceptor = Arc::clone(&server);
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || {
                    let _ = serve_tcp(acceptor, listener);
                })
                .expect("spawn acceptor"),
        );
        Ok(ServerHandle {
            addr,
            recovered,
            server,
            threads,
        })
    }

    /// The shared daemon state (for counters in tests and benches).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Graceful stop: signal, then join workers and the acceptor.
    pub fn shutdown(self) {
        self.server.shutdown();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_sweep() -> JobSpec {
        JobSpec::parse_str(
            "{\"preset\":\"gf106\",\"sweep\":{\"footprints\":[2048,4096],\"strides\":[256]}}",
        )
        .unwrap()
    }

    fn boot(dir: &Path) -> (Arc<Server>, Vec<JoinHandle<()>>) {
        let server = Server::new(ServerConfig {
            state_dir: dir.to_path_buf(),
            workers: 1,
        })
        .unwrap();
        let threads = server.start_workers();
        (server, threads)
    }

    fn wait_done(server: &Arc<Server>, job: u64) -> String {
        match server.attach_watch(job) {
            WatchAttach::Terminal(line) => line,
            WatchAttach::Stream(_, rx) => {
                let mut last = String::new();
                for (line, terminal) in rx {
                    last = line;
                    if terminal {
                        break;
                    }
                }
                last
            }
            WatchAttach::Unknown => panic!("job vanished"),
        }
    }

    #[test]
    fn dedup_and_byte_identical_results() {
        let dir = tmp_dir("dedup");
        let (server, threads) = boot(&dir);
        let spec = tiny_sweep();
        let id = spec.job_id();
        let a = server
            .submit(spec.clone(), spec.build_config().unwrap())
            .unwrap();
        let b = server
            .submit(spec.clone(), spec.build_config().unwrap())
            .unwrap();
        assert!(!a.deduped);
        assert!(b.deduped, "identical spec must join the existing job");
        let line_a = wait_done(&server, id);
        let line_b = wait_done(&server, id);
        assert_eq!(line_a, line_b);
        assert!(line_a.contains("\"status\":\"done\""));
        // Exactly one execution per grid point despite two submissions.
        assert_eq!(
            server.counters.points_executed.load(Ordering::Relaxed),
            spec.kind.sweep_points().len() as u64
        );
        assert_eq!(server.counters.jobs_deduped.load(Ordering::Relaxed), 1);
        // The result is also durable.
        let persisted = std::fs::read_to_string(server.job_dir(id).join("result.json")).unwrap();
        assert_eq!(persisted, line_a);
        server.shutdown();
        for t in threads {
            t.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_recovers_done_jobs_and_reruns_pending_ones() {
        let dir = tmp_dir("recover");
        let spec = tiny_sweep();
        let id = spec.job_id();
        let first_line;
        {
            let (server, threads) = boot(&dir);
            server
                .submit(spec.clone(), spec.build_config().unwrap())
                .unwrap();
            first_line = wait_done(&server, id);
            server.shutdown();
            for t in threads {
                t.join().unwrap();
            }
        }
        // Second lifetime: the finished job must come back with the same
        // bytes, without re-simulating anything.
        {
            let (server, threads) = boot(&dir);
            assert_eq!(server.recover(), 0, "done jobs re-enqueue nothing");
            assert_eq!(wait_done(&server, id), first_line);
            assert_eq!(server.counters.points_executed.load(Ordering::Relaxed), 0);
            server.shutdown();
            for t in threads {
                t.join().unwrap();
            }
        }
        // Third lifetime: drop the result (keep the spec) to model a crash
        // before completion; recovery re-enqueues, the chase cache makes the
        // rerun cheap, and the bytes still match.
        std::fs::remove_file(dir.join("jobs").join(format_job_id(id)).join("result.json")).unwrap();
        {
            let (server, threads) = boot(&dir);
            assert_eq!(server.recover(), 1);
            assert_eq!(server.counters.jobs_recovered.load(Ordering::Relaxed), 1);
            assert_eq!(wait_done(&server, id), first_line);
            server.shutdown();
            for t in threads {
                t.join().unwrap();
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_is_terminal_and_forgets_the_spec() {
        let dir = tmp_dir("cancel");
        // No workers: the job stays queued so cancel always wins the race.
        let server = Server::new(ServerConfig {
            state_dir: dir.clone(),
            workers: 1,
        })
        .unwrap();
        let spec = JobSpec::parse_str(
            "{\"preset\":\"gf106\",\"bfs\":{\"nodes\":64,\"degree\":4,\"seed\":1,\
             \"block_dim\":32,\"checkpoint_every\":100000}}",
        )
        .unwrap();
        let id = spec.job_id();
        server
            .submit(spec.clone(), spec.build_config().unwrap())
            .unwrap();
        assert_eq!(server.cancel(id), Some("cancelled"));
        assert!(!server.job_dir(id).exists());
        assert!(matches!(server.attach_watch(id), WatchAttach::Terminal(_)));
        // And the queued task is a no-op if a worker picks it up later.
        let threads = server.start_workers();
        assert_eq!(server.status(id).unwrap().0, "cancelled");
        server.shutdown();
        for t in threads {
            t.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
