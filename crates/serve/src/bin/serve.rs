//! The `serve` daemon bin.
//!
//! ```text
//! serve [--listen ADDR] [--unix PATH] [--stdio] [--state DIR]
//!       [--workers N] [--tick-threads N]
//! ```
//!
//! Defaults to TCP on `127.0.0.1:4780`; `--listen 127.0.0.1:0` picks an
//! ephemeral port. Either way the bound address is published to
//! `STATE/serve.addr` so clients and scripts can find it. `--stdio` serves
//! exactly one session over stdin/stdout (the mode the malformed-spec tests
//! drive), and `--unix PATH` adds a Unix-socket listener alongside TCP.
//!
//! Boot order matters for crash recovery: the state tree is scanned and
//! unfinished jobs re-enqueued *before* the first connection is accepted,
//! so a client watching a job killed mid-flight reattaches to work that is
//! already running again.

use std::path::PathBuf;
use std::process::exit;

#[cfg(unix)]
use gpu_serve::server::serve_unix;
use gpu_serve::server::{serve_session, Server, ServerConfig, ServerHandle};

struct Args {
    listen: String,
    unix: Option<PathBuf>,
    stdio: bool,
    state: PathBuf,
    workers: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--listen ADDR] [--unix PATH] [--stdio] [--state DIR]\n\
         \x20            [--workers N] [--tick-threads N]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        listen: "127.0.0.1:4780".to_string(),
        unix: None,
        stdio: false,
        state: PathBuf::from("serve-state"),
        workers: latency_core::grid_worker_count(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--listen" => parsed.listen = val("--listen"),
            "--unix" => parsed.unix = Some(PathBuf::from(val("--unix"))),
            "--stdio" => parsed.stdio = true,
            "--state" => parsed.state = PathBuf::from(val("--state")),
            "--workers" => {
                parsed.workers = val("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("--workers wants a positive integer");
                    exit(2);
                });
                if parsed.workers == 0 {
                    eprintln!("--workers wants a positive integer");
                    exit(2);
                }
            }
            "--tick-threads" => {
                match latency_core::parse_tick_threads(&val("--tick-threads"), "--tick-threads") {
                    Ok(n) => latency_core::set_tick_threads(n),
                    Err(e) => {
                        eprintln!("{e}");
                        exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    parsed
}

fn main() {
    // A garbled LATENCY_TICK_THREADS would silently serialize every
    // simulation; refuse it up front like a bad flag.
    if let Err(e) = latency_core::env_tick_threads() {
        eprintln!("{e}");
        exit(2);
    }
    let args = parse_args();
    let cfg = ServerConfig {
        state_dir: args.state.clone(),
        workers: args.workers,
    };

    if args.stdio {
        let server = Server::new(cfg).unwrap_or_else(|e| {
            eprintln!("serve: state dir {}: {e}", args.state.display());
            exit(1);
        });
        let recovered = server.recover();
        if recovered > 0 {
            eprintln!("serve: recovered {recovered} unfinished job(s)");
        }
        let workers = server.start_workers();
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = serve_session(&server, stdin.lock(), stdout.lock()) {
            eprintln!("serve: stdio session: {e}");
        }
        server.shutdown();
        for t in workers {
            let _ = t.join();
        }
        return;
    }

    // Remove any stale address file first: clients poll for it, and a
    // leftover from a killed daemon must not point them at a dead port.
    let _ = std::fs::remove_file(args.state.join("serve.addr"));
    let handle = ServerHandle::spawn(cfg, &args.listen).unwrap_or_else(|e| {
        eprintln!("serve: binding {}: {e}", args.listen);
        exit(1);
    });
    if handle.recovered > 0 {
        eprintln!("serve: recovered {} unfinished job(s)", handle.recovered);
    }
    eprintln!(
        "serve: listening on {} (state {})",
        handle.addr,
        args.state.display()
    );
    #[cfg(unix)]
    if let Some(path) = &args.unix {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path).unwrap_or_else(|e| {
            eprintln!("serve: binding {}: {e}", path.display());
            exit(1);
        });
        eprintln!("serve: also listening on {}", path.display());
        let server = handle.server().clone();
        std::thread::spawn(move || {
            let _ = serve_unix(server, listener);
        });
    }
    #[cfg(not(unix))]
    if args.unix.is_some() {
        eprintln!("serve: --unix is only available on Unix hosts");
        exit(2);
    }
    // Park until a client issues `shutdown`.
    let server = handle.server().clone();
    while !server.is_shutdown() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    handle.shutdown();
}
