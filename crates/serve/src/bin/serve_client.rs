//! The `serve-client` bin: submit, status, cancel, watch, stats, shutdown.
//!
//! ```text
//! serve-client [--connect ADDR | --addr-file PATH | --unix PATH] CMD ...
//!
//! CMDs:
//!   submit [--preset NAME | --arch-frame HEX] [--microbench BOOL]
//!          (--footprints A,B,.. --strides A,B,.. [--space global|local]
//!           | --workload bfs --nodes N --degree N [--seed N]
//!             --block-dim N --checkpoint-every N
//!           | --spec JSON)
//!          [--watch] [--quiet]
//!   status JOB          one-line state query
//!   watch JOB [--quiet] stream events until the terminal line
//!   cancel JOB
//!   stats
//!   shutdown
//! ```
//!
//! `--quiet` prints only the terminal line, which is what the CI smoke job
//! byte-diffs across two concurrent clients. Exit status: 0 when the
//! terminal event is a successful `result` (or the one-shot command
//! succeeded), 1 on `failed`/`cancelled`/`error`.

use std::path::PathBuf;
use std::process::exit;

use gpu_serve::client::Client;
use gpu_serve::proto::is_terminal_event;
use gpu_trace::json::{parse, Value};

fn usage() -> ! {
    eprintln!(
        "usage: serve-client [--connect ADDR | --addr-file PATH | --unix PATH] CMD ...\n\
         CMDs: submit | status JOB | watch JOB | cancel JOB | stats | shutdown\n\
         submit: [--preset NAME | --arch-frame HEX] [--microbench true|false]\n\
         \x20       --footprints A,B --strides A,B [--space global|local]\n\
         \x20       | --workload bfs --nodes N --degree N [--seed N] --block-dim N\n\
         \x20         --checkpoint-every N | --spec JSON\n\
         \x20       [--watch] [--quiet]"
    );
    exit(2);
}

enum Connect {
    Tcp(String),
    AddrFile(PathBuf),
    #[cfg(unix)]
    Unix(PathBuf),
}

fn connect(how: &Connect) -> Client {
    let result = match how {
        Connect::Tcp(addr) => Client::connect_tcp(addr),
        Connect::AddrFile(path) => Client::connect_addr_file(path),
        #[cfg(unix)]
        Connect::Unix(path) => Client::connect_unix(path),
    };
    result.unwrap_or_else(|e| {
        eprintln!("serve-client: connect: {e}");
        exit(1);
    })
}

/// True when a terminal line reports success.
fn is_ok_terminal(line: &str) -> bool {
    match parse(line) {
        Ok(v) => {
            v.get("event").and_then(Value::as_str) == Some("result")
                && v.get("status").and_then(Value::as_str) == Some("done")
        }
        Err(_) => false,
    }
}

fn stream_to_stdout(client: &mut Client, first_request: &str, quiet: bool) -> ! {
    client.send(first_request).unwrap_or_else(|e| {
        eprintln!("serve-client: send: {e}");
        exit(1);
    });
    loop {
        match client.recv() {
            Ok(Some(line)) => {
                let terminal = is_terminal_event(&line);
                if !quiet || terminal {
                    println!("{line}");
                }
                if terminal {
                    exit(if is_ok_terminal(&line) { 0 } else { 1 });
                }
            }
            Ok(None) => {
                eprintln!("serve-client: daemon closed the stream early");
                exit(1);
            }
            Err(e) => {
                eprintln!("serve-client: recv: {e}");
                exit(1);
            }
        }
    }
}

fn one_shot(client: &mut Client, request: &str) -> ! {
    match client.request(request) {
        Ok(line) => {
            println!("{line}");
            let failed = parse(&line)
                .ok()
                .and_then(|v| v.get("event").and_then(Value::as_str).map(str::to_string))
                == Some("error".to_string());
            exit(if failed { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("serve-client: {e}");
            exit(1);
        }
    }
}

struct SubmitFlags {
    preset: Option<String>,
    arch_frame: Option<String>,
    microbench: Option<bool>,
    footprints: Option<String>,
    strides: Option<String>,
    space: Option<String>,
    workload: Option<String>,
    nodes: Option<String>,
    degree: Option<String>,
    seed: Option<String>,
    block_dim: Option<String>,
    checkpoint_every: Option<String>,
    spec: Option<String>,
    watch: bool,
    quiet: bool,
}

fn build_spec(f: &SubmitFlags) -> String {
    if let Some(spec) = &f.spec {
        return spec.clone();
    }
    let mut spec = String::from("{");
    match (&f.preset, &f.arch_frame) {
        (Some(p), None) => spec.push_str(&format!("\"preset\":{p:?}")),
        (None, Some(a)) => spec.push_str(&format!("\"arch\":{a:?}")),
        _ => {
            eprintln!("serve-client: submit wants exactly one of --preset / --arch-frame");
            exit(2);
        }
    }
    if let Some(m) = f.microbench {
        spec.push_str(&format!(",\"microbench\":{m}"));
    }
    match f.workload.as_deref() {
        None => {
            let (Some(footprints), Some(strides)) = (&f.footprints, &f.strides) else {
                eprintln!("serve-client: a sweep wants --footprints and --strides");
                exit(2);
            };
            spec.push_str(&format!(
                ",\"sweep\":{{\"footprints\":[{footprints}],\"strides\":[{strides}]"
            ));
            if let Some(space) = &f.space {
                spec.push_str(&format!(",\"space\":{space:?}"));
            }
            spec.push('}');
        }
        Some("bfs") => {
            let (Some(nodes), Some(degree), Some(block_dim), Some(every)) =
                (&f.nodes, &f.degree, &f.block_dim, &f.checkpoint_every)
            else {
                eprintln!(
                    "serve-client: bfs wants --nodes, --degree, --block-dim, --checkpoint-every"
                );
                exit(2);
            };
            let seed = f.seed.as_deref().unwrap_or("0");
            spec.push_str(&format!(
                ",\"bfs\":{{\"nodes\":{nodes},\"degree\":{degree},\"seed\":{seed},\
                 \"block_dim\":{block_dim},\"checkpoint_every\":{every}}}"
            ));
        }
        Some(other) => {
            eprintln!("serve-client: unknown workload {other:?} (only \"bfs\")");
            exit(2);
        }
    }
    spec.push('}');
    spec
}

fn main() {
    let mut connect_how = Connect::AddrFile(PathBuf::from("serve-state/serve.addr"));
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--connect" => connect_how = Connect::Tcp(val("--connect")),
            "--addr-file" => connect_how = Connect::AddrFile(PathBuf::from(val("--addr-file"))),
            #[cfg(unix)]
            "--unix" => connect_how = Connect::Unix(PathBuf::from(val("--unix"))),
            "--help" | "-h" => usage(),
            _ => {
                rest.push(arg);
                rest.extend(args.by_ref());
            }
        }
    }
    let Some(cmd) = rest.first().cloned() else {
        usage();
    };
    let mut client = connect(&connect_how);
    match cmd.as_str() {
        "submit" => {
            let mut f = SubmitFlags {
                preset: None,
                arch_frame: None,
                microbench: None,
                footprints: None,
                strides: None,
                space: None,
                workload: None,
                nodes: None,
                degree: None,
                seed: None,
                block_dim: None,
                checkpoint_every: None,
                spec: None,
                watch: false,
                quiet: false,
            };
            let mut it = rest.into_iter().skip(1);
            while let Some(arg) = it.next() {
                let mut val = |name: &str| -> String {
                    it.next().unwrap_or_else(|| {
                        eprintln!("missing value for {name}");
                        exit(2);
                    })
                };
                match arg.as_str() {
                    "--preset" => f.preset = Some(val("--preset")),
                    "--arch-frame" => f.arch_frame = Some(val("--arch-frame")),
                    "--microbench" => match val("--microbench").as_str() {
                        "true" => f.microbench = Some(true),
                        "false" => f.microbench = Some(false),
                        _ => {
                            eprintln!("--microbench wants true or false");
                            exit(2);
                        }
                    },
                    "--footprints" => f.footprints = Some(val("--footprints")),
                    "--strides" => f.strides = Some(val("--strides")),
                    "--space" => f.space = Some(val("--space")),
                    "--workload" => f.workload = Some(val("--workload")),
                    "--nodes" => f.nodes = Some(val("--nodes")),
                    "--degree" => f.degree = Some(val("--degree")),
                    "--seed" => f.seed = Some(val("--seed")),
                    "--block-dim" => f.block_dim = Some(val("--block-dim")),
                    "--checkpoint-every" => f.checkpoint_every = Some(val("--checkpoint-every")),
                    "--spec" => f.spec = Some(val("--spec")),
                    "--watch" => f.watch = true,
                    "--quiet" => f.quiet = true,
                    other => {
                        eprintln!("unknown submit flag: {other}");
                        usage();
                    }
                }
            }
            let spec = build_spec(&f);
            if f.watch {
                let request = format!("{{\"cmd\":\"submit\",\"watch\":true,\"spec\":{spec}}}");
                stream_to_stdout(&mut client, &request, f.quiet);
            } else {
                one_shot(
                    &mut client,
                    &format!("{{\"cmd\":\"submit\",\"spec\":{spec}}}"),
                );
            }
        }
        "status" | "cancel" => {
            let Some(job) = rest.get(1) else { usage() };
            one_shot(&mut client, &format!("{{\"cmd\":{cmd:?},\"job\":{job:?}}}"));
        }
        "watch" => {
            let Some(job) = rest.get(1) else { usage() };
            let quiet = rest.iter().any(|a| a == "--quiet");
            let request = format!("{{\"cmd\":\"watch\",\"job\":{job:?}}}");
            stream_to_stdout(&mut client, &request, quiet);
        }
        "stats" => one_shot(&mut client, "{\"cmd\":\"stats\"}"),
        "shutdown" => one_shot(&mut client, "{\"cmd\":\"shutdown\"}"),
        _ => usage(),
    }
}
