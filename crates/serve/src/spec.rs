//! Job specifications: the JSON schema clients submit, its typed parse, and
//! the deterministic job identity derived from it.
//!
//! A spec names an architecture (a preset token or an inline hex-encoded
//! [`ArchDesc`] frame) and one job kind — a chase sweep grid or a
//! checkpointed BFS traversal. Parsing is strict: every malformed input maps
//! to a [`SpecError`] with a stable machine-readable [`SpecError::code`], so
//! the daemon can answer bad submissions with typed JSON errors instead of
//! dying or silently coercing.
//!
//! Job identity ([`JobSpec::job_id`]) is a [`StableHasher`] digest over the
//! *resolved* architecture description ([`ArchDesc::hash_desc`]) plus the
//! job-kind fields. Two clients submitting the same work — whether via the
//! same preset name or an identical inline frame — therefore collide onto
//! one job, which is what makes cross-client dedup and restart recovery
//! possible.

use gpu_sim::{ArchDesc, GpuConfig};
use gpu_snapshot::{Decoder, Encoder, StableHasher};
use gpu_trace::json::{escape_into, Value};
use latency_core::{ArchPreset, ChaseParams, ChaseSpace};

/// Version tag folded into every job id; bump when the spec schema changes
/// meaning so stale persisted jobs are not misread as current ones.
pub const SPEC_VERSION: u32 = 1;

/// Upper bound on sweep footprints (1 GiB): anything larger is a typo or a
/// resource-exhaustion attempt, not a plausible chase working set.
pub const MAX_FOOTPRINT: u64 = 1 << 30;

/// Upper bound on BFS graph size; keeps a single job's memory bounded.
pub const MAX_NODES: u32 = 1 << 22;

/// Where the architecture comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchSource {
    /// One of the registered per-generation presets.
    Preset(ArchPreset),
    /// An inline hex-encoded `ArchDesc` snapshot frame.
    Inline(Box<ArchDesc>),
}

/// The work itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// A footprint × stride pointer-chase grid (paper §II methodology).
    Sweep {
        /// Working-set sizes in bytes.
        footprints: Vec<u64>,
        /// Chain strides in bytes (multiples of 8).
        strides: Vec<u64>,
        /// Memory space walked.
        space: ChaseSpace,
    },
    /// A checkpointed mask-BFS traversal (long job; survives daemon death).
    Bfs {
        /// Graph nodes.
        nodes: u32,
        /// Average out-degree.
        degree: u32,
        /// Graph seed.
        seed: u64,
        /// CTA width.
        block_dim: u32,
        /// Checkpoint cadence in cycles.
        checkpoint_every: u64,
    },
}

/// A fully parsed, validated job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Architecture under test.
    pub arch: ArchSource,
    /// Shrink the machine to the single-SM microbench variant
    /// ([`ArchDesc::microbench`]) before building the config.
    pub microbench: bool,
    /// What to run.
    pub kind: JobKind,
}

/// Everything that can be wrong with a submitted spec. Each variant carries
/// a stable `code()` that ends up in the JSON error event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// `"preset"` named no known chip or generation.
    UnknownPreset(String),
    /// The inline `"arch"` hex frame failed to decode or validate.
    BadArchFrame(String),
    /// Neither `"preset"` nor `"arch"` was given (or both were).
    MissingArch(&'static str),
    /// Neither `"sweep"` nor `"bfs"` was given (or both were).
    UnknownWorkload(&'static str),
    /// A sweep expanded to zero runnable points.
    EmptyGrid(String),
    /// A field had the wrong type, range, or alignment.
    BadField(String),
}

impl SpecError {
    /// Stable machine-readable error code for the JSON protocol.
    pub fn code(&self) -> &'static str {
        match self {
            SpecError::UnknownPreset(_) => "unknown_preset",
            SpecError::BadArchFrame(_) => "bad_arch_frame",
            SpecError::MissingArch(_) => "missing_arch",
            SpecError::UnknownWorkload(_) => "unknown_workload",
            SpecError::EmptyGrid(_) => "empty_grid",
            SpecError::BadField(_) => "bad_field",
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownPreset(p) => write!(
                f,
                "unknown preset {p:?} (valid presets: {})",
                ArchPreset::valid_tokens()
            ),
            SpecError::BadArchFrame(e) => write!(f, "bad arch frame: {e}"),
            SpecError::MissingArch(e) => write!(f, "{e}"),
            SpecError::UnknownWorkload(e) => write!(f, "{e}"),
            SpecError::EmptyGrid(e) => write!(f, "empty grid: {e}"),
            SpecError::BadField(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Canonical lowercase token for a preset, used in persisted specs and job
/// hashing-stable display (`ArchPreset::parse` accepts it back). Delegates
/// to [`ArchPreset::token`], the registry's single source of truth.
pub fn preset_token(p: ArchPreset) -> &'static str {
    p.token()
}

/// Encodes bytes as lowercase hex.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes lowercase/uppercase hex into bytes.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".to_string());
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let digits = s.as_bytes();
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char).to_digit(16);
        let lo = (pair[1] as char).to_digit(16);
        match (hi, lo) {
            (Some(h), Some(l)) => out.push((h * 16 + l) as u8),
            _ => return Err(format!("non-hex byte in {:?}", pair)),
        }
    }
    Ok(out)
}

/// Serializes an `ArchDesc` as the hex frame accepted by `"arch"`.
pub fn encode_arch_frame(desc: &ArchDesc) -> String {
    let mut e = Encoder::new();
    desc.encode_state(&mut e);
    hex_encode(&e.finish())
}

fn decode_arch_frame(hex: &str) -> Result<ArchDesc, SpecError> {
    let bytes = hex_decode(hex).map_err(SpecError::BadArchFrame)?;
    let mut d = Decoder::open(&bytes).map_err(|e| SpecError::BadArchFrame(e.to_string()))?;
    let desc = ArchDesc::decode(&mut d).map_err(|e| SpecError::BadArchFrame(e.to_string()))?;
    d.expect_end()
        .map_err(|e| SpecError::BadArchFrame(e.to_string()))?;
    desc.validate()
        .map_err(|e| SpecError::BadArchFrame(e.to_string()))?;
    Ok(desc)
}

fn field_u64(obj: &Value, key: &str, max: u64) -> Result<u64, SpecError> {
    let v = obj
        .get(key)
        .ok_or_else(|| SpecError::BadField(format!("missing field {key:?}")))?;
    num_u64(v, key, max)
}

fn num_u64(v: &Value, key: &str, max: u64) -> Result<u64, SpecError> {
    let n = v
        .as_num()
        .ok_or_else(|| SpecError::BadField(format!("{key:?} must be a number")))?;
    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
        return Err(SpecError::BadField(format!(
            "{key:?} must be a non-negative integer"
        )));
    }
    if n > max as f64 {
        return Err(SpecError::BadField(format!(
            "{key:?} exceeds maximum {max}"
        )));
    }
    Ok(n as u64)
}

fn field_u64_list(obj: &Value, key: &str, max: u64) -> Result<Vec<u64>, SpecError> {
    let arr = obj
        .get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| SpecError::BadField(format!("{key:?} must be an array of integers")))?;
    if arr.is_empty() {
        return Err(SpecError::EmptyGrid(format!("{key:?} is empty")));
    }
    arr.iter().map(|v| num_u64(v, key, max)).collect()
}

fn parse_arch(spec: &Value) -> Result<ArchSource, SpecError> {
    let preset = spec.get("preset");
    let arch = spec.get("arch");
    match (preset, arch) {
        (Some(_), Some(_)) => Err(SpecError::MissingArch(
            "give either \"preset\" or \"arch\", not both",
        )),
        (None, None) => Err(SpecError::MissingArch(
            "spec needs a \"preset\" name or an inline \"arch\" frame",
        )),
        (Some(p), None) => {
            let name = p
                .as_str()
                .ok_or_else(|| SpecError::BadField("\"preset\" must be a string".to_string()))?;
            let preset = ArchPreset::parse(name)
                .ok_or_else(|| SpecError::UnknownPreset(name.to_string()))?;
            Ok(ArchSource::Preset(preset))
        }
        (None, Some(a)) => {
            let hex = a
                .as_str()
                .ok_or_else(|| SpecError::BadField("\"arch\" must be a hex string".to_string()))?;
            Ok(ArchSource::Inline(Box::new(decode_arch_frame(hex)?)))
        }
    }
}

fn parse_sweep(sweep: &Value) -> Result<JobKind, SpecError> {
    let footprints = field_u64_list(sweep, "footprints", MAX_FOOTPRINT)?;
    let strides = field_u64_list(sweep, "strides", MAX_FOOTPRINT)?;
    for &s in &strides {
        if s < 8 || s % 8 != 0 {
            return Err(SpecError::BadField(format!(
                "stride {s} must be a positive multiple of 8"
            )));
        }
    }
    let space = match sweep.get("space").map(|v| v.as_str()) {
        None => ChaseSpace::Global,
        Some(Some("global")) => ChaseSpace::Global,
        Some(Some("local")) => ChaseSpace::Local,
        Some(other) => {
            return Err(SpecError::BadField(format!(
                "\"space\" must be \"global\" or \"local\", got {other:?}"
            )))
        }
    };
    let kind = JobKind::Sweep {
        footprints,
        strides,
        space,
    };
    if kind.sweep_points().is_empty() {
        return Err(SpecError::EmptyGrid(
            "every footprint/stride pair yields a chain shorter than 2".to_string(),
        ));
    }
    Ok(kind)
}

fn parse_bfs(bfs: &Value) -> Result<JobKind, SpecError> {
    let nodes = field_u64(bfs, "nodes", MAX_NODES as u64)? as u32;
    let degree = field_u64(bfs, "degree", 1 << 16)? as u32;
    let seed = field_u64(bfs, "seed", u64::MAX)?;
    let block_dim = field_u64(bfs, "block_dim", 1 << 10)? as u32;
    let checkpoint_every = field_u64(bfs, "checkpoint_every", u64::MAX)?;
    if nodes == 0 || degree == 0 || block_dim == 0 || checkpoint_every == 0 {
        return Err(SpecError::BadField(
            "bfs nodes, degree, block_dim, and checkpoint_every must be positive".to_string(),
        ));
    }
    Ok(JobKind::Bfs {
        nodes,
        degree,
        seed,
        block_dim,
        checkpoint_every,
    })
}

impl JobKind {
    /// Expands a sweep into its runnable chase points (footprint-major,
    /// mirroring `latency_core::Sweep::plan`: pairs whose chain would hold
    /// fewer than two elements are skipped). Empty for BFS jobs.
    pub fn sweep_points(&self) -> Vec<ChaseParams> {
        let JobKind::Sweep {
            footprints,
            strides,
            space,
        } = self
        else {
            return Vec::new();
        };
        let mut points = Vec::new();
        for &footprint in footprints {
            for &stride in strides {
                if stride == 0 || footprint / stride < 2 {
                    continue;
                }
                points.push(match space {
                    ChaseSpace::Global => ChaseParams::global(footprint, stride),
                    ChaseSpace::Local => ChaseParams::local(footprint, stride),
                });
            }
        }
        points
    }
}

impl JobSpec {
    /// Parses and validates an already-JSON-decoded spec object.
    ///
    /// # Errors
    ///
    /// Every malformed input maps to a typed [`SpecError`].
    pub fn parse(spec: &Value) -> Result<JobSpec, SpecError> {
        if !matches!(spec, Value::Obj(_)) {
            return Err(SpecError::BadField(
                "spec must be a JSON object".to_string(),
            ));
        }
        let arch = parse_arch(spec)?;
        let kind = match (spec.get("sweep"), spec.get("bfs")) {
            (Some(_), Some(_)) => {
                return Err(SpecError::UnknownWorkload(
                    "give either \"sweep\" or \"bfs\", not both",
                ))
            }
            (None, None) => {
                return Err(SpecError::UnknownWorkload(
                    "spec needs a \"sweep\" grid or a \"bfs\" workload",
                ))
            }
            (Some(sweep), None) => parse_sweep(sweep)?,
            (None, Some(bfs)) => parse_bfs(bfs)?,
        };
        // Sweeps default to the paper's single-SM microbench machine; BFS
        // runs the full chip unless asked otherwise.
        let default_microbench = matches!(kind, JobKind::Sweep { .. });
        let microbench = match spec.get("microbench") {
            None => default_microbench,
            Some(Value::Bool(b)) => *b,
            Some(_) => {
                return Err(SpecError::BadField(
                    "\"microbench\" must be a boolean".to_string(),
                ))
            }
        };
        Ok(JobSpec {
            arch,
            microbench,
            kind,
        })
    }

    /// Parses a spec from raw JSON text.
    ///
    /// # Errors
    ///
    /// JSON syntax errors surface as [`SpecError::BadField`].
    pub fn parse_str(text: &str) -> Result<JobSpec, SpecError> {
        let v = gpu_trace::json::parse(text)
            .map_err(|e| SpecError::BadField(format!("spec is not valid JSON: {e}")))?;
        JobSpec::parse(&v)
    }

    /// The resolved architecture description (after the microbench shrink).
    pub fn desc(&self) -> ArchDesc {
        let desc = match &self.arch {
            ArchSource::Preset(p) => p.desc(),
            ArchSource::Inline(d) => (**d).clone(),
        };
        if self.microbench {
            desc.microbench()
        } else {
            desc
        }
    }

    /// Builds the simulator config for this job.
    ///
    /// # Errors
    ///
    /// An inline frame that decodes but describes an unbuildable machine
    /// surfaces as [`SpecError::BadArchFrame`].
    pub fn build_config(&self) -> Result<GpuConfig, SpecError> {
        GpuConfig::from_arch(&self.desc()).map_err(|e| SpecError::BadArchFrame(e.to_string()))
    }

    /// Deterministic job identity: equal for equal work regardless of which
    /// client, connection, or daemon lifetime submitted it.
    pub fn job_id(&self) -> u64 {
        let mut h = StableHasher::new();
        h.u32(SPEC_VERSION);
        self.desc().hash_desc(&mut h);
        match &self.kind {
            JobKind::Sweep {
                footprints,
                strides,
                space,
            } => {
                h.u8(1);
                h.usize(footprints.len());
                for &f in footprints {
                    h.u64(f);
                }
                h.usize(strides.len());
                for &s in strides {
                    h.u64(s);
                }
                h.u8(match space {
                    ChaseSpace::Global => 0,
                    ChaseSpace::Local => 1,
                });
            }
            JobKind::Bfs {
                nodes,
                degree,
                seed,
                block_dim,
                checkpoint_every,
            } => {
                h.u8(2);
                h.u32(*nodes);
                h.u32(*degree);
                h.u64(*seed);
                h.u32(*block_dim);
                h.u64(*checkpoint_every);
            }
        }
        h.finish()
    }

    /// Canonical JSON rendering, stable across processes: persisted as
    /// `spec.json` in the job directory and re-parsed on boot recovery.
    pub fn canonical_json(&self) -> String {
        let mut out = String::from("{\"version\":1,");
        match &self.arch {
            ArchSource::Preset(p) => {
                out.push_str("\"preset\":");
                escape_into(&mut out, preset_token(*p));
            }
            ArchSource::Inline(d) => {
                out.push_str("\"arch\":");
                escape_into(&mut out, &encode_arch_frame(d));
            }
        }
        out.push_str(&format!(",\"microbench\":{}", self.microbench));
        match &self.kind {
            JobKind::Sweep {
                footprints,
                strides,
                space,
            } => {
                out.push_str(",\"sweep\":{\"footprints\":[");
                out.push_str(&join_u64(footprints));
                out.push_str("],\"strides\":[");
                out.push_str(&join_u64(strides));
                out.push_str("],\"space\":");
                escape_into(
                    &mut out,
                    match space {
                        ChaseSpace::Global => "global",
                        ChaseSpace::Local => "local",
                    },
                );
                out.push('}');
            }
            JobKind::Bfs {
                nodes,
                degree,
                seed,
                block_dim,
                checkpoint_every,
            } => {
                out.push_str(&format!(
                    ",\"bfs\":{{\"nodes\":{nodes},\"degree\":{degree},\"seed\":{seed},\
                     \"block_dim\":{block_dim},\"checkpoint_every\":{checkpoint_every}}}"
                ));
            }
        }
        out.push('}');
        out
    }
}

fn join_u64(xs: &[u64]) -> String {
    xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_spec(preset: &str) -> String {
        format!(
            "{{\"preset\":{preset:?},\"sweep\":{{\"footprints\":[4096,8192],\"strides\":[128]}}}}"
        )
    }

    #[test]
    fn parses_preset_sweep() {
        let spec = JobSpec::parse_str(&sweep_spec("gf106")).unwrap();
        assert_eq!(spec.arch, ArchSource::Preset(ArchPreset::FermiGf106));
        assert!(spec.microbench, "sweeps default to the microbench machine");
        assert_eq!(spec.kind.sweep_points().len(), 2);
    }

    #[test]
    fn unknown_preset_is_typed() {
        let err = JobSpec::parse_str(&sweep_spec("gtx9000")).unwrap_err();
        assert_eq!(err.code(), "unknown_preset");
        // The message enumerates every valid token so a client can self-fix.
        let msg = err.to_string();
        for p in ArchPreset::ALL {
            assert!(msg.contains(p.token()), "{} missing from {msg}", p.token());
        }
    }

    #[test]
    fn preset_token_roundtrips_through_parse() {
        for p in ArchPreset::ALL {
            assert_eq!(ArchPreset::parse(preset_token(p)), Some(p));
        }
    }

    #[test]
    fn inline_frame_roundtrips_and_matches_preset_id() {
        let desc = ArchPreset::FermiGf106.desc();
        let frame = encode_arch_frame(&desc);
        let inline = JobSpec::parse_str(&format!(
            "{{\"arch\":{frame:?},\"sweep\":{{\"footprints\":[4096,8192],\"strides\":[128]}}}}"
        ))
        .unwrap();
        let preset = JobSpec::parse_str(&sweep_spec("gf106")).unwrap();
        // Same machine, same grid: the ids collide by design so the daemon
        // dedups across the two spellings.
        assert_eq!(inline.job_id(), preset.job_id());
    }

    #[test]
    fn garbage_frame_is_typed() {
        for frame in ["zz", "abc", "00112233445566778899aabbccddeeff"] {
            let err = JobSpec::parse_str(&format!(
                "{{\"arch\":{frame:?},\"sweep\":{{\"footprints\":[4096],\"strides\":[128]}}}}"
            ))
            .unwrap_err();
            assert_eq!(err.code(), "bad_arch_frame", "frame {frame:?}");
        }
    }

    #[test]
    fn zero_point_grid_is_typed() {
        // 1024/2048 < 2 elements: the lone point is skipped, grid is empty.
        let err = JobSpec::parse_str(
            "{\"preset\":\"gf106\",\"sweep\":{\"footprints\":[1024],\"strides\":[2048]}}",
        )
        .unwrap_err();
        assert_eq!(err.code(), "empty_grid");
    }

    #[test]
    fn misaligned_stride_is_typed() {
        let err = JobSpec::parse_str(
            "{\"preset\":\"gf106\",\"sweep\":{\"footprints\":[4096],\"strides\":[100]}}",
        )
        .unwrap_err();
        assert_eq!(err.code(), "bad_field");
    }

    #[test]
    fn canonical_json_reparses_to_same_id() {
        for text in [
            sweep_spec("gk110"),
            "{\"preset\":\"gf100\",\"bfs\":{\"nodes\":1024,\"degree\":6,\"seed\":7,\
             \"block_dim\":64,\"checkpoint_every\":5000}}"
                .to_string(),
        ] {
            let spec = JobSpec::parse_str(&text).unwrap();
            let reparsed = JobSpec::parse_str(&spec.canonical_json()).unwrap();
            assert_eq!(reparsed, spec);
            assert_eq!(reparsed.job_id(), spec.job_id());
        }
    }

    #[test]
    fn job_id_distinguishes_grids_and_machines() {
        let a = JobSpec::parse_str(&sweep_spec("gf106")).unwrap();
        // GF106 and GF100 share Fermi timing, so their *microbench* shrinks
        // are the same machine and dedup together by design; the full chips
        // (different SM counts) must not.
        assert_eq!(
            a.job_id(),
            JobSpec::parse_str(&sweep_spec("gf100")).unwrap().job_id()
        );
        let full = |preset: &str| {
            JobSpec::parse_str(&format!(
                "{{\"preset\":{preset:?},\"microbench\":false,\
                 \"sweep\":{{\"footprints\":[4096,8192],\"strides\":[128]}}}}"
            ))
            .unwrap()
            .job_id()
        };
        assert_ne!(full("gf106"), full("gf100"));
        let b = JobSpec::parse_str(&sweep_spec("gk110")).unwrap();
        let c = JobSpec::parse_str(
            "{\"preset\":\"gf106\",\"sweep\":{\"footprints\":[4096,8192],\"strides\":[256]}}",
        )
        .unwrap();
        assert_ne!(a.job_id(), b.job_id());
        assert_ne!(a.job_id(), c.job_id());
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = [0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert!(hex_decode("0g").is_err());
        assert!(hex_decode("0").is_err());
    }
}
