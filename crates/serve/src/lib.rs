//! `gpu-serve`: simulation-as-a-service over the cache/snapshot substrate.
//!
//! The workspace's one-shot bins re-drive the simulator from scratch on
//! every invocation, even though the chase cache (content-addressed by
//! `latency_core::chase_key`), the `ArchDesc` hash keys, and full-fidelity
//! checkpoint/restore already exist. This crate turns those substrates into
//! a long-running job daemon:
//!
//! * [`spec`] — the JSON job schema (preset or inline `ArchDesc` frame ×
//!   sweep grid or checkpointed BFS) and deterministic job identity;
//! * [`proto`] — the newline-delimited JSON wire protocol, typed errors,
//!   and the capped line reader;
//! * [`server`] — dedup (job- and point-level), the bounded worker pool,
//!   JSONL event streaming, durable results, and boot-time crash recovery;
//! * [`client`] — the small blocking client used by `serve-client`, the
//!   bench suite, and the tests.
//!
//! Everything is std-only and rides on `gpu_trace::json` for parsing.

pub mod client;
pub mod proto;
pub mod server;
pub mod spec;

pub use client::{Client, WatchedRun};
pub use proto::{
    format_job_id, parse_job_id, parse_request, Request, RequestError, MAX_REQUEST_BYTES,
};
pub use server::{
    serve_session, serve_tcp, Server, ServerConfig, ServerHandle, Submission, WatchAttach,
};
pub use spec::{
    encode_arch_frame, preset_token, ArchSource, JobKind, JobSpec, SpecError, MAX_FOOTPRINT,
    MAX_NODES, SPEC_VERSION,
};

#[cfg(unix)]
pub use server::serve_unix;
