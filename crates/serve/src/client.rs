//! A small blocking client for the daemon protocol, shared by the
//! `serve-client` bin, the bench suite, and the integration tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;

use crate::proto::is_terminal_event;

/// Any bidirectional byte stream the client can ride on.
pub trait Stream: Read + Write + Send {}
impl<T: Read + Write + Send> Stream for T {}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<Box<dyn Stream>>,
    writer: Box<dyn Stream>,
}

/// Everything a watched submit produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchedRun {
    /// Every event line received, in order (including the terminal one).
    pub events: Vec<String>,
    /// The terminal line (`result`, `cancelled`, or `error`).
    pub terminal: String,
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(reader)),
            writer: Box::new(stream),
        })
    }

    /// Connects over a Unix socket.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(reader)),
            writer: Box::new(stream),
        })
    }

    /// Reads `state/serve.addr` (written by the daemon after binding) and
    /// connects to it; the daemon's way of publishing an ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates read and socket failures.
    pub fn connect_addr_file(path: &Path) -> std::io::Result<Client> {
        let addr = std::fs::read_to_string(path)?;
        Client::connect_tcp(addr.trim())
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one event line; `None` on EOF.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn recv(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if !trimmed.is_empty() {
                return Ok(Some(trimmed.to_string()));
            }
        }
    }

    /// Sends a request and returns the single response line.
    ///
    /// # Errors
    ///
    /// An early EOF surfaces as `UnexpectedEof`.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            )
        })
    }

    /// Sends a request and collects events until the terminal line.
    ///
    /// # Errors
    ///
    /// An EOF before the terminal line surfaces as `UnexpectedEof`.
    pub fn request_watched(&mut self, line: &str) -> std::io::Result<WatchedRun> {
        self.send(line)?;
        let mut events = Vec::new();
        loop {
            let Some(event) = self.recv()? else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the stream before the terminal event",
                ));
            };
            let terminal = is_terminal_event(&event);
            events.push(event.clone());
            if terminal {
                return Ok(WatchedRun {
                    events,
                    terminal: event,
                });
            }
        }
    }

    /// Submits a spec and watches it to completion.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn submit_watched(&mut self, spec_json: &str) -> std::io::Result<WatchedRun> {
        self.request_watched(&format!(
            "{{\"cmd\":\"submit\",\"watch\":true,\"spec\":{spec_json}}}"
        ))
    }
}
