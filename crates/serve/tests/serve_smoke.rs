//! End-to-end daemon pins, mirroring the CI smoke job:
//!
//! 1. two concurrent clients submitting an identical sweep trigger exactly
//!    one simulator execution per grid point and receive bit-identical
//!    result lines;
//! 2. kill -9 mid-BFS-job, restart on the same state dir, and the job
//!    completes with a result line byte-identical to an uninterrupted run
//!    on a fresh daemon.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gpu_serve::client::Client;
use gpu_trace::json::{parse, Value};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(state: &Path) -> Child {
    // A fresh bind must publish a fresh address: drop any stale file first
    // so wait_addr can't race onto a dead port.
    let _ = std::fs::remove_file(state.join("serve.addr"));
    Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--listen", "127.0.0.1:0", "--workers", "2", "--state"])
        .arg(state)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve")
}

fn wait_addr(state: &Path) -> String {
    let path = state.join("serve.addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(addr) = std::fs::read_to_string(&path) {
            if addr.contains(':') {
                return addr.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never published an address"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn num(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_num).unwrap_or_else(|| {
        panic!("missing numeric {key:?} in {v:?}");
    }) as u64
}

const SWEEP_SPEC: &str = "{\"preset\":\"gf106\",\
     \"sweep\":{\"footprints\":[2048,4096],\"strides\":[128,512]}}";

const BFS_SPEC: &str = "{\"preset\":\"gf106\",\
     \"bfs\":{\"nodes\":1024,\"degree\":6,\"seed\":11,\"block_dim\":64,\
     \"checkpoint_every\":1500}}";

#[test]
fn concurrent_clients_dedup_to_one_execution() {
    let state = tmp_dir("dedup");
    let mut daemon = spawn_daemon(&state);
    let addr = wait_addr(&state);

    let submit = |addr: String| {
        std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).expect("connect");
            client.submit_watched(SWEEP_SPEC).expect("watched submit")
        })
    };
    let a = submit(addr.clone());
    let b = submit(addr.clone());
    let run_a = a.join().unwrap();
    let run_b = b.join().unwrap();
    // Bit-identical terminal lines for both clients.
    assert_eq!(run_a.terminal, run_b.terminal);
    let result = parse(&run_a.terminal).unwrap();
    assert_eq!(result.get("status").and_then(Value::as_str), Some("done"));
    assert!(result.get("content_hash").is_some());

    let mut client = Client::connect_tcp(&addr).unwrap();
    let stats = parse(&client.request("{\"cmd\":\"stats\"}").unwrap()).unwrap();
    // One of the two submissions joined the other...
    assert_eq!(num(&stats, "jobs_submitted"), 1);
    assert_eq!(num(&stats, "jobs_deduped"), 1);
    // ...and each of the 4 grid points ran exactly once.
    assert_eq!(num(&stats, "points_executed"), 4);
    assert_eq!(num(&stats, "jobs_completed"), 1);

    // A third, late submission dedups onto the finished job: zero new work.
    let rerun = client.submit_watched(SWEEP_SPEC).unwrap();
    assert_eq!(rerun.terminal, run_a.terminal);
    let stats = parse(&client.request("{\"cmd\":\"stats\"}").unwrap()).unwrap();
    assert_eq!(num(&stats, "points_executed"), 4);
    assert_eq!(num(&stats, "jobs_deduped"), 2);

    let _ = client.request("{\"cmd\":\"shutdown\"}");
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn kill_dash_nine_then_restart_completes_bit_identically() {
    // Reference: an uninterrupted daemon on a fresh state dir.
    let straight_state = tmp_dir("straight");
    let mut straight_daemon = spawn_daemon(&straight_state);
    let straight_addr = wait_addr(&straight_state);
    let mut client = Client::connect_tcp(&straight_addr).unwrap();
    let straight = client.submit_watched(BFS_SPEC).unwrap();
    let result = parse(&straight.terminal).unwrap();
    assert_eq!(result.get("status").and_then(Value::as_str), Some("done"));
    let _ = client.request("{\"cmd\":\"shutdown\"}");
    let _ = straight_daemon.wait();

    // Victim: same job, killed -9 once the first checkpoint lands.
    let state = tmp_dir("victim");
    let mut daemon = spawn_daemon(&state);
    let addr = wait_addr(&state);
    let mut client = Client::connect_tcp(&addr).unwrap();
    let accepted = parse(
        &client
            .request(&format!("{{\"cmd\":\"submit\",\"spec\":{BFS_SPEC}}}"))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        accepted.get("event").and_then(Value::as_str),
        Some("accepted")
    );
    let job = accepted
        .get("job")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();

    let ckpt_dir = state.join("jobs").join(&job).join("ckpt");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let has_ckpt = std::fs::read_dir(&ckpt_dir)
            .map(|mut d| d.next().is_some())
            .unwrap_or(false);
        if has_ckpt {
            break;
        }
        // If the job beat us to completion the kill proves nothing: fail
        // loudly so the checkpoint cadence gets retuned.
        assert!(
            !state.join("jobs").join(&job).join("result.json").exists(),
            "job finished before the first checkpoint; lower checkpoint_every"
        );
        assert!(Instant::now() < deadline, "no checkpoint appeared");
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon.kill().expect("kill -9 the daemon");
    let _ = daemon.wait();

    // Restart on the same state dir: recovery re-enqueues the job and
    // resumes from the newest checkpoint.
    let mut daemon = spawn_daemon(&state);
    let addr = wait_addr(&state);
    let mut client = Client::connect_tcp(&addr).unwrap();
    let watched = client
        .request_watched(&format!("{{\"cmd\":\"watch\",\"job\":{job:?}}}"))
        .unwrap();
    assert_eq!(
        watched.terminal, straight.terminal,
        "resumed result must be byte-identical to the uninterrupted run"
    );
    let stats = parse(&client.request("{\"cmd\":\"stats\"}").unwrap()).unwrap();
    assert_eq!(num(&stats, "jobs_recovered"), 1);

    let _ = client.request("{\"cmd\":\"shutdown\"}");
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&straight_state);
}
