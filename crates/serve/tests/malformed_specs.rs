//! Satellite: malformed job specs — garbage JSON, unknown commands, unknown
//! presets, corrupt `ArchDesc` frames, zero-point grids, and oversized
//! request lines — must each come back as a typed JSON error event, and none
//! of them may kill the daemon or its connection loop. The pin: after every
//! bad line on the *same* connection, a valid submit still runs to a result.

use std::io::Write;
use std::process::{Command, Stdio};

use gpu_trace::json::{parse, Value};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-malformed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn typed_errors_never_kill_the_session() {
    let state = tmp_dir("stdio");
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--stdio", "--state"])
        .arg(&state)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve --stdio");

    let garbage_frame = "00112233445566778899aabbccddeeff";
    let oversized = format!("{{\"cmd\":\"submit\",\"pad\":\"{}\"}}", "x".repeat(2 << 20));
    let requests = [
        // (line, expected error code or "" for success)
        ("this is not json", "bad_json"),
        ("{\"no\":\"cmd\"}", "missing_cmd"),
        ("{\"cmd\":\"fly\"}", "unknown_cmd"),
        ("{\"cmd\":\"submit\"}", "missing_spec"),
        (
            "{\"cmd\":\"submit\",\"spec\":{\"preset\":\"gtx9000\",\
             \"sweep\":{\"footprints\":[4096],\"strides\":[128]}}}",
            "unknown_preset",
        ),
        (
            "{\"cmd\":\"submit\",\"spec\":{\"arch\":\"zz\",\
             \"sweep\":{\"footprints\":[4096],\"strides\":[128]}}}",
            "bad_arch_frame",
        ),
        (
            // Valid hex, but the bytes are not an ArchDesc frame.
            "{\"cmd\":\"submit\",\"spec\":{\"arch\":\"GARBAGE\",\
             \"sweep\":{\"footprints\":[4096],\"strides\":[128]}}}",
            "bad_arch_frame",
        ),
        (
            // Every candidate point has a chain shorter than two elements.
            "{\"cmd\":\"submit\",\"spec\":{\"preset\":\"gf106\",\
             \"sweep\":{\"footprints\":[1024],\"strides\":[2048]}}}",
            "empty_grid",
        ),
        (
            "{\"cmd\":\"submit\",\"spec\":{\"preset\":\"gf106\",\
             \"sweep\":{\"footprints\":[4096],\"strides\":[100]}}}",
            "bad_field",
        ),
        (
            "{\"cmd\":\"submit\",\"spec\":{\"preset\":\"gf106\",\
             \"bfs\":{\"nodes\":0,\"degree\":4,\"seed\":1,\"block_dim\":32,\
             \"checkpoint_every\":1000}}}",
            "bad_field",
        ),
        (oversized.as_str(), "oversized_request"),
        ("{\"cmd\":\"status\",\"job\":\"nothex\"}", "bad_job_id"),
        (
            "{\"cmd\":\"status\",\"job\":\"0000000000000000\"}",
            "unknown_job",
        ),
    ];

    let mut stdin = child.stdin.take().unwrap();
    let mut input = String::new();
    for (line, _) in &requests {
        input.push_str(line.replace("GARBAGE", garbage_frame).as_str());
        input.push('\n');
    }
    // The survival pin: a real job after all that abuse, watched to its
    // terminal line.
    input.push_str(
        "{\"cmd\":\"submit\",\"watch\":true,\"spec\":{\"preset\":\"gf106\",\
         \"sweep\":{\"footprints\":[2048],\"strides\":[256]}}}\n",
    );
    // Writer thread: the oversized line is larger than any pipe buffer, so
    // feed the daemon concurrently with collecting its output.
    let writer = std::thread::spawn(move || {
        stdin.write_all(input.as_bytes()).unwrap();
        drop(stdin);
    });
    let out = child.wait_with_output().expect("serve exited");
    writer.join().unwrap();
    assert!(out.status.success(), "daemon died: {:?}", out.status);

    let lines: Vec<&str> = std::str::from_utf8(&out.stdout)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .collect();
    for (i, (request, code)) in requests.iter().enumerate() {
        let v = parse(lines[i]).unwrap_or_else(|e| panic!("line {i} not JSON ({e}): {}", lines[i]));
        assert_eq!(
            v.get("event").and_then(Value::as_str),
            Some("error"),
            "request {request:?} should error, got {}",
            lines[i]
        );
        assert_eq!(
            v.get("code").and_then(Value::as_str),
            Some(*code),
            "request {request:?}"
        );
    }
    // After all the errors: accepted, then a done result.
    let tail = &lines[requests.len()..];
    let accepted = parse(tail[0]).unwrap();
    assert_eq!(
        accepted.get("event").and_then(Value::as_str),
        Some("accepted")
    );
    let last = parse(tail.last().unwrap()).unwrap();
    assert_eq!(last.get("event").and_then(Value::as_str), Some("result"));
    assert_eq!(last.get("status").and_then(Value::as_str), Some("done"));

    let _ = std::fs::remove_dir_all(&state);
}
