//! Host crate for the repo-root integration tests (see `tests/`).
