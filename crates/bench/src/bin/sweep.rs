//! Full Wong-style stride × footprint sweep (the measurement grid behind
//! §II), plus mechanical parameter inference: plateaus, per-level
//! capacities, and the L1 line size.
//!
//! ```text
//! cargo run --release -p latency-bench --bin sweep [arch] [--threads N]
//! arch: tesla | fermi | kepler | maxwell   (default fermi)
//! ```
//!
//! `--threads N` forces the measurement pool to N workers (`--threads 1`
//! is fully serial); the printed grid is identical for every worker count.

use latency_core::{
    detect_plateaus, infer_hierarchy, infer_line_size, pow2_range, ArchPreset, ChaseSpace, Sweep,
};

fn parse_args() -> ArchPreset {
    let mut preset = ArchPreset::FermiGf106;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "tesla" => preset = ArchPreset::TeslaGt200,
            "kepler" => preset = ArchPreset::KeplerGk104,
            "maxwell" => preset = ArchPreset::MaxwellGm107,
            "fermi" => preset = ArchPreset::FermiGf106,
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
                latency_core::parallel::set_worker_count(n);
            }
            other => {
                eprintln!("unknown argument '{other}' (tesla|fermi|kepler|maxwell, --threads N)");
                std::process::exit(2);
            }
        }
    }
    preset
}

fn main() {
    let preset = parse_args();
    let cfg = preset.config_microbench();
    println!("stride x footprint sweep on {}\n", preset.name());

    let footprints = pow2_range(2 * 1024, 512 * 1024);
    let strides = [128u64, 512, 2048, 8192];
    // One batched run over the whole grid: every measurable point fans out
    // across the worker pool at once.
    let grid = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &strides).expect("sweep runs");
    let cells: std::collections::HashMap<(u64, u64), f64> = grid
        .points()
        .iter()
        .map(|p| ((p.footprint, p.stride), p.latency))
        .collect();
    print!("{:>10}", "footprint");
    for s in strides {
        print!(" {s:>9}B");
    }
    println!("   (cycles per access)");
    for &f in &footprints {
        print!("{f:>10}");
        for &s in &strides {
            match cells.get(&(f, s)) {
                Some(lat) => print!(" {lat:>10.1}"),
                None => print!(" {:>10}", "-"),
            }
        }
        println!();
    }
    if grid.skipped_count() > 0 {
        println!(
            "({} of {} grid points skipped: chain shorter than 2 elements)",
            grid.skipped_count(),
            grid.points().len() + grid.skipped_count()
        );
    }

    // Mechanical inference over the 512 B column.
    let sweep = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &[512]).expect("sweep runs");
    let plateaus = detect_plateaus(&sweep.latencies(), 0.20);
    println!("\nplateaus at stride 512 B:");
    for p in &plateaus {
        println!("  {p}");
    }

    println!("\ninferred hierarchy (capacity bisection):");
    match infer_hierarchy(&cfg, ChaseSpace::Global, 512, 1024, 512 * 1024) {
        Ok(levels) => {
            for l in levels {
                if l.capacity_hi == u64::MAX {
                    println!("  memory: ~{:.0} cycles", l.latency);
                } else {
                    println!(
                        "  cache: ~{:.0} cycles, capacity {} KiB (bracket {}..{})",
                        l.latency,
                        l.capacity() / 1024,
                        l.capacity_lo,
                        l.capacity_hi
                    );
                }
            }
        }
        Err(e) => eprintln!("  inference failed: {e}"),
    }

    if cfg.l1.as_ref().is_some_and(|l1| l1.serve_global) {
        match infer_line_size(&cfg, 64 * 1024) {
            Ok(line) => println!("\ninferred L1 line size: {line} B"),
            Err(e) => eprintln!("line-size inference failed: {e}"),
        }
    }
}
