//! Full Wong-style stride × footprint sweep (the measurement grid behind
//! §II), plus mechanical parameter inference: plateaus, per-level
//! capacities, and the L1 line size.
//!
//! ```text
//! cargo run --release -p latency-bench --bin sweep [arch]
//! arch: tesla | fermi | kepler | maxwell   (default fermi)
//! ```

use latency_core::{
    detect_plateaus, infer_hierarchy, infer_line_size, pow2_range, ArchPreset, ChaseSpace, Sweep,
};

fn preset_from_arg() -> ArchPreset {
    match std::env::args().nth(1).as_deref() {
        Some("tesla") => ArchPreset::TeslaGt200,
        Some("kepler") => ArchPreset::KeplerGk104,
        Some("maxwell") => ArchPreset::MaxwellGm107,
        Some("fermi") | None => ArchPreset::FermiGf106,
        Some(other) => {
            eprintln!("unknown arch '{other}' (tesla|fermi|kepler|maxwell)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let preset = preset_from_arg();
    let cfg = preset.config_microbench();
    println!("stride x footprint sweep on {}\n", preset.name());

    let footprints = pow2_range(2 * 1024, 512 * 1024);
    let strides = [128u64, 512, 2048, 8192];
    print!("{:>10}", "footprint");
    for s in strides {
        print!(" {s:>9}B");
    }
    println!("   (cycles per access)");
    for &f in &footprints {
        print!("{f:>10}");
        for &s in &strides {
            if f / s < 2 {
                print!(" {:>10}", "-");
                continue;
            }
            let sweep = Sweep::run(&cfg, ChaseSpace::Global, &[f], &[s]).expect("sweep runs");
            print!(" {:>10.1}", sweep.points()[0].latency);
        }
        println!();
    }

    // Mechanical inference over the 512 B column.
    let sweep = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &[512]).expect("sweep runs");
    let plateaus = detect_plateaus(&sweep.latencies(), 0.20);
    println!("\nplateaus at stride 512 B:");
    for p in &plateaus {
        println!("  {p}");
    }

    println!("\ninferred hierarchy (capacity bisection):");
    match infer_hierarchy(&cfg, ChaseSpace::Global, 512, 1024, 512 * 1024) {
        Ok(levels) => {
            for l in levels {
                if l.capacity_hi == u64::MAX {
                    println!("  memory: ~{:.0} cycles", l.latency);
                } else {
                    println!(
                        "  cache: ~{:.0} cycles, capacity {} KiB (bracket {}..{})",
                        l.latency,
                        l.capacity() / 1024,
                        l.capacity_lo,
                        l.capacity_hi
                    );
                }
            }
        }
        Err(e) => eprintln!("  inference failed: {e}"),
    }

    if cfg.l1.as_ref().is_some_and(|l1| l1.serve_global) {
        match infer_line_size(&cfg, 64 * 1024) {
            Ok(line) => println!("\ninferred L1 line size: {line} B"),
            Err(e) => eprintln!("line-size inference failed: {e}"),
        }
    }
}
