//! Full Wong-style stride × footprint sweep (the measurement grid behind
//! §II), plus mechanical parameter inference: plateaus, per-level
//! capacities, and the L1 line size.
//!
//! ```text
//! cargo run --release -p latency-bench --bin sweep [arch] [--threads N]
//!     [--tick-threads N] [--cache DIR] [--json] [--bench-out FILE]
//! arch: tesla | fermi | gf100 | kepler | gk110 | maxwell   (default fermi;
//!       chip names like gt200/gf106/gk104/gm107 also work)
//! ```
//!
//! `--threads N` forces the measurement pool to N workers (`--threads 1`
//! is fully serial); the printed grid is identical for every worker count.
//! `--tick-threads N` additionally parallelises *inside* each simulated GPU
//! (SMs and partitions tick concurrently); results stay bit-identical, and
//! the grid pool shrinks to `threads / tick_threads` so the two compose
//! within one budget.
//! `--cache DIR` stores every measured grid point content-addressed under
//! DIR (same as the `LATENCY_CACHE` environment variable): a repeated sweep
//! then completes from disk without simulating anything. `--json` prints
//! the grid as JSON instead of the human tables. `--bench-out FILE` runs
//! the grid twice — cold, then warm from the cache — writes the wall-clock
//! comparison to FILE as JSON, and **fails** (exit 1) unless the warm pass
//! served at least 95% of its lookups from the cache and was faster.

use std::path::PathBuf;

use gpu_mem::PipelineSpace;
use gpu_sim::LevelKind;

use latency_core::{
    cache_stats, detect_plateaus, infer_hierarchy, infer_line_size, pow2_range, set_cache_dir,
    ArchPreset, CacheStats, ChaseSpace, Sweep,
};

struct Args {
    preset: ArchPreset,
    json: bool,
    cache: Option<PathBuf>,
    bench_out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        preset: ArchPreset::FermiGf106,
        json: false,
        cache: None,
        bench_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            name if ArchPreset::parse(name).is_some() => {
                parsed.preset = ArchPreset::parse(name).expect("guard checked");
            }
            "--json" => parsed.json = true,
            "--cache" => {
                let dir = args.next().unwrap_or_else(|| {
                    eprintln!("--cache needs a directory");
                    std::process::exit(2);
                });
                parsed.cache = Some(PathBuf::from(dir));
            }
            "--bench-out" => {
                let file = args.next().unwrap_or_else(|| {
                    eprintln!("--bench-out needs a file path");
                    std::process::exit(2);
                });
                parsed.bench_out = Some(PathBuf::from(file));
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
                latency_core::parallel::set_worker_count(n);
            }
            "--tick-threads" => {
                let raw = args.next().unwrap_or_default();
                let n =
                    latency_core::parse_tick_threads(&raw, "--tick-threads").unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
                latency_core::set_tick_threads(n);
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' (valid presets: {}; \
                     --threads N, --tick-threads N, --cache DIR, --json, --bench-out FILE)",
                    ArchPreset::valid_tokens()
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

/// The sweep grid shared by all output modes (one definition, in the
/// suite, so the bench harness measures exactly this grid).
fn grid_spec() -> (Vec<u64>, [u64; 4]) {
    latency_bench::sweep_grid_spec()
}

fn json_cache_stats(s: CacheStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"stores\": {}}}",
        s.hits, s.misses, s.stores
    )
}

/// Renders the measured grid as JSON (points, skipped combinations, and
/// this process's cache traffic).
fn grid_json(preset: ArchPreset, grid: &Sweep) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"preset\": \"{}\",\n", preset.name()));
    out.push_str("  \"points\": [\n");
    for (i, p) in grid.points().iter().enumerate() {
        let sep = if i + 1 == grid.points().len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"footprint\": {}, \"stride\": {}, \"latency\": {}}}{sep}\n",
            p.footprint, p.stride, p.latency
        ));
    }
    out.push_str("  ],\n  \"skipped\": [\n");
    for (i, s) in grid.skipped().iter().enumerate() {
        let sep = if i + 1 == grid.skipped().len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"footprint\": {}, \"stride\": {}, \"reason\": \"{}\"}}{sep}\n",
            s.footprint, s.stride, s.reason
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"cache\": {}\n}}\n",
        json_cache_stats(cache_stats())
    ));
    out
}

/// The `--bench-out` mode: measures the same grid cold (empty cache) and
/// warm (fully populated cache) via the shared suite
/// ([`latency_bench::run_sweep_bench`]), writes the comparison as JSON,
/// and fails unless the cache actually carried the warm pass.
fn run_bench(preset: ArchPreset, cache: Option<PathBuf>, out_file: &PathBuf) {
    let bench = latency_bench::run_sweep_bench(preset, cache);
    let json = bench.json();
    std::fs::write(out_file, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", out_file.display());
        std::process::exit(1);
    });
    print!("{json}");
    if let Err(e) = bench.check() {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }
}

fn main() {
    // A zero or garbled LATENCY_TICK_THREADS would otherwise silently fall
    // back to serial ticking; refuse it up front like a bad flag.
    if let Err(e) = latency_core::env_tick_threads() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let args = parse_args();
    if let Some(dir) = &args.cache {
        set_cache_dir(dir);
    }
    if let Some(out_file) = &args.bench_out {
        run_bench(args.preset, args.cache.clone(), out_file);
        return;
    }
    let preset = args.preset;
    let cfg = preset.config_microbench();
    if args.json {
        let (footprints, strides) = grid_spec();
        let grid = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &strides).expect("sweep runs");
        print!("{}", grid_json(preset, &grid));
        return;
    }
    println!("stride x footprint sweep on {}\n", preset.name());

    let footprints = pow2_range(2 * 1024, 512 * 1024);
    let strides = [128u64, 512, 2048, 8192];
    // One batched run over the whole grid: every measurable point fans out
    // across the worker pool at once.
    let grid = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &strides).expect("sweep runs");
    let cells: std::collections::HashMap<(u64, u64), f64> = grid
        .points()
        .iter()
        .map(|p| ((p.footprint, p.stride), p.latency))
        .collect();
    print!("{:>10}", "footprint");
    for s in strides {
        print!(" {s:>9}B");
    }
    println!("   (cycles per access)");
    for &f in &footprints {
        print!("{f:>10}");
        for &s in &strides {
            match cells.get(&(f, s)) {
                Some(lat) => print!(" {lat:>10.1}"),
                None => print!(" {:>10}", "-"),
            }
        }
        println!();
    }
    if grid.skipped_count() > 0 {
        println!(
            "({} of {} grid points skipped: chain shorter than 2 elements)",
            grid.skipped_count(),
            grid.points().len() + grid.skipped_count()
        );
    }

    // Mechanical inference over the 512 B column.
    let sweep = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &[512]).expect("sweep runs");
    let plateaus = detect_plateaus(&sweep.latencies(), 0.20);
    println!("\nplateaus at stride 512 B:");
    for p in &plateaus {
        println!("  {p}");
    }

    println!("\ninferred hierarchy (capacity bisection):");
    match infer_hierarchy(&cfg, ChaseSpace::Global, 512, 1024, 512 * 1024) {
        Ok(levels) => {
            for l in levels {
                if l.capacity_hi == u64::MAX {
                    println!("  memory: ~{:.0} cycles", l.latency);
                } else {
                    println!(
                        "  cache: ~{:.0} cycles, capacity {} KiB (bracket {}..{})",
                        l.latency,
                        l.capacity() / 1024,
                        l.capacity_lo,
                        l.capacity_hi
                    );
                }
            }
        }
        Err(e) => eprintln!("  inference failed: {e}"),
    }

    if cfg.arch_desc().serves(LevelKind::L1, PipelineSpace::Global) {
        match infer_line_size(&cfg, 64 * 1024) {
            Ok(line) => println!("\ninferred L1 line size: {line} B"),
            Err(e) => eprintln!("line-size inference failed: {e}"),
        }
    }
}
