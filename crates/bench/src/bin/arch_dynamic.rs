//! Cross-generation dynamic comparison: the same BFS on every modeled
//! architecture. The paper's §II shows *static* pipeline latency increased
//! over generations; this extension asks what the *dynamic* (loaded) load
//! latencies and exposure do across the same machines.
//!
//! ```text
//! cargo run --release -p latency-bench --bin arch_dynamic
//! ```

use latency_bench::{run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, ExposureAnalysis};

fn main() {
    let exp = BfsExperiment {
        nodes: 8192,
        degree: 8,
        seed: 20150301,
        block_dim: 128,
    };
    println!(
        "BFS ({} nodes, degree {}) across GPU generations\n",
        exp.nodes, exp.degree
    );
    println!(
        "{:>18} {:>10} {:>12} {:>14} {:>10}",
        "arch", "cycles", "mean load", "p95 load", "exposed"
    );
    for preset in ArchPreset::ALL {
        let run = match run_bfs_traced(preset.config(), &exp) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{:>18}  failed: {e}", preset.name());
                continue;
            }
        };
        let mut lat: Vec<u64> = run.loads.iter().map(|l| l.total()).collect();
        lat.sort_unstable();
        let mean = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;
        let p95 = lat.get(lat.len() * 95 / 100).copied().unwrap_or(0);
        let exposure = ExposureAnalysis::from_loads(&run.loads, 24);
        println!(
            "{:>18} {:>10} {:>12.0} {:>14} {:>9.1}%",
            preset.name(),
            run.cycles,
            mean,
            p95,
            100.0 * exposure.overall_exposed_fraction()
        );
    }
    println!(
        "\nper-machine results are not normalized for SM/partition counts;\n\
         the interesting column is mean load latency, which tracks each\n\
         generation's pipeline depth and cache policy under load."
    );
}
