//! Unified benchmark and perf-regression harness.
//!
//! ```text
//! cargo run --release -p latency-bench --bin bench -- [--check]
//!     [--update-baselines] [--suites sweep,tick,workloads,serve,validation]
//!     [--out DIR] [--baseline-dir DIR] [--inject-regression] [--progress]
//! ```
//!
//! Runs the five benchmarks from [`latency_bench::suite`] and
//! [`latency_bench::reference`] — the sweep cold/warm cache comparison, the
//! tick-parallelism scaling record, end-to-end workload throughput (one
//! section per measured generation, paper-era and modern), the serve
//! daemon's cold vs cache-hit job throughput, and the published-reference
//! validation of every registered preset — under the host-side
//! self-profiler, and writes the fresh `BENCH_*.json` results plus
//! `profile.json`/`profile.txt` to `--out` (default `bench-out/`) as CI
//! artifacts.
//!
//! `--check` then compares each result against the committed baseline in
//! `--baseline-dir` (default `.`) under [`latency_bench::regression`]'s
//! rules: anything derived from the simulation alone (content hashes,
//! cycle/instruction counts, grid shape) must reproduce exactly and fails
//! the run on any host; wall-clock metrics are thresholded and downgraded
//! to warnings on a single-CPU host or when the baseline was measured on a
//! different CPU count. `--update-baselines` rewrites the committed files
//! instead. `--inject-regression` deliberately corrupts the fresh results
//! (hash flip + 100× slowdown) after measuring, so CI can prove the
//! harness actually fails when it should.

use std::path::PathBuf;
use std::process::exit;

use latency_bench::{
    compare_json, run_serve_bench, run_sweep_bench, run_tick_bench, run_validation_bench,
    run_workload_bench, workloads_json, ProgressHeartbeat, Thresholds, Workload, SERVE_CLIENTS,
};
use latency_core::ArchPreset;

/// Presets are pinned per suite so results stay comparable with the
/// committed baselines: the sweep baseline is GF106 (the §II measurement
/// chip), tick scaling uses the full GF100, and workload throughput runs
/// one section per generation — the paper-era GF100 plus the sectored,
/// sliced GV100 — so the modern timing model's hashes are pinned too.
const SWEEP_PRESET: ArchPreset = ArchPreset::FermiGf106;
const FULL_PRESET: ArchPreset = ArchPreset::FermiGf100;
const MODERN_PRESET: ArchPreset = ArchPreset::VoltaGv100;
const TICK_THREADS: [usize; 4] = [1, 2, 4, 8];

struct Args {
    suites: Vec<String>,
    out: PathBuf,
    baseline_dir: PathBuf,
    check: bool,
    update: bool,
    inject: bool,
    progress: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench [--check] [--update-baselines]\n\
         \x20            [--suites sweep,tick,workloads,serve,validation]\n\
         \x20            [--out DIR] [--baseline-dir DIR] [--inject-regression] [--progress]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        suites: vec![
            "sweep".to_string(),
            "tick".to_string(),
            "workloads".to_string(),
            "serve".to_string(),
            "validation".to_string(),
        ],
        out: PathBuf::from("bench-out"),
        baseline_dir: PathBuf::from("."),
        check: false,
        update: false,
        inject: false,
        progress: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--suites" => {
                parsed.suites = val("--suites").split(',').map(str::to_string).collect();
                if parsed.suites.is_empty() {
                    usage();
                }
            }
            "--out" => parsed.out = PathBuf::from(val("--out")),
            "--baseline-dir" => parsed.baseline_dir = PathBuf::from(val("--baseline-dir")),
            "--check" => parsed.check = true,
            "--update-baselines" => parsed.update = true,
            "--inject-regression" => parsed.inject = true,
            "--progress" => parsed.progress = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    parsed
}

/// One finished suite: its artifact filename and rendered JSON.
struct SuiteResult {
    name: &'static str,
    file: &'static str,
    json: String,
}

fn run_suites(args: &Args) -> Vec<SuiteResult> {
    let mut results = Vec::new();
    for suite in &args.suites {
        match suite.as_str() {
            "sweep" => {
                println!("[bench] sweep: cold+warm grid on {}", SWEEP_PRESET.name());
                let mut b = run_sweep_bench(SWEEP_PRESET, None);
                if let Err(e) = b.check() {
                    eprintln!("FAIL: sweep bench self-check: {e}");
                    exit(1);
                }
                if args.inject {
                    b.simulated_cycles += 1;
                    b.warm_wall_seconds *= 100.0;
                }
                println!(
                    "[bench] sweep: {} points, cold {:.3}s, warm {:.3}s, hit rate {:.1}%",
                    b.grid_points,
                    b.cold_wall_seconds,
                    b.warm_wall_seconds,
                    b.warm_hit_rate() * 100.0
                );
                results.push(SuiteResult {
                    name: "sweep",
                    file: "BENCH_sweep.json",
                    json: b.json(),
                });
            }
            "tick" => {
                println!(
                    "[bench] tick: bfs scaling on {} at {:?} threads",
                    FULL_PRESET.name(),
                    TICK_THREADS
                );
                let mut b = run_tick_bench(FULL_PRESET, 4096, 8, &TICK_THREADS);
                if let Err(e) = b.check() {
                    eprintln!("FAIL: tick bench determinism: {e}");
                    exit(1);
                }
                for m in &b.runs {
                    println!(
                        "[bench] tick: threads={:<2} wall={:.3}s cycles={} hash={:016x}",
                        m.tick_threads, m.wall_seconds, m.cycles, m.content_hash
                    );
                }
                if args.inject {
                    for r in &mut b.runs {
                        r.content_hash ^= 0xdead_beef;
                        r.wall_seconds *= 100.0;
                    }
                }
                results.push(SuiteResult {
                    name: "tick",
                    file: "BENCH_tick.json",
                    json: b.json(),
                });
            }
            "workloads" => {
                let mut sections = Vec::new();
                for preset in [FULL_PRESET, MODERN_PRESET] {
                    println!(
                        "[bench] workloads: {} end-to-end runs on {}",
                        Workload::ALL.len(),
                        preset.name()
                    );
                    let mut b = match run_workload_bench(preset, &Workload::ALL) {
                        Ok(b) => b,
                        Err(e) => {
                            eprintln!("FAIL: workload bench ({}): {e}", preset.name());
                            exit(1);
                        }
                    };
                    for r in &b.runs {
                        println!(
                            "[bench] workloads: {:<10} cycles={:<8} wall={:.3}s hash={:016x}",
                            r.workload.name(),
                            r.cycles,
                            r.wall_seconds,
                            r.content_hash
                        );
                    }
                    if args.inject {
                        for r in &mut b.runs {
                            r.content_hash ^= 0xdead_beef;
                            r.wall_seconds *= 100.0;
                        }
                    }
                    sections.push(b);
                }
                results.push(SuiteResult {
                    name: "workloads",
                    file: "BENCH_workloads.json",
                    json: workloads_json(&sections),
                });
            }
            "serve" => {
                println!(
                    "[bench] serve: {SERVE_CLIENTS} clients, cold+cache-hit daemon on {}",
                    SWEEP_PRESET.name()
                );
                let mut b = run_serve_bench(SWEEP_PRESET, SERVE_CLIENTS, None);
                if let Err(e) = b.check() {
                    eprintln!("FAIL: serve bench self-check: {e}");
                    exit(1);
                }
                println!(
                    "[bench] serve: {} points, cold {:.3}s ({:.2} jobs/s), \
                     warm {:.3}s ({:.2} jobs/s), hash {}",
                    b.grid_points,
                    b.cold.wall_seconds,
                    b.cold.jobs_per_second(),
                    b.warm.wall_seconds,
                    b.warm.jobs_per_second(),
                    b.content_hash
                );
                if args.inject {
                    b.content_hash = format!("{:016x}", 0xdead_beef_u64);
                    b.cold.wall_seconds *= 100.0;
                    b.warm.wall_seconds *= 100.0;
                }
                results.push(SuiteResult {
                    name: "serve",
                    file: "BENCH_serve.json",
                    json: b.json(),
                });
            }
            "validation" => {
                println!(
                    "[bench] validation: {} presets vs published reference tables",
                    ArchPreset::ALL.len()
                );
                let mut b = match run_validation_bench(&ArchPreset::ALL) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("FAIL: validation bench: {e}");
                        exit(1);
                    }
                };
                if let Err(e) = b.check() {
                    eprintln!("FAIL: validation bench self-check:\n{e}");
                    exit(1);
                }
                for row in &b.rows {
                    println!(
                        "[bench] validation: {:<16} {} level(s) within tolerance",
                        row.preset.token(),
                        row.levels.len()
                    );
                }
                if args.inject {
                    if let Some(l) = b.rows.iter_mut().find_map(|r| r.levels.first_mut()) {
                        l.measured += 100.0;
                    }
                }
                results.push(SuiteResult {
                    name: "validation",
                    file: "BENCH_validation.json",
                    json: b.json(),
                });
            }
            other => {
                eprintln!("unknown suite: {other} (sweep, tick, workloads, serve, validation)");
                exit(2);
            }
        }
    }
    results
}

fn write_file(path: &std::path::Path, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", path.display());
        exit(1);
    });
}

fn main() {
    // A zero or garbled LATENCY_TICK_THREADS would otherwise silently fall
    // back to serial ticking; refuse it up front like a bad flag.
    if let Err(e) = latency_core::env_tick_threads() {
        eprintln!("{e}");
        exit(2);
    }
    let args = parse_args();
    // The whole suite runs under the self-profiler: profile.json is part of
    // the artifact set, and enabling it never changes simulation results.
    gpu_sim::profile::set_enabled(true);
    let heartbeat = args.progress.then(|| ProgressHeartbeat::start("bench"));
    let results = run_suites(&args);
    drop(heartbeat);

    std::fs::create_dir_all(&args.out).unwrap_or_else(|e| {
        eprintln!("failed to create {}: {e}", args.out.display());
        exit(1);
    });
    for r in &results {
        write_file(&args.out.join(r.file), &r.json);
    }
    let report = gpu_sim::profile::report();
    write_file(&args.out.join("profile.json"), &report.json());
    write_file(&args.out.join("profile.txt"), &report.text());
    println!(
        "[bench] artifacts in {}: {} + profile.json/profile.txt",
        args.out.display(),
        results
            .iter()
            .map(|r| r.file)
            .collect::<Vec<_>>()
            .join(", ")
    );

    if args.update {
        for r in &results {
            write_file(&args.baseline_dir.join(r.file), &r.json);
            println!(
                "[bench] baseline updated: {}",
                args.baseline_dir.join(r.file).display()
            );
        }
        return;
    }
    if !args.check {
        return;
    }

    // Timing regressions cannot be trusted on a single-CPU host (the tick
    // pool has nothing to scale onto); determinism divergence always can.
    let warn_only = latency_bench::host_cpus() == 1;
    let mut fatal = false;
    let mut warnings = 0usize;
    for r in &results {
        let path = args.baseline_dir.join(r.file);
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "FAIL: {}: no baseline at {} ({e}); run --update-baselines and commit it",
                    r.name,
                    path.display()
                );
                fatal = true;
                continue;
            }
        };
        match compare_json(&baseline, &r.json, &Thresholds::default(), warn_only) {
            Ok(cmp) => {
                if !cmp.findings.is_empty() {
                    print!(
                        "[bench] {} vs {}:\n{}",
                        r.name,
                        path.display(),
                        cmp.render()
                    );
                }
                warnings += cmp.warnings();
                if cmp.fatal() {
                    fatal = true;
                }
            }
            Err(e) => {
                eprintln!("FAIL: {}: {e}", r.name);
                fatal = true;
            }
        }
    }
    if fatal {
        eprintln!("FAIL: benchmark regression check failed");
        exit(1);
    }
    println!("[bench] check passed ({warnings} timing warnings)");
}
