//! E4: the paper's §III remark that "other workloads similarly showed
//! queueing and arbitration as the two key latency contributors" — the
//! Figure-1 analysis repeated for vecadd, matmul, reduce and spmv.
//!
//! ```text
//! cargo run --release -p latency-bench --bin other_workloads
//! ```

use latency_bench::{run_workload_traced, Workload};
use latency_core::{ArchPreset, Component, ExposureAnalysis, LatencyBreakdown};

fn main() {
    println!("E4: latency component shares per workload (GF100 config)\n");
    print!("{:>8}", "workload");
    for c in Component::ALL {
        print!(" {:>12}", c.label());
    }
    println!(" {:>9}", "exposed");
    for w in Workload::ALL {
        let run = match run_workload_traced(ArchPreset::FermiGf100.config(), w) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: failed: {e}", w.name());
                continue;
            }
        };
        let breakdown = LatencyBreakdown::from_requests(&run.requests, 48);
        let shares = breakdown.overall_percentages();
        let exposure = ExposureAnalysis::from_loads(&run.loads, 24);
        print!("{:>8}", w.name());
        for c in Component::ALL {
            print!(" {:>11.1}%", shares[c.index()]);
        }
        println!(" {:>8.1}%", 100.0 * exposure.overall_exposed_fraction());
    }
    println!(
        "\nqueueing components: L1toICNT (miss queue / injection), ICNTtoROP;\n\
         arbitration component: DRAM(QtoSch)."
    );
}
