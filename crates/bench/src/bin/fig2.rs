//! E3: regenerates the paper's **Figure 2** — the fraction of global-memory
//! load latency that was *exposed* (not hidden by other work) during BFS on
//! the GF100 configuration.
//!
//! ```text
//! cargo run --release -p latency-bench --bin fig2
//! ```

use latency_bench::{run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, ExposureAnalysis};

fn main() {
    let exp = BfsExperiment::default();
    println!("Figure 2: exposed vs hidden global load latency, BFS kernel");
    println!(
        "config: {}, graph: {} nodes, avg degree {}\n",
        ArchPreset::FermiGf100.name(),
        exp.nodes,
        exp.degree
    );
    let run = match run_bfs_traced(ArchPreset::FermiGf100.config(), &exp) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fig2 failed: {e}");
            std::process::exit(1);
        }
    };
    let (analysis, overflow) = ExposureAnalysis::from_loads_clipped(&run.loads, 24, 0.99);
    print!("{analysis}");
    println!(
        "\nanalyzed loads: {} (+{overflow} beyond the 99th percentile)\noverall exposed fraction: {:.1}%",
        analysis.total_loads(),
        100.0 * analysis.overall_exposed_fraction()
    );
    println!(
        "loads in buckets with >50% exposure: {:.1}% (paper: \"more than 50%\n\
         for most of the global memory load instructions\")",
        100.0 * analysis.buckets_exceeding(0.5)
    );
}
