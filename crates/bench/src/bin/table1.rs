//! E1: regenerates the paper's **Table I** — static latencies of the
//! global/local memory pipeline across four GPU generations.
//!
//! ```text
//! cargo run --release -p latency-bench --bin table1 [--threads N]
//!     [--preset NAME]...
//! ```
//!
//! `--threads N` forces the measurement pool to N workers (`--threads 1`
//! is fully serial); the printed table is identical for every worker count.
//! `--preset NAME` (repeatable) restricts the table to the named
//! architectures — any registered preset works, including ones outside the
//! paper's four Table I columns (e.g. `gk110`) — which is how the CI matrix
//! measures one generation per job.

use latency_bench::run_table1;
use latency_core::{ArchPreset, Table1};

fn main() {
    let mut presets: Vec<ArchPreset> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
                latency_core::parallel::set_worker_count(n);
            }
            "--preset" => {
                let name = args.next().unwrap_or_else(|| {
                    eprintln!("--preset needs a name");
                    std::process::exit(2);
                });
                presets.push(ArchPreset::parse(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown preset: {name} (valid presets: {})",
                        ArchPreset::valid_tokens()
                    );
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' (usage: table1 [--threads N] [--preset NAME]...)"
                );
                std::process::exit(2);
            }
        }
    }
    println!("Table I: latencies of memory loads through the global memory");
    println!("pipeline over four generations of NVIDIA GPUs (cycles)\n");
    let result = if presets.is_empty() {
        run_table1()
    } else {
        Table1::measure_presets(&presets)
    };
    match result {
        Ok(table) => {
            print!("{table}");
            println!(
                "\nmax relative error vs. paper: {:.2}%",
                100.0 * table.max_rel_error()
            );
        }
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}
