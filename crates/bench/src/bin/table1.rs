//! E1: regenerates the paper's **Table I** — static latencies of the
//! global/local memory pipeline across four GPU generations.
//!
//! ```text
//! cargo run --release -p latency-bench --bin table1
//! ```

use latency_bench::run_table1;

fn main() {
    println!("Table I: latencies of memory loads through the global memory");
    println!("pipeline over four generations of NVIDIA GPUs (cycles)\n");
    match run_table1() {
        Ok(table) => {
            print!("{table}");
            println!(
                "\nmax relative error vs. paper: {:.2}%",
                100.0 * table.max_rel_error()
            );
        }
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}
