//! E7: idle vs. loaded latency — the bridge between the paper's static
//! (Table I) and dynamic (Figures 1–2) analyses. A single pointer-chasing
//! thread measures the global pipeline while streamer CTAs apply increasing
//! bandwidth pressure; the inflation is pure queueing and arbitration.
//!
//! ```text
//! cargo run --release -p latency-bench --bin loaded_latency
//! ```

use latency_core::{measure_chase_under_load, ArchPreset, ChaseParams};

fn main() {
    let cfg = ArchPreset::FermiGf100.config();
    // DRAM-resident chase on the full 15-SM machine (2 MiB ring: beyond the
    // 768 KiB aggregate L2, small enough to keep the sweep quick).
    let params = ChaseParams::global(2 * 1024 * 1024, 4096);
    println!("E7: chase latency vs interference, {}\n", cfg.name);
    println!("{:>14} {:>18}", "streamer CTAs", "cycles/access");
    let mut base = None;
    for ctas in [0u32, 8, 32, 96] {
        match measure_chase_under_load(&cfg, &params, ctas) {
            Ok(lat) => {
                let b = *base.get_or_insert(lat);
                println!("{ctas:>14} {lat:>18.1}   ({:.2}x idle)", lat / b);
            }
            Err(e) => {
                eprintln!("{ctas:>14} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "\nthe idle latency of Table I is a lower bound; under load the same\n\
         access inflates through queueing and DRAM arbitration — the dynamic\n\
         components of Figure 1."
    );
}
