//! Intra-run tick-parallelism benchmark: one multi-SM workload measured at
//! several tick-thread counts, verifying bit-identity while timing each.
//!
//! ```text
//! cargo run --release -p latency-bench --bin tick -- [arch]
//!     [--nodes N] [--degree N] [--threads LIST] [--out FILE]
//! ```
//!
//! Runs a mask BFS on the full (all-SMs) preset once per entry in LIST
//! (default `1,2,4,8`), writes the wall-clock comparison to FILE
//! (default `BENCH_tick.json`), and **fails** unless every parallel run
//! produced exactly the serial run's `content_hash`. Host CPU count is
//! recorded alongside the timings: on a single-core host the parallel
//! schedule cannot be faster than serial, and the numbers will honestly
//! say so — the artifact is a scaling record, not a marketing claim.

use std::path::PathBuf;
use std::time::Instant;

use gpu_sim::Gpu;
use gpu_workloads::bfs::{read_costs, run_bfs_mask, upload_graph_mask};
use gpu_workloads::Graph;
use latency_core::ArchPreset;

struct Args {
    preset: ArchPreset,
    nodes: u32,
    degree: u32,
    threads: Vec<usize>,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: tick [tesla|fermi|gf100|kepler|gk110|maxwell] [--nodes N] [--degree N]\n\
         \x20           [--threads LIST] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        preset: ArchPreset::FermiGf100,
        nodes: 4096,
        degree: 8,
        threads: vec![1, 2, 4, 8],
        out: PathBuf::from("BENCH_tick.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            name if ArchPreset::parse(name).is_some() => {
                parsed.preset = ArchPreset::parse(name).expect("guard checked");
            }
            "--nodes" => parsed.nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--degree" => parsed.degree = val("--degree").parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                parsed.threads = val("--threads")
                    .split(',')
                    .map(|t| {
                        latency_core::parse_tick_threads(t, "--threads").unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if parsed.threads.is_empty() {
                    usage();
                }
            }
            "--out" => parsed.out = PathBuf::from(val("--out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    parsed
}

struct Measured {
    tick_threads: usize,
    wall_seconds: f64,
    cycles: u64,
    content_hash: u64,
}

fn measure(args: &Args, graph: &Graph, tick_threads: usize) -> Measured {
    let cfg = args.preset.config();
    let mut gpu = Gpu::new(cfg);
    gpu.set_tick_threads(tick_threads);
    let dev = upload_graph_mask(&mut gpu, graph);
    let t0 = Instant::now();
    run_bfs_mask(&mut gpu, &dev, 0, 128).expect("bfs runs");
    let wall_seconds = t0.elapsed().as_secs_f64();
    assert_eq!(
        read_costs(&gpu, &dev),
        graph.bfs_levels(0),
        "BFS answer wrong at {tick_threads} tick threads"
    );
    let summary = gpu.summary();
    Measured {
        tick_threads,
        wall_seconds,
        cycles: summary.cycles,
        content_hash: summary.content_hash,
    }
}

fn main() {
    // A zero or garbled LATENCY_TICK_THREADS would otherwise silently fall
    // back to serial ticking; refuse it up front like a bad flag.
    if let Err(e) = latency_core::env_tick_threads() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let args = parse_args();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let num_sms = args.preset.config().num_sms;
    let graph = Graph::uniform_random(args.nodes, args.degree, 20150301);

    let runs: Vec<Measured> = args
        .threads
        .iter()
        .map(|&t| {
            let m = measure(&args, &graph, t);
            println!(
                "tick_threads={:<2}  wall={:.3}s  cycles={}  cycles/s={:.0}  hash={:016x}",
                m.tick_threads,
                m.wall_seconds,
                m.cycles,
                m.cycles as f64 / m.wall_seconds.max(1e-9),
                m.content_hash
            );
            m
        })
        .collect();

    let serial = &runs[0];
    let mut json = String::from("{\n  \"name\": \"tick\",\n");
    json.push_str(&format!("  \"preset\": \"{}\",\n", args.preset.name()));
    json.push_str(&format!("  \"num_sms\": {num_sms},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!(
        "  \"workload\": \"bfs nodes={} degree={}\",\n",
        args.nodes, args.degree
    ));
    json.push_str(&format!(
        "  \"content_hash\": \"{:016x}\",\n  \"runs\": [\n",
        serial.content_hash
    ));
    for (i, m) in runs.iter().enumerate() {
        let sep = if i + 1 == runs.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"tick_threads\": {}, \"wall_seconds\": {:.6}, \"simulated_cycles\": {}, \
             \"cycles_per_second\": {:.0}, \"speedup_vs_serial\": {:.3}}}{sep}\n",
            m.tick_threads,
            m.wall_seconds,
            m.cycles,
            m.cycles as f64 / m.wall_seconds.max(1e-9),
            serial.wall_seconds / m.wall_seconds.max(1e-9),
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", args.out.display());
        std::process::exit(1);
    });
    println!("written to {}", args.out.display());

    for m in &runs[1..] {
        if m.content_hash != serial.content_hash || m.cycles != serial.cycles {
            eprintln!(
                "FAIL: {} tick threads diverged from serial (hash {:016x} vs {:016x}, \
                 cycles {} vs {})",
                m.tick_threads, m.content_hash, serial.content_hash, m.cycles, serial.cycles
            );
            std::process::exit(1);
        }
    }
}
