//! Intra-run tick-parallelism benchmark: one multi-SM workload measured at
//! several tick-thread counts, verifying bit-identity while timing each.
//!
//! ```text
//! cargo run --release -p latency-bench --bin tick -- [arch]
//!     [--nodes N] [--degree N] [--threads LIST] [--out FILE]
//! ```
//!
//! Runs a mask BFS on the full (all-SMs) preset once per entry in LIST
//! (default `1,2,4,8`), writes the wall-clock comparison to FILE
//! (default `BENCH_tick.json`), and **fails** unless every parallel run
//! produced exactly the serial run's `content_hash`. Host CPU count is
//! recorded alongside the timings: on a single-core host the parallel
//! schedule cannot be faster than serial, and the numbers will honestly
//! say so — the artifact is a scaling record, not a marketing claim.

use std::path::PathBuf;

use latency_core::ArchPreset;

struct Args {
    preset: ArchPreset,
    nodes: u32,
    degree: u32,
    threads: Vec<usize>,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: tick [PRESET] [--nodes N] [--degree N]\n\
         \x20           [--threads LIST] [--out FILE]\n\
         valid presets: {}",
        ArchPreset::valid_tokens()
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        preset: ArchPreset::FermiGf100,
        nodes: 4096,
        degree: 8,
        threads: vec![1, 2, 4, 8],
        out: PathBuf::from("BENCH_tick.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            name if ArchPreset::parse(name).is_some() => {
                parsed.preset = ArchPreset::parse(name).expect("guard checked");
            }
            "--nodes" => parsed.nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--degree" => parsed.degree = val("--degree").parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                parsed.threads = val("--threads")
                    .split(',')
                    .map(|t| {
                        latency_core::parse_tick_threads(t, "--threads").unwrap_or_else(|e| {
                            eprintln!("{e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if parsed.threads.is_empty() {
                    usage();
                }
            }
            "--out" => parsed.out = PathBuf::from(val("--out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    parsed
}

fn main() {
    // A zero or garbled LATENCY_TICK_THREADS would otherwise silently fall
    // back to serial ticking; refuse it up front like a bad flag.
    if let Err(e) = latency_core::env_tick_threads() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let args = parse_args();
    // LATENCY_PROFILE=1 adds the per-stage host-time breakdown to the
    // written JSON; the simulated results are bit-identical either way.
    if gpu_sim::profile::env_requested() {
        gpu_sim::profile::set_enabled(true);
    }
    let bench = latency_bench::run_tick_bench(args.preset, args.nodes, args.degree, &args.threads);
    for m in &bench.runs {
        println!(
            "tick_threads={:<2}  wall={:.3}s  cycles={}  cycles/s={:.0}  hash={:016x}",
            m.tick_threads,
            m.wall_seconds,
            m.cycles,
            gpu_trace::cycles_per_second(m.cycles, (m.wall_seconds * 1e9) as u64),
            m.content_hash
        );
    }
    std::fs::write(&args.out, bench.json()).unwrap_or_else(|e| {
        eprintln!("failed to write {}: {e}", args.out.display());
        std::process::exit(1);
    });
    println!("written to {}", args.out.display());
    if let Err(e) = bench.check() {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }
}
