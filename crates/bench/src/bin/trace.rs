//! Emits a trace bundle — Perfetto-loadable Chrome trace JSON, raw event
//! JSONL, sampled-counter CSV, Figure-1/2 analyses and a metrics report —
//! for any builtin workload.
//!
//! ```text
//! cargo run --release -p latency-bench --bin trace -- --workload bfs
//! ```
//!
//! Open `trace-bundle/trace.json` at <https://ui.perfetto.dev> (or
//! `chrome://tracing`): one track per SM and memory partition, one async
//! span per traced request tiled into its eight pipeline stages, counter
//! tracks for queue depths / MSHR occupancy / row-hit rate.

use std::path::PathBuf;
use std::process::exit;

use gpu_sim::CheckpointPolicy;
use latency_bench::{
    resume_bfs_checkpointed, run_bfs_checkpointed, run_bfs_traced, run_workload_traced,
    BfsCheckpointOutcome, BfsExperiment, TraceBundle, TracedRun, Workload,
};
use latency_core::ArchPreset;

struct Args {
    preset: ArchPreset,
    workload: String,
    nodes: u32,
    degree: u32,
    seed: u64,
    block_dim: u32,
    sms: Option<usize>,
    partitions: Option<usize>,
    out: PathBuf,
    sample: u64,
    max_events: usize,
    validate: bool,
    stable: bool,
    progress: bool,
    checkpoint_every: u64,
    checkpoint_dir: Option<PathBuf>,
    resume: Option<PathBuf>,
    kill_at: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace [--preset NAME]\n\
         \x20            [--workload bfs|vecadd|matmul|reduce|spmv|stencil|histogram|transpose|scan]\n\
         \x20            [--nodes N] [--degree N] [--seed N] [--block-dim N]\n\
         \x20            [--sms N] [--partitions N] [--out DIR]\n\
         \x20            [--sample CYCLES] [--max-events N] [--validate]\n\
         \x20            [--stable] [--progress] [--tick-threads N]\n\
         \x20            [--checkpoint-every CYCLES] [--checkpoint-dir DIR]\n\
         \x20            [--resume DIR] [--kill-at CYCLE]   (BFS only)"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        preset: ArchPreset::FermiGf100,
        workload: "bfs".to_string(),
        nodes: 4096,
        degree: 8,
        seed: 20150301,
        block_dim: 128,
        sms: None,
        partitions: None,
        out: PathBuf::from("trace-bundle"),
        sample: 64,
        max_events: 1 << 20,
        validate: false,
        stable: false,
        progress: false,
        checkpoint_every: 0,
        checkpoint_dir: None,
        resume: None,
        kill_at: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--preset" => {
                let name = val("--preset");
                args.preset = ArchPreset::parse(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown preset: {name} (valid presets: {})",
                        ArchPreset::valid_tokens()
                    );
                    usage();
                });
            }
            "--workload" => args.workload = val("--workload"),
            "--nodes" => args.nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--degree" => args.degree = val("--degree").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--block-dim" => {
                args.block_dim = val("--block-dim").parse().unwrap_or_else(|_| usage())
            }
            "--sms" => args.sms = Some(val("--sms").parse().unwrap_or_else(|_| usage())),
            "--partitions" => {
                args.partitions = Some(val("--partitions").parse().unwrap_or_else(|_| usage()));
            }
            "--out" => args.out = PathBuf::from(val("--out")),
            "--sample" => args.sample = val("--sample").parse().unwrap_or_else(|_| usage()),
            "--max-events" => {
                args.max_events = val("--max-events").parse().unwrap_or_else(|_| usage());
            }
            "--validate" => args.validate = true,
            "--stable" => args.stable = true,
            "--progress" => args.progress = true,
            "--tick-threads" => {
                let raw = val("--tick-threads");
                let n =
                    latency_core::parse_tick_threads(&raw, "--tick-threads").unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
                // Picked up by every Gpu the experiment helpers build; the
                // emitted bundle is bit-identical for every value of N.
                latency_core::set_tick_threads(n);
            }
            "--checkpoint-every" => {
                args.checkpoint_every = val("--checkpoint-every")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(PathBuf::from(val("--checkpoint-dir")));
            }
            "--resume" => args.resume = Some(PathBuf::from(val("--resume"))),
            "--kill-at" => {
                args.kill_at = Some(val("--kill-at").parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    args
}

fn build_cfg(args: &Args) -> gpu_sim::GpuConfig {
    let mut cfg = args.preset.config();
    if let Some(n) = args.sms {
        cfg.num_sms = n;
    }
    if let Some(n) = args.partitions {
        cfg.num_partitions = n;
    }
    cfg.trace.enabled = true;
    cfg.trace.sample_interval = args.sample.max(1);
    cfg.trace.max_events = args.max_events;
    cfg
}

fn bfs_exp(args: &Args) -> BfsExperiment {
    BfsExperiment {
        nodes: args.nodes,
        degree: args.degree,
        seed: args.seed,
        block_dim: args.block_dim,
    }
}

fn run(args: &Args) -> Result<TracedRun, gpu_sim::SimError> {
    let cfg = build_cfg(args);
    if args.workload == "bfs" {
        return run_bfs_traced(cfg, &bfs_exp(args));
    }
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.name() == args.workload)
        .unwrap_or_else(|| {
            eprintln!("unknown workload: {}", args.workload);
            usage();
        });
    run_workload_traced(cfg, workload)
}

fn checkpointing_requested(args: &Args) -> bool {
    args.checkpoint_every > 0
        || args.checkpoint_dir.is_some()
        || args.resume.is_some()
        || args.kill_at.is_some()
}

/// The checkpoint/resume path (BFS only): either starts a fresh traversal
/// under the policy or continues one from the newest checkpoint. A killed
/// run prints where it stopped and exits 0 — rerun with `--resume DIR` to
/// finish it; the finished run is bit-identical to an uninterrupted one.
fn run_checkpointed(args: &Args) -> TracedRun {
    if args.workload != "bfs" {
        eprintln!("--checkpoint-every/--resume/--kill-at are only supported for --workload bfs");
        exit(2);
    }
    let exp = bfs_exp(args);
    let dir = args
        .checkpoint_dir
        .clone()
        .or_else(|| args.resume.clone())
        .unwrap_or_else(|| PathBuf::from("checkpoints"));
    let mut policy = CheckpointPolicy::new(args.checkpoint_every, dir.clone());
    policy.kill_at = args.kill_at;
    let outcome = if let Some(rdir) = &args.resume {
        match resume_bfs_checkpointed(rdir, &exp, &policy) {
            Ok(Some(o)) => o,
            Ok(None) => {
                eprintln!("no checkpoint found in {rdir:?}");
                exit(1);
            }
            Err(e) => {
                eprintln!("resume failed: {e}");
                exit(1);
            }
        }
    } else {
        match run_bfs_checkpointed(build_cfg(args), &exp, &policy) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("checkpointed run failed: {e}");
                exit(1);
            }
        }
    };
    match outcome {
        BfsCheckpointOutcome::Killed { at } => {
            println!(
                "killed at cycle {at}; checkpoints in {} — rerun with --resume {0}",
                dir.display()
            );
            exit(0);
        }
        BfsCheckpointOutcome::Completed(done) => done.traced,
    }
}

fn main() {
    // A zero or garbled LATENCY_TICK_THREADS would otherwise silently fall
    // back to serial ticking; refuse it up front like a bad flag.
    if let Err(e) = latency_core::env_tick_threads() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let args = parse_args();
    // The self-profiler observes host time only; enabling it never changes
    // the simulation (`content_hash` is pinned bit-identical either way).
    // `--progress` needs its cycle counters, so it implies profiling.
    if gpu_sim::profile::env_requested() || args.progress {
        gpu_sim::profile::set_enabled(true);
    }
    let _heartbeat = args
        .progress
        .then(|| latency_bench::ProgressHeartbeat::start("trace"));
    let run = if checkpointing_requested(&args) {
        run_checkpointed(&args)
    } else {
        match run(&args) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace run failed: {e}");
                exit(1);
            }
        }
    };
    drop(_heartbeat);
    let cfg = build_cfg(&args);
    // --stable: normalise the only wall-clock-derived field so metrics.txt
    // (and the throughput figure computed from it) is a pure function of
    // the simulation — `cycles_per_second` renders 0 by its zero-wall-clock
    // contract, and byte-identical output hashes byte-identically in CI.
    let mut metrics = run.metrics;
    if args.stable {
        metrics.host_nanos = 0;
    }
    let bundle = TraceBundle {
        requests: &run.requests,
        loads: &run.loads,
        trace: &run.trace,
        metrics: &metrics,
        cycles: run.cycles,
        content_hash: run.content_hash,
        num_sms: cfg.num_sms as u32,
        num_partitions: cfg.num_partitions as u32,
        stage_labels: latency_bench::stage_labels_for(&cfg),
        track_names: latency_bench::track_names_for(&cfg),
        profile: gpu_sim::profile::enabled().then(gpu_sim::profile::report),
    };
    if args.validate {
        let json = bundle.chrome_json();
        let doc = match gpu_trace::json::parse(&json) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("validation failed: trace.json does not parse: {e}");
                exit(1);
            }
        };
        match gpu_trace::check_span_sums(&doc) {
            Ok(n) => println!("validated: {n} request spans tile their Timeline lifetimes"),
            Err(e) => {
                eprintln!("validation failed: {e}");
                exit(1);
            }
        }
    }
    if let Err(e) = bundle.write(&args.out) {
        eprintln!("failed to write bundle to {:?}: {e}", args.out);
        exit(1);
    }
    println!(
        "preset: {}   workload: {}   cycles: {}   events: {} ({} dropped)   samples: {}",
        args.preset.name(),
        args.workload,
        run.cycles,
        run.metrics.events_recorded,
        run.metrics.events_dropped,
        run.metrics.samples
    );
    println!(
        "content_hash: {:016x}   instructions: {}",
        run.content_hash, run.instructions
    );
    println!(
        "throughput: {:.0} simulated cycles/s over {:.2?} host time",
        run.metrics.cycles_per_second(run.cycles),
        run.metrics.wall_clock()
    );
    println!(
        "bundle written to {:?} — open trace.json at https://ui.perfetto.dev",
        args.out
    );
}
