//! Cross-validates architecture presets against the published reference
//! tables committed in `REFERENCE_latencies.json`.
//!
//! ```text
//! cargo run --release -p latency-bench --bin validate -- [--preset NAME]...
//!     [--out FILE] [--threads N]
//! ```
//!
//! For every requested preset (default: all registered generations) the
//! harness measures the pointer-chase plateau of each cache level and diffs
//! both that measurement and the description's analytic unloaded latency
//! against the published value, within the reference file's tolerance. Any
//! divergence — including a level appearing or disappearing — exits 1 with
//! the violation list; the CI preset matrix runs one preset per leg.
//!
//! `--out FILE` additionally writes the machine-readable record in the
//! committed `BENCH_validation.json` schema (every leaf exact-compared by
//! the bench regression harness).

use std::path::PathBuf;

use latency_bench::run_validation_bench;
use latency_core::ArchPreset;

fn main() {
    let mut presets: Vec<ArchPreset> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--preset" => {
                let name = args.next().unwrap_or_else(|| {
                    eprintln!("--preset needs a name");
                    std::process::exit(2);
                });
                presets.push(ArchPreset::parse(&name).unwrap_or_else(|| {
                    eprintln!(
                        "unknown preset: {name} (valid presets: {})",
                        ArchPreset::valid_tokens()
                    );
                    std::process::exit(2);
                }));
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                })));
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
                latency_core::parallel::set_worker_count(n);
            }
            other => {
                eprintln!(
                    "unknown argument '{other}' (usage: validate [--preset NAME]... \
                     [--out FILE] [--threads N]; valid presets: {})",
                    ArchPreset::valid_tokens()
                );
                std::process::exit(2);
            }
        }
    }
    if presets.is_empty() {
        presets = ArchPreset::ALL.to_vec();
    }

    let bench = match run_validation_bench(&presets) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("validate failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", bench.to_human());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, bench.json()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    if let Err(violations) = bench.check() {
        eprint!("{violations}");
        eprintln!("FAIL: preset(s) diverged from the published reference tables");
        std::process::exit(1);
    }
}
