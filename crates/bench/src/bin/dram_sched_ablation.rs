//! E5: ablation of the paper's suggestion that "request latency could
//! potentially be reduced through usage of a different DRAM scheduling
//! algorithm" — BFS under FR-FCFS vs strict FCFS.
//!
//! ```text
//! cargo run --release -p latency-bench --bin dram_sched_ablation
//! ```

use latency_bench::{dram_sched_comparison, BfsExperiment};
use latency_core::ArchPreset;

fn main() {
    let exp = BfsExperiment::default();
    println!("E5: DRAM scheduler ablation, BFS on GF100\n");
    let rows = match dram_sched_comparison(ArchPreset::FermiGf100.config(), &exp) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>10} {:>12} {:>16} {:>16} {:>14}",
        "scheduler", "cycles", "mean load lat", "p95 load lat", "QtoSch share"
    );
    for r in &rows {
        println!(
            "{:>10} {:>12} {:>16.1} {:>16} {:>13.1}%",
            format!("{:?}", r.sched),
            r.cycles,
            r.mean_load_latency,
            r.p95_load_latency,
            r.qtosch_share
        );
    }
    if let [frfcfs, fcfs] = rows.as_slice() {
        let speedup = fcfs.cycles as f64 / frfcfs.cycles as f64;
        println!(
            "\nFR-FCFS vs FCFS: {speedup:.2}x runtime ratio; mean load latency\n\
             {:.0} vs {:.0} cycles — scheduling policy shifts the DRAM(QtoSch)\n\
             component exactly as the paper anticipates.",
            frfcfs.mean_load_latency, fcfs.mean_load_latency
        );
    }
}
