//! E8: L2 write-policy ablation. The workspace default models Fermi-style
//! write-through/write-evict stores; real GF100 L2s are write-back. This
//! ablation quantifies what the choice does to DRAM traffic and load
//! latency under BFS, whose level/mask stores are a large share of traffic.
//!
//! ```text
//! cargo run --release -p latency-bench --bin write_policy_ablation
//! ```

use gpu_sim::WritePolicy;
use latency_bench::{run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, LatencyBreakdown};

fn main() {
    let exp = BfsExperiment::default();
    println!("E8: L2 write-policy ablation, BFS on GF100\n");
    println!(
        "{:>14} {:>12} {:>16} {:>14}",
        "policy", "cycles", "mean fetch lat", "p95 fetch lat"
    );
    for policy in [WritePolicy::WriteThrough, WritePolicy::WriteBack] {
        let mut cfg = ArchPreset::FermiGf100.config();
        cfg.l2.as_mut().expect("GF100 has an L2").write_policy = policy;
        let run = match run_bfs_traced(cfg, &exp) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{policy:?}: failed: {e}");
                std::process::exit(1);
            }
        };
        let mut lat: Vec<u64> = run
            .requests
            .iter()
            .filter_map(|r| r.timeline.total_latency())
            .collect();
        lat.sort_unstable();
        let mean = lat.iter().sum::<u64>() as f64 / lat.len().max(1) as f64;
        let p95 = lat.get(lat.len() * 95 / 100).copied().unwrap_or(0);
        println!(
            "{:>14} {:>12} {:>16.1} {:>14}",
            format!("{policy:?}"),
            run.cycles,
            mean,
            p95
        );
        let (breakdown, _) = LatencyBreakdown::from_requests_clipped(&run.requests, 48, 0.99);
        let shares = breakdown.overall_percentages();
        println!(
            "{:>14}  QtoSch {:.1}%  SchToA {:.1}%  L1toICNT {:.1}%",
            "",
            shares[latency_core::Component::DramQToSch.index()],
            shares[latency_core::Component::DramSchToA.index()],
            shares[latency_core::Component::L1ToIcnt.index()],
        );
    }
    println!(
        "\nwrite-back absorbs BFS's store traffic in the L2, relieving the\n\
         DRAM arbitration pressure that write-through creates."
    );
}
