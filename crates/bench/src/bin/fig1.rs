//! E2: regenerates the paper's **Figure 1** — breakdown of per-bucket
//! memory-fetch latency into pipeline stages for the BFS kernel on the
//! GF100 (Fermi) configuration.
//!
//! ```text
//! cargo run --release -p latency-bench --bin fig1
//! ```

use latency_bench::{run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, Component, LatencyBreakdown};

fn main() {
    let exp = BfsExperiment::default();
    println!("Figure 1: per-bucket memory fetch latency breakdown, BFS kernel");
    println!(
        "config: {}, graph: {} nodes, avg degree {}\n",
        ArchPreset::FermiGf100.name(),
        exp.nodes,
        exp.degree
    );
    let run = match run_bfs_traced(ArchPreset::FermiGf100.config(), &exp) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fig1 failed: {e}");
            std::process::exit(1);
        }
    };
    // Clip the top 1% congestion outliers so the bucket domain matches the
    // readable range of the paper's figure (their x-axis tops out at ~1800).
    let (breakdown, overflow) = LatencyBreakdown::from_requests_clipped(&run.requests, 48, 0.99);
    print!("{breakdown}");
    println!(
        "\ntraced fetches: {} (+{overflow} beyond the 99th percentile)   simulated cycles: {}",
        breakdown.total_requests(),
        run.cycles
    );
    println!("\noverall component shares:");
    for (c, share) in breakdown.ranked_components() {
        println!("  {:>12}: {share:>5.1}%", c.label());
    }
    let top: Vec<Component> = breakdown
        .ranked_components()
        .into_iter()
        .take(3)
        .map(|(c, _)| c)
        .collect();
    println!(
        "\npaper's observation: queueing (L1toICNT) and arbitration (DRAM QtoSch)\n\
         are key latency contributors; this run's top-3 components: {}",
        top.iter().map(|c| c.label()).collect::<Vec<_>>().join(", ")
    );
}
