//! E6: how much latency can the machine actually hide? Exposed-latency
//! fraction of BFS as a function of warp slots per SM and scheduler policy
//! (the paper's conclusion: "GPUs are not as effective in latency hiding as
//! commonly thought").
//!
//! ```text
//! cargo run --release -p latency-bench --bin hiding_sweep
//! ```

use gpu_sim::SchedPolicy;
use latency_bench::{hiding_sweep, BfsExperiment};
use latency_core::ArchPreset;

fn main() {
    let exp = BfsExperiment::default();
    println!("E6: exposed load-latency fraction vs thread-level parallelism\n");
    let points = match hiding_sweep(
        ArchPreset::FermiGf100.config(),
        &exp,
        &[4, 8, 16, 32, 48],
        &[SchedPolicy::Lrr, SchedPolicy::Gto],
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>10} {:>10} {:>14} {:>12}",
        "warps/SM", "scheduler", "exposed", "cycles"
    );
    for p in &points {
        println!(
            "{:>10} {:>10} {:>13.1}% {:>12}",
            p.warps_per_sm,
            format!("{:?}", p.scheduler),
            100.0 * p.exposed_fraction,
            p.cycles
        );
    }
    println!(
        "\neven at full occupancy a large fraction of BFS load latency stays\n\
         exposed — latency, not just throughput, limits this workload."
    );
}
