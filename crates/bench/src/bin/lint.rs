//! Static analysis over every built-in workload kernel.
//!
//! ```text
//! cargo run --release -p latency-bench --bin lint \
//!     [--json] [--strict] [--deny <lint[,lint]|all>] [--sarif <path|->] \
//!     [--cost] [--validate]
//! ```
//!
//! Runs the `latency-check` analyzer (CFG + dataflow + symbolic memory +
//! concurrency lints) over each kernel the experiment drivers launch and
//! prints one report per kernel. Output is deterministic (reports are
//! sorted and deduplicated), so CI can diff it byte-for-byte.
//!
//! - `--json` emits one JSON object per line instead of the human listing.
//! - `--strict` also fails on warnings.
//! - `--deny` fails when any *named* pass produces a warning- or
//!   error-severity finding (`all` denies every pass); advisory notes never
//!   fail the gate. Unknown lint names are a usage error.
//! - `--sarif` writes a SARIF 2.1.0 log to the given path (`-` = stdout).
//! - `--cost` prints the arch-aware static cost model for each kernel
//!   across the paper's Table-I presets.
//! - `--validate` runs the static-vs-dynamic differential harness
//!   (transaction counts, service levels, latency floors) over the Table-I
//!   preset x workload matrix.
//!
//! Exit status: 0 clean, 1 findings/violations, 2 usage.

use latency_check::{analyze, to_sarif, AnalysisConfig, Pass, Severity};
use latency_core::ArchPreset;

fn usage() -> ! {
    eprintln!(
        "usage: lint [--json] [--strict] [--deny <lint[,lint]|all>] \
         [--sarif <path|->] [--cost] [--validate]"
    );
    std::process::exit(2);
}

/// Parses a `--deny` operand into the set of denied passes.
fn parse_deny(spec: &str) -> Vec<Pass> {
    if spec == "all" {
        return Pass::ALL.to_vec();
    }
    let mut denied = Vec::new();
    for name in spec.split(',') {
        match Pass::parse(name) {
            Some(p) => {
                if !denied.contains(&p) {
                    denied.push(p);
                }
            }
            None => {
                eprintln!(
                    "unknown lint '{name}' (known: {})",
                    Pass::ALL.map(|p| p.name()).join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    denied
}

/// Prints the per-preset static cost model for every builtin kernel.
fn print_costs() {
    for kernel in latency_bench::builtin_kernels() {
        for preset in ArchPreset::TABLE1 {
            let cost = latency_check::kernel_cost(&kernel, &preset.desc());
            print!("{}", cost.to_human());
        }
    }
}

/// Runs the differential validation matrix; returns `true` when every
/// cell and every floor held.
fn run_validation() -> bool {
    let mut ok = true;
    for preset in ArchPreset::TABLE1 {
        for workload in latency_bench::Workload::ALL {
            match latency_bench::validate_run(preset, workload) {
                Ok(report) => {
                    print!("{}", report.to_human());
                    ok &= report.ok();
                }
                Err(e) => {
                    eprintln!("{} x {:?}: simulation failed: {e}", workload.name(), preset);
                    ok = false;
                }
            }
        }
        match latency_bench::validate_floor(preset) {
            Ok(report) => {
                print!("{}", report.to_human());
                ok &= report.ok();
            }
            Err(e) => {
                eprintln!("{preset:?}: floor measurement failed: {e}");
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let mut json = false;
    let mut strict = false;
    let mut cost = false;
    let mut validate = false;
    let mut denied: Vec<Pass> = Vec::new();
    let mut sarif_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "--cost" => cost = true,
            "--validate" => validate = true,
            "--deny" => match args.next() {
                Some(spec) => denied = parse_deny(&spec),
                None => usage(),
            },
            "--sarif" => match args.next() {
                Some(path) => sarif_path = Some(path),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let config = AnalysisConfig::default();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut denied_hits = 0usize;
    let mut reports = Vec::new();
    for kernel in latency_bench::builtin_kernels() {
        let report = analyze(&kernel, &config);
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        denied_hits += report
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning && denied.contains(&d.pass))
            .count();
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.to_human());
        }
        reports.push(report);
    }
    if !json {
        println!("total: {errors} error(s), {warnings} warning(s)");
    }
    if let Some(path) = sarif_path {
        let sarif = to_sarif(&reports);
        if path == "-" {
            println!("{sarif}");
        } else if let Err(e) = std::fs::write(&path, sarif) {
            eprintln!("cannot write SARIF to '{path}': {e}");
            std::process::exit(2);
        }
    }
    if cost {
        print_costs();
    }
    let validated = !validate || run_validation();
    if errors > 0 || (strict && warnings > 0) || denied_hits > 0 || !validated {
        if denied_hits > 0 {
            eprintln!("{denied_hits} denied finding(s)");
        }
        std::process::exit(1);
    }
}
