//! Static analysis over every built-in workload kernel.
//!
//! ```text
//! cargo run --release -p latency-bench --bin lint [--json] [--strict]
//! ```
//!
//! Runs the `latency-check` analyzer (CFG + dataflow + memory-access
//! lints) over each kernel the experiment drivers launch and prints one
//! report per kernel. `--json` emits one JSON object per line instead of
//! the human listing. Exit status is 1 when any kernel has error-severity
//! diagnostics (`--strict` also fails on warnings), so CI can gate on it.

use latency_check::{analyze, AnalysisConfig, Severity};

fn main() {
    let mut json = false;
    let mut strict = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            other => {
                eprintln!("unknown argument '{other}' (usage: lint [--json] [--strict])");
                std::process::exit(2);
            }
        }
    }

    let config = AnalysisConfig::default();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for kernel in latency_bench::builtin_kernels() {
        let report = analyze(&kernel, &config);
        errors += report.count(Severity::Error);
        warnings += report.count(Severity::Warning);
        if json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.to_human());
        }
    }
    if !json {
        println!("total: {errors} error(s), {warnings} warning(s)");
    }
    if errors > 0 || (strict && warnings > 0) {
        std::process::exit(1);
    }
}
