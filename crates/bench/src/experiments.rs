//! Shared experiment drivers (see crate docs for the experiment index).

use std::path::Path;

use gpu_mem::DramSched;
use gpu_sim::{
    CheckpointPolicy, CompletedRequest, Gpu, GpuConfig, LoadInstrRecord, RunSummary, SchedPolicy,
    SimError,
};
use gpu_workloads::bfs::BfsMaskOutcome;
use gpu_workloads::{
    bfs, graph::Graph, histogram, matmul, reduce, scan, spmv, stencil, transpose, vecadd,
};
use latency_core::{ChaseError, Table1};

/// Runs the full Table I reproduction (E1): all four paper columns.
///
/// # Errors
///
/// Propagates chase/simulator failures.
pub fn run_table1() -> Result<Table1, ChaseError> {
    Table1::measure()
}

/// Parameters of the BFS dynamic-latency experiment (E2/E3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsExperiment {
    /// Graph nodes.
    pub nodes: u32,
    /// Average out-degree.
    pub degree: u32,
    /// Graph seed.
    pub seed: u64,
    /// Threads per CTA.
    pub block_dim: u32,
}

impl Default for BfsExperiment {
    /// The default instrumented run: a 16k-node uniform random graph with
    /// average degree 8 — a working set just over the GF100's aggregate L2,
    /// so the run mixes L2 hits with real DRAM traffic like the paper's
    /// Rodinia BFS input (whose latencies top out near 1800 cycles).
    fn default() -> Self {
        BfsExperiment {
            nodes: 16384,
            degree: 8,
            seed: 20150301, // ISPASS 2015
            block_dim: 128,
        }
    }
}

/// Traces collected from one instrumented run.
#[derive(Debug)]
pub struct TracedRun {
    /// Completed line fetches (Figure 1 input).
    pub requests: Vec<CompletedRequest>,
    /// Completed warp-level loads (Figure 2 input).
    pub loads: Vec<LoadInstrRecord>,
    /// Event stream and counter samples (empty unless event tracing was
    /// enabled via `GpuConfig::trace` or `LATENCY_TRACE`).
    pub trace: gpu_sim::TraceData,
    /// Counter summaries, stall attribution and host throughput.
    pub metrics: gpu_sim::MetricsReport,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Warp instructions issued.
    pub instructions: u64,
    /// Stable content hash of the run (configuration timing + workload +
    /// inputs; see `RunSummary::content_hash`).
    pub content_hash: u64,
}

/// Runs BFS on `config` with tracing enabled and returns the latency traces
/// (E2/E3 driver). Honours `LATENCY_TRACE` (see [`crate::tracebundle`]).
///
/// # Errors
///
/// Propagates simulator failures.
pub fn run_bfs_traced(mut config: GpuConfig, exp: &BfsExperiment) -> Result<TracedRun, SimError> {
    let env = crate::tracebundle::env_request();
    if env.enabled() {
        config.trace.enabled = true;
    }
    let graph = Graph::uniform_random(exp.nodes, exp.degree, exp.seed);
    let mut gpu = Gpu::new(config);
    gpu.set_tick_threads(latency_core::tick_threads());
    // Rodinia-style mask BFS: the formulation GPGPU-Sim's standard workload
    // suite uses, i.e. the kernel behind the paper's Figures 1 and 2.
    let dev = bfs::upload_graph_mask(&mut gpu, &graph);
    gpu.set_tracing(true);
    let run = bfs::run_bfs_mask(&mut gpu, &dev, 0, exp.block_dim)?;
    // Cross-check against the host reference: an instrumented run that
    // computes the wrong BFS would be meaningless.
    assert_eq!(
        bfs::read_costs(&gpu, &dev),
        graph.bfs_levels(0),
        "device BFS diverged from reference"
    );
    let summary = gpu.summary();
    let (requests, loads) = gpu.take_traces();
    let trace = gpu.take_trace();
    crate::tracebundle::export_if_requested(
        &env,
        &summary,
        &requests,
        &loads,
        &trace,
        gpu.config(),
    );
    Ok(TracedRun {
        requests,
        loads,
        trace,
        metrics: summary.metrics,
        cycles: gpu.now().get(),
        instructions: run.instructions,
        content_hash: summary.content_hash,
    })
}

/// Everything a completed checkpointed BFS produced.
#[derive(Debug)]
pub struct BfsCheckpointed {
    /// The final run summary (includes `content_hash` — the stable
    /// identity of the whole multi-launch run).
    pub summary: RunSummary,
    /// The latency traces, same shape as [`run_bfs_traced`] returns.
    pub traced: TracedRun,
}

/// Outcome of a checkpointed BFS experiment.
#[derive(Debug)]
pub enum BfsCheckpointOutcome {
    /// The traversal ran to completion (verified against the host
    /// reference).
    Completed(Box<BfsCheckpointed>),
    /// The deterministic kill switch fired; resume from the newest
    /// checkpoint with [`resume_bfs_checkpointed`].
    Killed {
        /// Cycle at which the run was killed.
        at: u64,
    },
}

fn finish_bfs_checkpointed(
    mut gpu: Gpu,
    graph: &Graph,
    dev: &bfs::BfsMaskDevice,
    run: bfs::BfsRun,
    env: &crate::tracebundle::EnvTrace,
) -> BfsCheckpointOutcome {
    assert_eq!(
        bfs::read_costs(&gpu, dev),
        graph.bfs_levels(0),
        "device BFS diverged from reference"
    );
    let summary = gpu.summary();
    let (requests, loads) = gpu.take_traces();
    let trace = gpu.take_trace();
    crate::tracebundle::export_if_requested(env, &summary, &requests, &loads, &trace, gpu.config());
    let traced = TracedRun {
        requests,
        loads,
        trace,
        metrics: summary.metrics,
        cycles: gpu.now().get(),
        instructions: run.instructions,
        content_hash: summary.content_hash,
    };
    BfsCheckpointOutcome::Completed(Box::new(BfsCheckpointed { summary, traced }))
}

/// [`run_bfs_traced`] under a checkpoint policy: periodic snapshots land in
/// `policy.dir` (carrying the BFS host loop's position) and the optional
/// `policy.kill_at` stops the run deterministically mid-flight. An
/// uninterrupted run and a killed-then-resumed run produce bit-identical
/// summaries and traces.
///
/// # Errors
///
/// Propagates simulator and checkpoint-write failures.
pub fn run_bfs_checkpointed(
    mut config: GpuConfig,
    exp: &BfsExperiment,
    policy: &CheckpointPolicy,
) -> Result<BfsCheckpointOutcome, SimError> {
    let env = crate::tracebundle::env_request();
    if env.enabled() {
        config.trace.enabled = true;
    }
    let graph = Graph::uniform_random(exp.nodes, exp.degree, exp.seed);
    let mut gpu = Gpu::new(config);
    gpu.set_tick_threads(latency_core::tick_threads());
    let dev = bfs::upload_graph_mask(&mut gpu, &graph);
    gpu.set_tracing(true);
    match bfs::run_bfs_mask_checkpointed(&mut gpu, &dev, 0, exp.block_dim, policy)? {
        BfsMaskOutcome::Killed { at } => Ok(BfsCheckpointOutcome::Killed { at }),
        BfsMaskOutcome::Completed(run) => Ok(finish_bfs_checkpointed(gpu, &graph, &dev, run, &env)),
    }
}

/// Resumes a killed checkpointed BFS from the newest checkpoint in `dir`
/// and drives it to completion (or the next kill). `exp` must describe the
/// same experiment the checkpoint came from — it regenerates the host
/// reference graph for end-of-run verification (everything else, including
/// the in-flight kernel and the BFS loop position, lives in the
/// checkpoint). Returns `None` when `dir` holds no checkpoint.
///
/// # Errors
///
/// Propagates checkpoint-decode failures as [`SimError::Checkpoint`] and
/// simulator failures unchanged.
pub fn resume_bfs_checkpointed(
    dir: &Path,
    exp: &BfsExperiment,
    policy: &CheckpointPolicy,
) -> Result<Option<BfsCheckpointOutcome>, SimError> {
    let env = crate::tracebundle::env_request();
    let Some(mut gpu) = Gpu::resume_latest(dir)
        .map_err(|e| SimError::Checkpoint(format!("resume from {}: {e}", dir.display())))?
    else {
        return Ok(None);
    };
    // Snapshots never carry host-side executor state: re-apply it.
    gpu.set_tick_threads(latency_core::tick_threads());
    let graph = Graph::uniform_random(exp.nodes, exp.degree, exp.seed);
    let dev = decode_mask_dev(&gpu)?;
    match bfs::resume_bfs_mask(&mut gpu, policy)? {
        BfsMaskOutcome::Killed { at } => Ok(Some(BfsCheckpointOutcome::Killed { at })),
        BfsMaskOutcome::Completed(run) => {
            Ok(Some(finish_bfs_checkpointed(gpu, &graph, &dev, run, &env)))
        }
    }
}

/// The device layout travels inside the checkpoint's host tag; re-decode it
/// here only for the end-of-run cost readback.
fn decode_mask_dev(gpu: &Gpu) -> Result<bfs::BfsMaskDevice, SimError> {
    bfs::peek_mask_tag(gpu.host_tag())
        .map_err(|e| SimError::Checkpoint(format!("checkpoint carries no BFS host tag: {e}")))
}

/// The non-BFS workloads of experiment E4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Streaming vector add.
    VecAdd,
    /// Tiled shared-memory matrix multiply.
    MatMul,
    /// Tree reduction with atomic combine.
    Reduce,
    /// CSR sparse matrix–vector multiply.
    SpMv,
    /// 2-D Jacobi stencil.
    Stencil,
    /// Global-atomic histogram.
    Histogram,
    /// Shared-memory tiled matrix transpose.
    Transpose,
    /// Per-CTA Hillis–Steele prefix sum.
    Scan,
}

impl Workload {
    /// All E4 workloads.
    pub const ALL: [Workload; 8] = [
        Workload::VecAdd,
        Workload::MatMul,
        Workload::Reduce,
        Workload::SpMv,
        Workload::Stencil,
        Workload::Histogram,
        Workload::Transpose,
        Workload::Scan,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::VecAdd => "vecadd",
            Workload::MatMul => "matmul",
            Workload::Reduce => "reduce",
            Workload::SpMv => "spmv",
            Workload::Stencil => "stencil",
            Workload::Histogram => "histogram",
            Workload::Transpose => "transpose",
            Workload::Scan => "scan",
        }
    }
}

/// The kernel [`run_workload_traced`] launches for `workload`, exactly as
/// the dynamic run builds it — the static half of the differential
/// validation harness analyzes this object.
pub fn workload_kernel(workload: Workload) -> gpu_isa::Kernel {
    match workload {
        Workload::VecAdd => vecadd::build_vecadd_kernel(),
        Workload::MatMul => matmul::build_matmul_kernel(),
        Workload::Reduce => reduce::build_reduce_kernel(256),
        Workload::SpMv => spmv::build_spmv_kernel(),
        Workload::Stencil => stencil::build_stencil_kernel(),
        Workload::Histogram => histogram::build_histogram_kernel(),
        Workload::Transpose => transpose::build_transpose_kernel(transpose::Variant::Tiled),
        Workload::Scan => scan::build_scan_kernel(256),
    }
}

/// Every built-in workload kernel, as launched by the experiment drivers
/// (both transpose variants, all three BFS kernels). This is the kernel set
/// the `lint` bin analyzes.
pub fn builtin_kernels() -> Vec<gpu_isa::Kernel> {
    vec![
        vecadd::build_vecadd_kernel(),
        matmul::build_matmul_kernel(),
        reduce::build_reduce_kernel(256),
        spmv::build_spmv_kernel(),
        stencil::build_stencil_kernel(),
        histogram::build_histogram_kernel(),
        transpose::build_transpose_kernel(transpose::Variant::Naive),
        transpose::build_transpose_kernel(transpose::Variant::Tiled),
        scan::build_scan_kernel(256),
        bfs::build_bfs_kernel(),
        bfs::build_bfs_mask_kernel1(),
        bfs::build_bfs_mask_kernel2(),
    ]
}

/// Runs one E4 workload on `config` with tracing enabled.
///
/// # Errors
///
/// Propagates simulator failures.
///
/// # Panics
///
/// Panics if the workload's device output fails verification.
pub fn run_workload_traced(
    mut config: GpuConfig,
    workload: Workload,
) -> Result<TracedRun, SimError> {
    let env = crate::tracebundle::env_request();
    if env.enabled() {
        config.trace.enabled = true;
    }
    let mut gpu = Gpu::new(config);
    gpu.set_tick_threads(latency_core::tick_threads());
    gpu.set_tracing(true);
    let summary = match workload {
        Workload::VecAdd => {
            let dev = vecadd::setup(&mut gpu, 64 * 1024);
            let s = vecadd::run(&mut gpu, &dev, 256)?;
            vecadd::verify(&gpu, &dev);
            s
        }
        Workload::MatMul => {
            let dev = matmul::setup(&mut gpu, 64);
            let s = matmul::run(&mut gpu, &dev)?;
            matmul::verify(&gpu, &dev);
            s
        }
        Workload::Reduce => {
            let dev = reduce::setup(&mut gpu, 64 * 1024);
            let s = reduce::run(&mut gpu, &dev, 256)?;
            assert_eq!(
                gpu.device().read_u32(dev.output),
                reduce::reference(64 * 1024)
            );
            s
        }
        Workload::SpMv => {
            let m = spmv::CsrMatrix::random(4096, 4096, 8, 5);
            let dev = spmv::setup(&mut gpu, &m);
            let s = spmv::run(&mut gpu, &dev, 128)?;
            spmv::verify(&gpu, &dev, &m);
            s
        }
        Workload::Stencil => {
            let dev = stencil::setup(&mut gpu, 256, 256);
            let (s, result) = stencil::run(&mut gpu, &dev, 2, 128)?;
            stencil::verify(&gpu, &dev, result, 2);
            s
        }
        Workload::Histogram => {
            let dev = histogram::setup(&mut gpu, 64 * 1024, 256);
            let s = histogram::run(&mut gpu, &dev, 256)?;
            histogram::verify(&gpu, &dev);
            s
        }
        Workload::Transpose => {
            let dev = transpose::setup(&mut gpu, 256);
            let s = transpose::run(&mut gpu, &dev, transpose::Variant::Tiled)?;
            transpose::verify(&gpu, &dev);
            s
        }
        Workload::Scan => {
            let dev = scan::setup(&mut gpu, 64 * 1024);
            let s = scan::run(&mut gpu, &dev, 256)?;
            scan::verify(&gpu, &dev, 256);
            s
        }
    };
    let (requests, loads) = gpu.take_traces();
    let trace = gpu.take_trace();
    crate::tracebundle::export_if_requested(
        &env,
        &summary,
        &requests,
        &loads,
        &trace,
        gpu.config(),
    );
    Ok(TracedRun {
        requests,
        loads,
        trace,
        metrics: summary.metrics,
        cycles: summary.cycles,
        instructions: summary.instructions,
        content_hash: summary.content_hash,
    })
}

/// Result of the DRAM-scheduler ablation (E5) for one scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramSchedResult {
    /// Scheduler evaluated.
    pub sched: DramSched,
    /// Total cycles for the workload.
    pub cycles: u64,
    /// Mean completed-load latency.
    pub mean_load_latency: f64,
    /// 95th-percentile completed-load latency.
    pub p95_load_latency: u64,
    /// Share (0–100) of aggregate fetch time spent waiting for the DRAM
    /// scheduler (the paper's `DRAM(QtoSch)` component).
    pub qtosch_share: f64,
}

/// Runs the E5 ablation: BFS under each DRAM scheduler. The per-scheduler
/// runs are independent simulations and execute on the
/// [`latency_core::parallel`] pool, gathered in scheduler order.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn dram_sched_comparison(
    base: GpuConfig,
    exp: &BfsExperiment,
) -> Result<Vec<DramSchedResult>, SimError> {
    let scheds = [DramSched::FrFcfs, DramSched::Fcfs];
    latency_core::parallel::try_par_map(&scheds, |_, &sched| {
        let mut cfg = base.clone();
        cfg.dram.sched = sched;
        let run = run_bfs_traced(cfg, exp)?;
        let mut lat: Vec<u64> = run.loads.iter().map(LoadInstrRecord::total).collect();
        lat.sort_unstable();
        let mean = if lat.is_empty() {
            0.0
        } else {
            lat.iter().sum::<u64>() as f64 / lat.len() as f64
        };
        let p95 = lat
            .get((lat.len() * 95 / 100).min(lat.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0);
        let breakdown = latency_core::LatencyBreakdown::from_requests(&run.requests, 48);
        let qtosch = breakdown.overall_percentages()[latency_core::Component::DramQToSch.index()];
        Ok(DramSchedResult {
            sched,
            cycles: run.cycles,
            mean_load_latency: mean,
            p95_load_latency: p95,
            qtosch_share: qtosch,
        })
    })
}

/// One point of the latency-hiding sweep (E6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HidingPoint {
    /// Warp slots per SM.
    pub warps_per_sm: usize,
    /// Scheduler policy.
    pub scheduler: SchedPolicy,
    /// Overall exposed fraction of load latency (0–1).
    pub exposed_fraction: f64,
    /// Total cycles.
    pub cycles: u64,
}

/// Runs the E6 sweep: exposed latency fraction of BFS as a function of
/// available thread-level parallelism and scheduler policy. The
/// (warp count × policy) grid is flattened in warp-major order and run on
/// the [`latency_core::parallel`] pool, so the returned points are in the
/// same order the old nested serial loop produced.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn hiding_sweep(
    base: GpuConfig,
    exp: &BfsExperiment,
    warp_counts: &[usize],
    policies: &[SchedPolicy],
) -> Result<Vec<HidingPoint>, SimError> {
    let grid: Vec<(usize, SchedPolicy)> = warp_counts
        .iter()
        .flat_map(|&w| policies.iter().map(move |&p| (w, p)))
        .collect();
    latency_core::parallel::try_par_map(&grid, |_, &(w, p)| {
        let mut cfg = base.clone();
        cfg.max_warps_per_sm = w;
        cfg.max_ctas_per_sm = cfg.max_ctas_per_sm.min(w.max(1));
        cfg.scheduler = p;
        let run = run_bfs_traced(cfg, exp)?;
        let analysis = latency_core::ExposureAnalysis::from_loads(&run.loads, 24);
        Ok(HidingPoint {
            warps_per_sm: w,
            scheduler: p,
            exposed_fraction: analysis.overall_exposed_fraction(),
            cycles: run.cycles,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_gf100() -> GpuConfig {
        let mut c = GpuConfig::fermi_gf100();
        c.num_sms = 4;
        c.num_partitions = 2;
        c
    }

    fn small_exp() -> BfsExperiment {
        BfsExperiment {
            nodes: 512,
            degree: 6,
            seed: 1,
            block_dim: 64,
        }
    }

    #[test]
    fn bfs_trace_collects_requests_and_loads() {
        let run = run_bfs_traced(small_gf100(), &small_exp()).unwrap();
        assert!(!run.requests.is_empty());
        assert!(!run.loads.is_empty());
        assert!(run.cycles > 0);
        assert!(run.instructions > 0);
    }

    #[test]
    fn dram_sched_ablation_produces_both_rows() {
        let rows = dram_sched_comparison(small_gf100(), &small_exp()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].sched, DramSched::FrFcfs);
        assert_eq!(rows[1].sched, DramSched::Fcfs);
        assert!(rows.iter().all(|r| r.mean_load_latency > 0.0));
    }

    #[test]
    fn hiding_sweep_exposed_fraction_decreases_with_more_warps() {
        let pts = hiding_sweep(small_gf100(), &small_exp(), &[2, 48], &[SchedPolicy::Lrr]).unwrap();
        assert_eq!(pts.len(), 2);
        let few = pts[0].exposed_fraction;
        let many = pts[1].exposed_fraction;
        assert!(
            few >= many,
            "more warps should hide at least as much latency: {few} vs {many}"
        );
    }

    #[test]
    fn workload_runs_are_verified() {
        let run = run_workload_traced(small_gf100(), Workload::VecAdd).unwrap();
        assert!(!run.loads.is_empty());
    }
}
