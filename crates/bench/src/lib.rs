//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each experiment from DESIGN.md's index has a driver here, shared between
//! the printable binaries (`cargo run -p latency-bench --bin table1`, …) and
//! the plain-`main` benches timed by [`harness`]:
//!
//! - **E1 / Table I**: [`run_table1`] (wrapping [`latency_core::Table1`]).
//! - **E2 / Figure 1**: [`run_bfs_traced`] + [`latency_core::LatencyBreakdown`].
//! - **E3 / Figure 2**: [`run_bfs_traced`] + [`latency_core::ExposureAnalysis`].
//! - **E4**: [`run_workload_traced`] over the non-BFS workloads.
//! - **E5**: [`dram_sched_comparison`] (FR-FCFS vs FCFS ablation).
//! - **E6**: [`hiding_sweep`] (exposed latency vs. warps/SM and scheduler).

pub mod experiments;
pub mod harness;
pub mod progress;
pub mod reference;
pub mod regression;
pub mod suite;
pub mod tracebundle;
pub mod validate;

pub use experiments::{
    builtin_kernels, dram_sched_comparison, hiding_sweep, resume_bfs_checkpointed,
    run_bfs_checkpointed, run_bfs_traced, run_table1, run_workload_traced, workload_kernel,
    BfsCheckpointOutcome, BfsCheckpointed, BfsExperiment, DramSchedResult, HidingPoint, TracedRun,
    Workload,
};
pub use progress::ProgressHeartbeat;
pub use reference::{
    reference_rows, run_validation_bench, LevelValidation, PresetValidation, ReferenceRow,
    ValidationBench, REFERENCE_TABLES,
};
pub use regression::{
    classify_document, compare_json, metric_class, Comparison, Finding, MetricClass, Severity,
    Thresholds,
};
pub use suite::{
    host_cpus, run_serve_bench, run_sweep_bench, run_tick_bench, run_workload_bench,
    serve_grid_spec, sweep_grid_spec, workloads_json, ServeBench, ServePass, SweepBench, TickBench,
    TickRun, WorkloadBench, WorkloadRun, SERVE_CLIENTS,
};
pub use tracebundle::{env_request, stage_labels_for, track_names_for, EnvTrace, TraceBundle};
pub use validate::{
    derived_level, validate_floor, validate_run, FloorCheck, FloorReport, LoadCheck,
    ValidationReport,
};
