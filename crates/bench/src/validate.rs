//! Differential validation of the static analyzer against the simulator.
//!
//! The static analyzer (`latency-check`) makes three falsifiable claims
//! about every kernel, and this module checks each one against a real
//! instrumented run of the same kernel on the same machine description:
//!
//! - **Transactions** (contract A): the symbolic coalescing prediction
//!   (`lines_per_warp`, evaluated at the machine's transaction granule —
//!   the sector size on sectored presets, the line size otherwise) must
//!   match the per-warp transaction counts the simulator's own coalescer
//!   produced ([`gpu_sim::stats::LoadInstrRecord::lines`], keyed by pc).
//!   Outside divergent control flow the match is *exact* for a fully-active
//!   warp; under divergence (or a loop whose per-iteration stride is not
//!   granule-aligned) the static count is an upper bound.
//! - **Levels** (contract B): every completed request's service level,
//!   derived from its [`Timeline`] stamps, must lie in the level set the
//!   machine description declares feasible for that space
//!   ([`gpu_arch::ArchDesc::feasible_levels`]).
//! - **Floor** (contract C): the analytic unloaded latency of each level
//!   ([`gpu_arch::ArchDesc::unloaded_latency`]) must not exceed the
//!   pointer-chase-measured latency of the same level
//!   ([`latency_core::measure_row`]) — the static floor really is a floor.
//!
//! Contract A/B run per (preset, workload) cell via [`validate_run`];
//! contract C runs once per preset via [`validate_floor`]. The
//! `static_vs_dynamic` integration test sweeps the full Table-I matrix,
//! and `lint --validate` prints the same reports from the command line.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use gpu_arch::{ArchDesc, LevelKind};
use gpu_mem::{PipelineSpace, Stamp, Timeline};
use gpu_sim::{GpuConfig, SimError};
use latency_check::{AnalysisConfig, Cfg};
use latency_core::{ArchPreset, ChaseError};

use crate::experiments::{run_workload_traced, workload_kernel, Workload};

/// One statically-predicted load compared against its dynamic records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadCheck {
    /// Instruction pc.
    pub pc: gpu_isa::Pc,
    /// Predicted line transactions per fully-active warp.
    pub predicted_lines: usize,
    /// Largest per-warp line count any dynamic record produced.
    pub max_observed_lines: u32,
    /// Number of dynamic records at this pc.
    pub records: usize,
    /// `true` when the access executes under divergent control flow, so
    /// the static count is only an upper bound.
    pub divergent: bool,
    /// `true` when the exact-match contract applied (and held).
    pub exact: bool,
}

/// Contract A + B verdict for one (machine, workload) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    /// Machine description name.
    pub arch: String,
    /// Workload name.
    pub workload: &'static str,
    /// Per-load transaction comparisons (predictions with a known pattern
    /// that produced dynamic records).
    pub loads: Vec<LoadCheck>,
    /// Completed requests per derived service level.
    pub level_counts: BTreeMap<&'static str, usize>,
    /// Total completed requests inspected.
    pub requests: usize,
    /// Contract violations, empty when the cell validates.
    pub violations: Vec<String>,
}

impl ValidationReport {
    /// `true` when every contract held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the cell verdict as human-readable text.
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        let levels: Vec<String> = self
            .level_counts
            .iter()
            .map(|(k, n)| format!("{k}:{n}"))
            .collect();
        let _ = writeln!(
            out,
            "{} x {}: {} load pc(s) compared, {} request(s) [{}] -> {}",
            self.workload,
            self.arch,
            self.loads.len(),
            self.requests,
            levels.join(" "),
            if self.ok() { "ok" } else { "FAIL" },
        );
        for v in &self.violations {
            let _ = writeln!(out, "  violation: {v}");
        }
        out
    }
}

/// One level's analytic-vs-measured latency comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorCheck {
    /// Level label.
    pub level: &'static str,
    /// Analytic unloaded latency from the machine description.
    pub analytic: u64,
    /// Pointer-chase-measured per-access latency.
    pub measured: f64,
}

/// Contract C verdict for one preset.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorReport {
    /// Machine description name.
    pub arch: String,
    /// Per-level comparisons.
    pub checks: Vec<FloorCheck>,
    /// Contract violations, empty when every floor holds.
    pub violations: Vec<String>,
}

impl FloorReport {
    /// `true` when every analytic floor lower-bounds its measurement.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the preset verdict as human-readable text.
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: floor check -> {}",
            self.arch,
            if self.ok() { "ok" } else { "FAIL" }
        );
        for c in &self.checks {
            let _ = writeln!(
                out,
                "  {}: analytic {} cyc <= measured {:.1} cyc",
                c.level, c.analytic, c.measured
            );
        }
        for v in &self.violations {
            let _ = writeln!(out, "  violation: {v}");
        }
        out
    }
}

/// Scales a preset down (like the determinism suite) so full-matrix
/// validation stays fast; pipeline latencies are untouched.
fn small_cfg(preset: ArchPreset) -> GpuConfig {
    let mut cfg = preset.config();
    cfg.num_sms = cfg.num_sms.min(4);
    cfg.num_partitions = cfg.num_partitions.min(2);
    cfg
}

/// Derives the level that served a request from its timeline stamps: a
/// request that never crossed the interconnect was served at the L1; one
/// that entered the L2 queue but never the DRAM queue hit in L2; one that
/// entered the DRAM queue was served by DRAM. Returns `None` for a
/// physically impossible stamp combination.
pub fn derived_level(t: &Timeline) -> Option<LevelKind> {
    if t.get(Stamp::DramQueueEnter).is_some() {
        Some(LevelKind::DramFront)
    } else if t.get(Stamp::L2QueueEnter).is_some() {
        Some(LevelKind::L2)
    } else if t.get(Stamp::IcntInject).is_none() {
        Some(LevelKind::L1)
    } else {
        None
    }
}

/// The levels a request of `space` may legitimately be served at: the
/// union over both bypass modes (the request trace does not record whether
/// an access was an atomic).
fn allowed_levels(desc: &ArchDesc, space: PipelineSpace) -> Vec<LevelKind> {
    let mut v = desc.feasible_levels(space, false);
    for k in desc.feasible_levels(space, true) {
        if !v.contains(&k) {
            v.push(k);
        }
    }
    v
}

/// Runs `workload` on a scaled-down `preset` machine and checks contracts
/// A (transaction counts) and B (service levels) against the traces.
///
/// # Errors
///
/// Propagates simulator failures; contract violations are reported in the
/// returned [`ValidationReport`], not as errors.
pub fn validate_run(preset: ArchPreset, workload: Workload) -> Result<ValidationReport, SimError> {
    let cfg = small_cfg(preset);
    let desc = cfg.arch_desc();
    let kernel = workload_kernel(workload);
    let kcfg = Cfg::build(&kernel);
    let sym = latency_check::symaddr::analyze(&kernel, &kcfg);
    // Contract A compares *transaction* counts, which on a sectored machine
    // means sectors: the simulator's coalescer emits granule-sized
    // transactions, so the static prediction must count at the same granule
    // (identical to the line size on the paper-era presets).
    let acfg = AnalysisConfig {
        line_size: desc.transaction_granule(),
        warp_size: desc.sm.warp_size,
        ..AnalysisConfig::default()
    };
    let preds = latency_check::memlint::predict_from(&sym, &acfg);
    let run = run_workload_traced(cfg, workload)?;

    let mut violations = Vec::new();

    // Contract A: per-pc line counts.
    let mut by_pc: BTreeMap<gpu_isa::Pc, Vec<u32>> = BTreeMap::new();
    for r in &run.loads {
        by_pc.entry(r.pc).or_default().push(r.lines);
    }
    for pc in by_pc.keys() {
        if sym.access_at(*pc).is_none() {
            violations.push(format!(
                "dynamic load at pc {pc} has no static access prediction"
            ));
        }
    }
    let mut loads = Vec::new();
    for p in &preds {
        let Some(n) = p.lines_per_warp else {
            continue; // unknown pattern: the analyzer claimed nothing
        };
        let Some(obs) = by_pc.get(&p.pc) else {
            continue; // access never executed (e.g. guarded off)
        };
        let divergent = sym.pc_in_divergent_region(&kcfg, p.pc);
        // A loop stride that is not line-aligned shifts the window across
        // line boundaries, so later iterations may straddle one extra line
        // relative to the iteration-0 prediction.
        let iter_slack = usize::from(
            p.iter_stride
                .is_some_and(|s| s.unsigned_abs() % acfg.line_size != 0),
        );
        let max_obs = obs.iter().copied().max().unwrap_or(0);
        if max_obs as usize > n + iter_slack {
            violations.push(format!(
                "pc {}: observed {} line(s)/warp exceeds predicted {} (+{} slack)",
                p.pc, max_obs, n, iter_slack
            ));
        }
        let exact = !divergent && iter_slack == 0;
        if exact && max_obs as usize != n {
            violations.push(format!(
                "pc {}: predicted exactly {} line(s)/warp outside divergence, observed {}",
                p.pc, n, max_obs
            ));
        }
        loads.push(LoadCheck {
            pc: p.pc,
            predicted_lines: n,
            max_observed_lines: max_obs,
            records: obs.len(),
            divergent,
            exact,
        });
    }
    // Contract B: derived service levels.
    let allowed_global = allowed_levels(&desc, PipelineSpace::Global);
    let allowed_local = allowed_levels(&desc, PipelineSpace::Local);
    let mut level_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for req in &run.requests {
        match derived_level(&req.timeline) {
            Some(level) => {
                *level_counts.entry(level.label()).or_insert(0) += 1;
                let allowed = match req.space {
                    PipelineSpace::Global => &allowed_global,
                    PipelineSpace::Local => &allowed_local,
                };
                if !allowed.contains(&level) {
                    violations.push(format!(
                        "request served at {} but {:?} space only allows {:?}",
                        level.label(),
                        req.space,
                        allowed.iter().map(|k| k.label()).collect::<Vec<_>>(),
                    ));
                }
            }
            None => violations.push(
                "request crossed the interconnect but entered neither the L2 nor the DRAM queue"
                    .to_string(),
            ),
        }
    }

    Ok(ValidationReport {
        arch: desc.name.clone(),
        workload: workload.name(),
        loads,
        level_counts,
        requests: run.requests.len(),
        violations,
    })
}

/// Checks contract C for `preset`: every level's analytic unloaded latency
/// must lower-bound the pointer-chase measurement of the same level.
///
/// # Errors
///
/// Propagates chase-measurement failures; contract violations are reported
/// in the returned [`FloorReport`].
pub fn validate_floor(preset: ArchPreset) -> Result<FloorReport, ChaseError> {
    let desc = preset.desc();
    let row = latency_core::measure_row(preset)?;
    let mut checks = Vec::new();
    let mut violations = Vec::new();
    let pairs = [
        (LevelKind::L1, row.l1),
        (LevelKind::L2, row.l2),
        (LevelKind::DramFront, Some(row.dram)),
    ];
    for (kind, measured) in pairs {
        let Some(measured) = measured else {
            continue; // the preset has no such level, nothing was measured
        };
        match desc.unloaded_latency(kind) {
            Some(analytic) => {
                if analytic as f64 > measured {
                    violations.push(format!(
                        "{}: analytic floor {} cyc exceeds measured {:.1} cyc",
                        kind.label(),
                        analytic,
                        measured
                    ));
                }
                checks.push(FloorCheck {
                    level: kind.label(),
                    analytic,
                    measured,
                });
            }
            None => violations.push(format!(
                "{}: measured {:.1} cyc at a level the description cannot serve",
                kind.label(),
                measured
            )),
        }
    }
    Ok(FloorReport {
        arch: desc.name.clone(),
        checks,
        violations,
    })
}
