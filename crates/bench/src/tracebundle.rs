//! Trace-bundle export: the on-disk artifact of an instrumented run.
//!
//! A bundle directory holds the Perfetto-loadable Chrome trace
//! (`trace.json`), the raw event stream (`events.jsonl`), sampled counters
//! (`counters.csv`), the Figure-1/2 analyses (`breakdown.csv`,
//! `exposure.csv`), a clipped latency histogram (`latency_hist.csv`) and a
//! human-readable `metrics.txt` with counter summaries, stall attribution
//! and host throughput.
//!
//! The `LATENCY_TRACE` environment variable turns instrumented experiment
//! drivers into bundle writers without code changes: `1`/`true`/`on`
//! enables event collection only; any other non-empty value names a
//! directory to also write the bundle into (best effort — export failures
//! are reported on stderr, never fatal).

use std::io;
use std::path::{Path, PathBuf};

use gpu_sim::{
    CompletedRequest, GpuConfig, LevelKind, LoadInstrRecord, MetricsReport, RunSummary, StallReason,
};
use gpu_trace::{
    counters_csv, events_jsonl, ChromeTraceBuilder, CounterKind, ProfileReport, StageLabels,
    TraceData, TrackNames,
};
use latency_core::{breakdown_csv, exposure_csv, Bucketing, ExposureAnalysis, LatencyBreakdown};

/// Tracing behaviour requested through the `LATENCY_TRACE` environment
/// variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvTrace {
    /// Variable unset, empty, or `0`: no event tracing.
    Off,
    /// `1`, `true` or `on`: collect events in memory only.
    Collect,
    /// Any other value: collect events and write a bundle to this directory.
    Bundle(PathBuf),
}

impl EnvTrace {
    /// Whether event tracing should be switched on.
    pub fn enabled(&self) -> bool {
        *self != EnvTrace::Off
    }
}

/// Reads the `LATENCY_TRACE` environment variable.
pub fn env_request() -> EnvTrace {
    match std::env::var("LATENCY_TRACE") {
        Err(_) => EnvTrace::Off,
        Ok(v) => match v.trim() {
            "" | "0" => EnvTrace::Off,
            "1" | "true" | "on" => EnvTrace::Collect,
            dir => EnvTrace::Bundle(PathBuf::from(dir)),
        },
    }
}

/// Everything one instrumented run produced, borrowed for export.
#[derive(Debug)]
pub struct TraceBundle<'a> {
    /// Completed line fetches with full timelines.
    pub requests: &'a [CompletedRequest],
    /// Completed warp-level loads.
    pub loads: &'a [LoadInstrRecord],
    /// Event stream and counter samples.
    pub trace: &'a TraceData,
    /// Counter summaries, stall attribution, host throughput.
    pub metrics: &'a MetricsReport,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Stable content hash of the run (configuration timing + workload +
    /// inputs — see `RunSummary::content_hash`); doubles as the sweep
    /// cache key derivation, so two bundles with equal hashes came from
    /// identical simulations.
    pub content_hash: u64,
    /// SMs in the simulated machine (Perfetto track layout).
    pub num_sms: u32,
    /// Memory partitions in the simulated machine.
    pub num_partitions: u32,
    /// Per-stage span labels, derived from the machine's architecture
    /// description (see [`stage_labels_for`]); `StageLabels::default()`
    /// yields the paper's Figure-1 legend.
    pub stage_labels: StageLabels,
    /// Process/thread/counter display names for the Perfetto tracks,
    /// derived from the architecture description (see [`track_names_for`]).
    pub track_names: TrackNames,
    /// Host-side self-profile of the run (`LATENCY_PROFILE`), exported as
    /// `profile.txt`/`profile.json` and merged into `trace.json` as
    /// host-clock tracks. `None` when profiling was off.
    pub profile: Option<ProfileReport>,
}

/// The request-span stage labels for a machine: derived from the
/// architecture description's level list. For every paper preset this
/// equals `StageLabels::default()` — the hierarchy skeleton is the same —
/// so traces stay bit-identical; a description with differently-labeled
/// levels names its Perfetto slices after them.
pub fn stage_labels_for(cfg: &GpuConfig) -> StageLabels {
    StageLabels::new(cfg.arch_desc().fig1_stage_labels())
}

/// Perfetto track display names for a machine, derived from its
/// architecture description: process names carry the description's display
/// name, and the counter tracks are spelled with the hierarchy's own level
/// and queue labels (`LevelKind::label`/`queue_label`) instead of the
/// tracer's fixed machine names — the ROADMAP's "description-driven track
/// naming" item.
pub fn track_names_for(cfg: &GpuConfig) -> TrackNames {
    let desc = cfg.arch_desc();
    let level = |kind: LevelKind| {
        desc.level(kind)
            .map_or(kind.label(), |l| l.kind.label())
            .to_string()
    };
    let (l1, l2, dram) = (
        level(LevelKind::L1),
        level(LevelKind::L2),
        level(LevelKind::DramFront),
    );
    let mut counters = CounterKind::ALL.map(|k| k.name().to_string());
    counters[CounterKind::L1MshrOccupancy.index()] = format!("{l1} MSHR occupancy");
    counters[CounterKind::FrontDepth.index()] = "SM front-end depth".to_string();
    counters[CounterKind::MissQueueDepth.index()] =
        format!("{l1} queue ({})", LevelKind::L1.queue_label());
    counters[CounterKind::RopQueueDepth.index()] = "ROP queue".to_string();
    // On a sliced L2 the depth counter aggregates every slice's input
    // queue; the track name says so, matching the sanitizer's per-slice
    // `l2-input.N` labels.
    let l2_slices = desc.level(LevelKind::L2).map_or(1, |l| l.slices.max(1));
    counters[CounterKind::L2QueueDepth.index()] = if l2_slices > 1 {
        format!(
            "{l2} queue ({} x{l2_slices} slices)",
            LevelKind::L2.queue_label()
        )
    } else {
        format!("{l2} queue ({})", LevelKind::L2.queue_label())
    };
    counters[CounterKind::L2MshrOccupancy.index()] = format!("{l2} MSHR occupancy");
    counters[CounterKind::DramQueueDepth.index()] =
        format!("{dram} queue ({})", LevelKind::DramFront.queue_label());
    counters[CounterKind::IcntInFlight.index()] = "crossbar in-flight".to_string();
    counters[CounterKind::Outstanding.index()] = "outstanding requests".to_string();
    counters[CounterKind::DramRowHitPermille.index()] = format!("{dram} row-hit permille");
    TrackNames {
        sms_process: format!("{} SMs", desc.name),
        partitions_process: format!("{} memory partitions", desc.name),
        gpu_process: format!("{} GPU", desc.name),
        host_process: format!("Host self-profile ({})", desc.name),
        sm_prefix: "SM".to_string(),
        partition_prefix: "Partition".to_string(),
        counters,
    }
}

impl TraceBundle<'_> {
    /// Renders the Chrome trace-event JSON: one track per SM / partition,
    /// one async span per traced request tiled into its pipeline stages,
    /// instants for events and counter tracks for samples.
    pub fn chrome_json(&self) -> String {
        let mut b = ChromeTraceBuilder::with_names(
            self.num_sms,
            self.num_partitions,
            self.track_names.clone(),
        );
        b.set_stage_labels(self.stage_labels.clone());
        for (i, r) in self.requests.iter().enumerate() {
            b.add_request_span(r.sm.get(), i as u64, &r.timeline);
        }
        for e in &self.trace.events {
            b.add_event(e);
        }
        for s in &self.trace.samples {
            b.add_counter_sample(s);
        }
        if let Some(p) = &self.profile {
            b.add_host_profile(p);
        }
        b.finish()
    }

    /// Renders `metrics.txt`: counter summaries, stall attribution and
    /// host throughput in a stable `key = value` / table format.
    pub fn metrics_text(&self) -> String {
        let m = self.metrics;
        let mut out = String::new();
        out.push_str(&format!("cycles = {}\n", self.cycles));
        out.push_str(&format!("content_hash = {:016x}\n", self.content_hash));
        out.push_str(&format!("host_nanos = {}\n", m.host_nanos));
        out.push_str(&format!(
            "cycles_per_second = {:.0}\n",
            m.cycles_per_second(self.cycles)
        ));
        out.push_str(&format!("events_recorded = {}\n", m.events_recorded));
        out.push_str(&format!("events_dropped = {}\n", m.events_dropped));
        out.push_str(&format!("counter_samples = {}\n", m.samples));
        out.push_str("\n[stalls]\n");
        for r in StallReason::ALL {
            out.push_str(&format!("{} = {}\n", r.name(), m.stalls.get(r)));
        }
        out.push_str("\n[counters]  # name min mean max\n");
        for kind in CounterKind::ALL {
            let s = m.counter(kind);
            if s.samples == 0 {
                continue;
            }
            out.push_str(&format!(
                "{} {} {:.1} {}\n",
                kind.name(),
                s.min,
                s.mean(),
                s.max
            ));
        }
        out
    }

    /// Renders `latency_hist.csv`: quantile-clipped request-latency
    /// histogram (`lo,hi,count` per bucket plus an `overflow` row).
    pub fn latency_hist_csv(&self) -> String {
        let bucketing = Bucketing::from_totals(
            self.requests
                .iter()
                .filter_map(|r| r.timeline.total_latency()),
            32,
            0.999,
        );
        let mut out = String::from("lo,hi,count\n");
        let b = bucketing.buckets();
        for i in 0..b.len() {
            let (lo, hi) = b.range(i);
            out.push_str(&format!("{lo},{hi},{}\n", b.count(i)));
        }
        out.push_str(&format!("overflow,,{}\n", bucketing.overflow()));
        out
    }

    /// Writes the full bundle into `dir`, creating it if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("trace.json"), self.chrome_json())?;
        std::fs::write(dir.join("events.jsonl"), events_jsonl(&self.trace.events))?;
        std::fs::write(dir.join("counters.csv"), counters_csv(&self.trace.samples))?;
        let (breakdown, _) = LatencyBreakdown::from_requests_clipped(self.requests, 48, 0.999);
        std::fs::write(dir.join("breakdown.csv"), breakdown_csv(&breakdown))?;
        let (exposure, _) = ExposureAnalysis::from_loads_clipped(self.loads, 24, 0.999);
        std::fs::write(dir.join("exposure.csv"), exposure_csv(&exposure))?;
        std::fs::write(dir.join("latency_hist.csv"), self.latency_hist_csv())?;
        std::fs::write(dir.join("metrics.txt"), self.metrics_text())?;
        if let Some(p) = &self.profile {
            std::fs::write(dir.join("profile.txt"), p.text())?;
            std::fs::write(dir.join("profile.json"), p.json())?;
        }
        Ok(())
    }

    /// Best-effort write for `LATENCY_TRACE`-triggered exports: failures
    /// go to stderr instead of aborting the experiment.
    pub fn write_best_effort(&self, dir: &Path) {
        if let Err(e) = self.write(dir) {
            eprintln!("warning: failed to write trace bundle to {dir:?}: {e}");
        }
    }
}

/// Applies the `LATENCY_TRACE` request to a run summary + traced data,
/// writing a bundle when a directory was named. Machine shape, stage labels
/// and track names are derived from the run's configuration; a host-side
/// self-profile is included when the profiler is recording.
pub fn export_if_requested(
    req: &EnvTrace,
    summary: &RunSummary,
    requests: &[CompletedRequest],
    loads: &[LoadInstrRecord],
    trace: &TraceData,
    cfg: &GpuConfig,
) {
    if let EnvTrace::Bundle(dir) = req {
        TraceBundle {
            requests,
            loads,
            trace,
            metrics: &summary.metrics,
            cycles: summary.cycles,
            content_hash: summary.content_hash,
            num_sms: cfg.num_sms as u32,
            num_partitions: cfg.num_partitions as u32,
            stage_labels: stage_labels_for(cfg),
            track_names: track_names_for(cfg),
            profile: gpu_trace::profile::enabled().then(gpu_trace::profile::report),
        }
        .write_best_effort(dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_bfs_traced, BfsExperiment};
    use gpu_sim::GpuConfig;

    #[test]
    fn bundle_writes_all_files_and_valid_chrome_json() {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 2;
        cfg.num_partitions = 2;
        cfg.trace.enabled = true;
        let exp = BfsExperiment {
            nodes: 256,
            degree: 4,
            seed: 7,
            block_dim: 64,
        };
        let stage_labels = stage_labels_for(&cfg);
        assert_eq!(stage_labels, StageLabels::default());
        let track_names = track_names_for(&cfg);
        assert_eq!(track_names.sms_process, "GF100-like (Fermi) SMs");
        assert!(track_names
            .counters
            .iter()
            .any(|c| c == "L1 MSHR occupancy"));
        let run = run_bfs_traced(cfg, &exp).unwrap();
        let bundle = TraceBundle {
            requests: &run.requests,
            loads: &run.loads,
            trace: &run.trace,
            metrics: &run.metrics,
            cycles: run.cycles,
            content_hash: run.content_hash,
            num_sms: 2,
            num_partitions: 2,
            stage_labels,
            track_names,
            profile: None,
        };

        let json = bundle.chrome_json();
        let doc = gpu_trace::json::parse(&json).expect("valid chrome trace json");
        let verified = gpu_trace::check_span_sums(&doc).expect("stage sums tile lifetimes");
        assert!(verified > 0);

        let dir = std::env::temp_dir().join(format!("gpu-trace-bundle-{}", std::process::id()));
        bundle.write(&dir).expect("bundle written");
        for f in [
            "trace.json",
            "events.jsonl",
            "counters.csv",
            "breakdown.csv",
            "exposure.csv",
            "latency_hist.csv",
            "metrics.txt",
        ] {
            assert!(dir.join(f).is_file(), "missing bundle file {f}");
        }
        let metrics = std::fs::read_to_string(dir.join("metrics.txt")).unwrap();
        assert!(metrics.contains("cycles_per_second"));
        assert!(metrics.contains("[stalls]"));
        assert!(
            metrics.contains(&format!("content_hash = {:016x}", run.content_hash)),
            "metrics.txt must carry the run's content hash"
        );
        assert_ne!(run.content_hash, 0, "BFS run must hash its content");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sliced_l2_names_its_aggregated_queue_track() {
        // The modern sectored presets have a sliced L2: the depth counter
        // sums every slice's input queue, and the Perfetto track name must
        // say so instead of pretending the L2 has one monolithic queue.
        let modern = track_names_for(&latency_core::ArchPreset::VoltaGv100.config());
        assert!(
            modern
                .counters
                .iter()
                .any(|c| c == "L2 queue (l2-input x2 slices)"),
            "GV100 L2 queue track not slice-aware: {:?}",
            modern.counters
        );
        // Paper-era machines keep the legacy single-queue spelling.
        let legacy = track_names_for(&GpuConfig::fermi_gf100());
        assert!(
            legacy.counters.iter().any(|c| c == "L2 queue (l2-input)"),
            "GF100 L2 queue track changed spelling: {:?}",
            legacy.counters
        );
    }

    #[test]
    fn env_values_parse() {
        // No env mutation: exercise the match arms via the public type.
        assert!(!EnvTrace::Off.enabled());
        assert!(EnvTrace::Collect.enabled());
        assert!(EnvTrace::Bundle(PathBuf::from("x")).enabled());
    }
}
