//! Per-preset cross-validation against the published reference tables.
//!
//! Every registered [`ArchPreset`] is a hand-written data table claiming to
//! reproduce a *published* machine: the paper's Table I for the four
//! ISPASS 2015 generations (plus the GF100/GK110 derivatives), and the
//! modern-generation microbenchmark papers (arXiv:2208.11174,
//! arXiv:2507.10789) for the sectored GV100/GA102 presets. This module is
//! the harness that keeps those claims falsifiable: the published per-level
//! unloaded latencies are committed in-repo as `REFERENCE_latencies.json`
//! (embedded at compile time), and [`run_validation_bench`] diffs, for each
//! preset and each level the chip exposes to the global pipeline,
//!
//! - the **analytic** unloaded latency of the description
//!   ([`gpu_arch::ArchDesc::unloaded_latency`]), and
//! - the **measured** pointer-chase plateau
//!   ([`latency_core::measure_row`], the same measurement the Table I
//!   reproduction uses)
//!
//! against the published reference value, within the file's tolerance.
//! A presence mismatch (the chase finds a plateau the published table does
//! not have, or vice versa) is a violation too — a preset cannot silently
//! grow or lose a cache level.
//!
//! The `validate` bin drives this from the command line (the CI preset
//! matrix runs it once per preset), and the bench harness commits the full
//! eight-preset result as `BENCH_validation.json`, where every leaf is
//! simulation-pure and regression-checked exactly
//! ([`crate::regression::classify_document`]).

use std::fmt::Write as _;

use gpu_arch::LevelKind;
use gpu_trace::json::{self, Value};
use latency_core::{measure_row, ArchPreset};

/// The published reference tables, committed at the repository root and
/// embedded so the harness cannot run against a stale or missing copy.
pub const REFERENCE_TABLES: &str = include_str!("../../../REFERENCE_latencies.json");

/// One published row: per-level unloaded latencies in cycles, `None` where
/// the chip does not expose the level to the global pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceRow {
    /// Canonical chip token ([`ArchPreset::token`]).
    pub token: String,
    /// Where the numbers come from (paper + table).
    pub source: String,
    /// Published L1 latency.
    pub l1: Option<u64>,
    /// Published L2 latency.
    pub l2: Option<u64>,
    /// Published DRAM latency.
    pub dram: u64,
}

fn opt_cycles(row: &Value, key: &str) -> Result<Option<u64>, String> {
    match row.get(key) {
        Some(Value::Null) => Ok(None),
        Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
        other => Err(format!(
            "reference row field {key:?} is not a cycle count or null: {other:?}"
        )),
    }
}

/// Parses [`REFERENCE_TABLES`], returning the tolerance (in percent) and
/// the published rows in file order.
///
/// # Errors
///
/// Returns `Err` when the committed file is malformed — a broken reference
/// table is a repo bug, not a validation finding.
pub fn reference_rows() -> Result<(f64, Vec<ReferenceRow>), String> {
    let doc = json::parse(REFERENCE_TABLES).map_err(|e| format!("reference table: {e}"))?;
    let tolerance_percent = doc
        .get("tolerance_percent")
        .and_then(Value::as_num)
        .filter(|t| *t > 0.0)
        .ok_or("reference table lacks a positive tolerance_percent")?;
    let rows = doc
        .get("rows")
        .and_then(Value::as_arr)
        .ok_or("reference table lacks a rows array")?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let text = |key: &str| {
            row.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("reference row lacks {key:?}"))
        };
        out.push(ReferenceRow {
            token: text("token")?,
            source: text("source")?,
            l1: opt_cycles(row, "l1")?,
            l2: opt_cycles(row, "l2")?,
            dram: opt_cycles(row, "dram")?.ok_or("reference row has null dram")?,
        });
    }
    Ok((tolerance_percent, out))
}

/// One level's three-way comparison: published vs analytic vs chase-measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelValidation {
    /// Level label (`L1`, `L2`, `DRAM`).
    pub level: &'static str,
    /// Published latency from the committed reference table.
    pub reference: u64,
    /// Analytic unloaded latency of the preset's description.
    pub analytic: u64,
    /// Pointer-chase plateau the simulator measured.
    pub measured: f64,
}

impl LevelValidation {
    /// Relative error of the measured plateau against the published value.
    pub fn measured_rel_error(&self) -> f64 {
        (self.measured - self.reference as f64).abs() / self.reference as f64
    }

    /// Relative error of the analytic latency against the published value.
    pub fn analytic_rel_error(&self) -> f64 {
        (self.analytic as f64 - self.reference as f64).abs() / self.reference as f64
    }
}

/// One preset's verdict against its published row.
#[derive(Debug, Clone, PartialEq)]
pub struct PresetValidation {
    /// The validated preset.
    pub preset: ArchPreset,
    /// Citation carried over from the reference row.
    pub source: String,
    /// Per-level comparisons (levels present in both the published table
    /// and the measurement).
    pub levels: Vec<LevelValidation>,
    /// Violations, empty when the preset reproduces its published machine.
    pub violations: Vec<String>,
}

/// The full cross-validation record (`BENCH_validation.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationBench {
    /// Allowed relative divergence, in percent, from the committed table.
    pub tolerance_percent: f64,
    /// One row per validated preset, in request order.
    pub rows: Vec<PresetValidation>,
}

impl ValidationBench {
    /// `true` when every preset validated.
    pub fn ok(&self) -> bool {
        self.rows.iter().all(|r| r.violations.is_empty())
    }

    /// All violations across every preset, for error reporting.
    pub fn check(&self) -> Result<(), String> {
        let mut out = String::new();
        for row in &self.rows {
            for v in &row.violations {
                let _ = writeln!(out, "{}: {v}", row.preset.token());
            }
        }
        if out.is_empty() {
            Ok(())
        } else {
            Err(out)
        }
    }

    /// Renders the verdict as a human-readable table.
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "published-reference validation (tolerance {:.1}%)",
            self.tolerance_percent
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{} [{}] -> {}",
                row.preset.name(),
                row.source,
                if row.violations.is_empty() {
                    "ok"
                } else {
                    "FAIL"
                }
            );
            for l in &row.levels {
                let _ = writeln!(
                    out,
                    "  {:<4} published {:>4} cyc | analytic {:>4} cyc ({:+.2}%) | chase plateau {:>6.1} cyc ({:+.2}%)",
                    l.level,
                    l.reference,
                    l.analytic,
                    100.0 * (l.analytic as f64 / l.reference as f64 - 1.0),
                    l.measured,
                    100.0 * (l.measured / l.reference as f64 - 1.0),
                );
            }
            for v in &row.violations {
                let _ = writeln!(out, "  violation: {v}");
            }
        }
        out
    }

    /// Renders the committed `BENCH_validation.json` schema. Every leaf is
    /// a pure function of the committed reference table and the (fully
    /// deterministic) simulation, so the regression harness compares all of
    /// them exactly — there is no timing in this document.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"name\": \"validation\",\n");
        out.push_str(&format!(
            "  \"tolerance_percent\": {:.1},\n  \"rows\": [\n",
            self.tolerance_percent
        ));
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"preset\": \"{}\", \"token\": \"{}\", \"source\": \"{}\", \"levels\": [",
                row.preset.name(),
                row.preset.token(),
                row.source,
            ));
            for (j, l) in row.levels.iter().enumerate() {
                let sep = if j + 1 == row.levels.len() { "" } else { ", " };
                out.push_str(&format!(
                    "\n      {{\"level\": \"{}\", \"reference\": {}, \"analytic\": {}, \"measured\": {:.1}}}{sep}",
                    l.level, l.reference, l.analytic, l.measured
                ));
            }
            out.push_str(&format!("\n    ]}}{sep}\n"));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Validates one preset against its published row: presence, analytic
/// latency and measured plateau per level.
fn validate_preset(
    preset: ArchPreset,
    row: &ReferenceRow,
    measured: &latency_core::MeasuredRow,
    tolerance: f64,
) -> PresetValidation {
    let desc = preset.desc();
    let mut levels = Vec::new();
    let mut violations = Vec::new();
    let cells = [
        (LevelKind::L1, row.l1, measured.l1),
        (LevelKind::L2, row.l2, measured.l2),
        (LevelKind::DramFront, Some(row.dram), Some(measured.dram)),
    ];
    for (kind, published, plateau) in cells {
        match (published, plateau, desc.unloaded_latency(kind)) {
            // The published table and the chase agree the level is not
            // observable from the global pipeline; nothing to compare.
            (None, None, _) => {}
            (Some(reference), Some(measured), Some(analytic)) => {
                let l = LevelValidation {
                    level: kind.label(),
                    reference,
                    analytic,
                    measured,
                };
                if l.analytic_rel_error() > tolerance {
                    violations.push(format!(
                        "{}: analytic unloaded latency {} cyc diverges {:.2}% from published {} cyc",
                        kind.label(),
                        analytic,
                        100.0 * l.analytic_rel_error(),
                        reference
                    ));
                }
                if l.measured_rel_error() > tolerance {
                    violations.push(format!(
                        "{}: chase plateau {:.1} cyc diverges {:.2}% from published {} cyc",
                        kind.label(),
                        measured,
                        100.0 * l.measured_rel_error(),
                        reference
                    ));
                }
                levels.push(l);
            }
            (reference, plateau, analytic) => violations.push(format!(
                "{}: presence mismatch (published {reference:?}, chase plateau {plateau:?}, \
                 analytic {analytic:?})",
                kind.label()
            )),
        }
    }
    PresetValidation {
        preset,
        source: row.source.clone(),
        levels,
        violations,
    }
}

/// Runs the cross-validation harness for `presets`: one chase-measured row
/// each, diffed against the committed published table.
///
/// # Errors
///
/// Returns `Err` when the committed reference table is malformed or a chase
/// measurement fails outright; validation *findings* are reported in the
/// returned [`ValidationBench`], not as errors.
pub fn run_validation_bench(presets: &[ArchPreset]) -> Result<ValidationBench, String> {
    let (tolerance_percent, reference) = reference_rows()?;
    let tolerance = tolerance_percent / 100.0;
    let mut rows = Vec::with_capacity(presets.len());
    for &preset in presets {
        let Some(row) = reference.iter().find(|r| r.token == preset.token()) else {
            rows.push(PresetValidation {
                preset,
                source: String::new(),
                levels: Vec::new(),
                violations: vec![format!(
                    "no published reference row for token {:?} in REFERENCE_latencies.json",
                    preset.token()
                )],
            });
            continue;
        };
        let measured = measure_row(preset)
            .map_err(|e| format!("{}: chase measurement failed: {e}", preset.token()))?;
        rows.push(validate_preset(preset, row, &measured, tolerance));
    }
    Ok(ValidationBench {
        tolerance_percent,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_table_covers_every_registered_preset() {
        let (tolerance, rows) = reference_rows().expect("committed table parses");
        assert!(tolerance > 0.0);
        for preset in ArchPreset::ALL {
            let row = rows
                .iter()
                .find(|r| r.token == preset.token())
                .unwrap_or_else(|| panic!("no reference row for {}", preset.token()));
            assert!(!row.source.is_empty());
            // The committed published values and the preset's own expected
            // Table-I row must agree — two copies of the same literature.
            let expected = preset.table1_expected();
            assert_eq!(row.l1, expected.l1, "{} l1", preset.token());
            assert_eq!(row.l2, expected.l2, "{} l2", preset.token());
            assert_eq!(row.dram, expected.dram, "{} dram", preset.token());
        }
    }

    fn fake_bench() -> ValidationBench {
        ValidationBench {
            tolerance_percent: 2.0,
            rows: vec![PresetValidation {
                preset: ArchPreset::VoltaGv100,
                source: "arXiv:2208.11174".to_string(),
                levels: vec![
                    LevelValidation {
                        level: "L1",
                        reference: 28,
                        analytic: 28,
                        measured: 28.0,
                    },
                    LevelValidation {
                        level: "DRAM",
                        reference: 472,
                        analytic: 472,
                        measured: 472.0,
                    },
                ],
                violations: Vec::new(),
            }],
        }
    }

    #[test]
    fn validation_json_parses_and_keeps_schema() {
        let doc = json::parse(&fake_bench().json()).expect("valid json");
        assert_eq!(doc.get("name").and_then(Value::as_str), Some("validation"));
        let rows = doc.get("rows").and_then(Value::as_arr).expect("rows");
        assert_eq!(rows[0].get("token").and_then(Value::as_str), Some("gv100"));
        let levels = rows[0]
            .get("levels")
            .and_then(Value::as_arr)
            .expect("levels");
        assert_eq!(levels.len(), 2);
        assert_eq!(
            levels[0].get("reference").and_then(Value::as_num),
            Some(28.0)
        );
        assert_eq!(
            levels[1].get("measured").and_then(Value::as_num),
            Some(472.0)
        );
    }

    #[test]
    fn validation_schema_is_fully_audited() {
        // Satellite pin: every leaf the validation suite commits is
        // simulation-pure and must be compared *exactly* by `--check` —
        // this document has no timing and no informational fields at all.
        let classes =
            crate::regression::classify_document(&fake_bench().json()).expect("classifiable");
        assert!(!classes.is_empty());
        for (path, class) in classes {
            assert_eq!(
                class,
                crate::regression::MetricClass::Exact,
                "leaf {path:?} must be exact-compared; add a rule in regression::rule_for"
            );
        }
    }

    #[test]
    fn divergence_is_a_violation_not_an_error() {
        let (_, rows) = reference_rows().expect("parses");
        let row = rows.iter().find(|r| r.token == "gv100").expect("gv100 row");
        let measured = latency_core::MeasuredRow {
            l1: Some(28.0),
            l2: Some(250.0), // ~30% off the published 193
            dram: 472.0,
        };
        let v = validate_preset(ArchPreset::VoltaGv100, row, &measured, 0.02);
        assert_eq!(v.violations.len(), 1, "{:?}", v.violations);
        assert!(
            v.violations[0].contains("chase plateau"),
            "{:?}",
            v.violations
        );
    }

    #[test]
    fn presence_mismatch_is_a_violation() {
        let (_, rows) = reference_rows().expect("parses");
        let row = rows.iter().find(|r| r.token == "gv100").expect("gv100 row");
        let measured = latency_core::MeasuredRow {
            l1: None, // chase lost the L1 plateau
            l2: Some(193.0),
            dram: 472.0,
        };
        let v = validate_preset(ArchPreset::VoltaGv100, row, &measured, 0.02);
        assert!(
            v.violations.iter().any(|m| m.contains("presence mismatch")),
            "{:?}",
            v.violations
        );
    }

    #[test]
    fn gt200_validates_against_the_published_row() {
        // End-to-end on the cheapest preset: DRAM-only machine, one chase.
        let bench = run_validation_bench(&[ArchPreset::TeslaGt200]).expect("harness runs");
        assert!(bench.ok(), "{}", bench.to_human());
        assert_eq!(bench.rows[0].levels.len(), 1);
        assert_eq!(bench.rows[0].levels[0].level, "DRAM");
    }
}
