//! Baseline comparison for the bench harness: fresh `BENCH_*.json` results
//! against the committed ones, with per-metric rules.
//!
//! Metrics fall into three classes, chosen by leaf key name:
//!
//! - **Determinism** (`content_hash`, `simulated_cycles`, `instructions`,
//!   cache hit/miss counts, grid shape, names): must reproduce *exactly*.
//!   Any divergence is [`Severity::Fatal`] on every host — a changed hash
//!   means the simulation itself changed, which no amount of CI noise
//!   explains.
//! - **Timing** (`wall_seconds`, `cycles_per_second`, `speedup_vs_serial`,
//!   `warm_hit_rate`, the sweep-cache `speedup`): compared against a
//!   per-metric threshold, regressions only (improvements never flag).
//!   Fatal by default, downgraded to [`Severity::Warn`] when
//!   `timing_warn_only` is set — the bench bin sets it on a single-CPU
//!   host, and it is forced whenever the two documents record different
//!   `host_cpus` (the timings are then not comparable at all).
//! - **Informational** (`host_cpus`, the profiler's per-stage `stages` /
//!   `stage_breakdown` nanoseconds): never compared numerically; presence
//!   differences are worth a warning, value differences are expected.
//!
//! A key present in only one document is otherwise a fatal schema
//! divergence: the fix is either the code change that motivated it plus
//! `bench --update-baselines`, or a bug.

use gpu_trace::json::{self, Value};

/// Per-metric regression thresholds (fractional, regressions only).
#[derive(Debug, Clone)]
pub struct Thresholds {
    /// `wall_seconds` may grow by this fraction before flagging (0.5 =
    /// tolerate 50% slower — shared CI runners are noisy).
    pub wall_slowdown: f64,
    /// `cycles_per_second` may drop by this fraction.
    pub throughput_drop: f64,
    /// `speedup_vs_serial` may drop by this fraction.
    pub speedup_drop: f64,
    /// `warm_hit_rate` may drop by this absolute amount (it should be 1.0;
    /// any real drop means the sweep cache broke).
    pub hit_rate_drop: f64,
    /// The sweep-cache `speedup` is too machine-dependent for a ratio test;
    /// instead the fresh value must stay above this absolute floor.
    pub cache_speedup_floor: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            wall_slowdown: 0.50,
            throughput_drop: 0.35,
            speedup_drop: 0.35,
            hit_rate_drop: 0.02,
            cache_speedup_floor: 2.0,
        }
    }
}

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context worth printing, never a failure.
    Info,
    /// A regression signal on a host whose timings are not trustworthy.
    Warn,
    /// Determinism divergence, schema divergence, or a timing regression
    /// on a comparable host. Fails the check.
    Fatal,
}

/// One comparison finding, anchored to a flattened JSON path.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Dotted path into the document (`runs[2].wall_seconds`).
    pub path: String,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable explanation with both values.
    pub message: String,
}

/// The outcome of comparing one benchmark document pair.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// All findings, in document order.
    pub findings: Vec<Finding>,
}

impl Comparison {
    /// True if any finding is fatal.
    pub fn fatal(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Fatal)
    }

    /// Number of warn-level findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// One line per finding, `FATAL`/`warn`/`info` prefixed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Info => "info ",
                Severity::Warn => "warn ",
                Severity::Fatal => "FATAL",
            };
            out.push_str(&format!("{tag} {}: {}\n", f.path, f.message));
        }
        out
    }
}

/// Parses both documents and compares them under the rules above.
///
/// # Errors
///
/// Returns `Err` when either document fails to parse — a corrupt baseline
/// is not a "regression", it needs a human.
pub fn compare_json(
    baseline: &str,
    current: &str,
    thresholds: &Thresholds,
    timing_warn_only: bool,
) -> Result<Comparison, String> {
    let b = json::parse(baseline).map_err(|e| format!("baseline does not parse: {e}"))?;
    let c = json::parse(current).map_err(|e| format!("current result does not parse: {e}"))?;
    Ok(compare_values(&b, &c, thresholds, timing_warn_only))
}

/// Flattened JSON leaf.
#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Num(f64),
    Text(String),
    Bool(bool),
    Null,
}

fn flatten(v: &Value, prefix: &str, out: &mut Vec<(String, Leaf)>) {
    match v {
        Value::Obj(pairs) => {
            for (k, child) in pairs {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(child, &path, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                flatten(child, &format!("{prefix}[{i}]"), out);
            }
        }
        Value::Num(n) => out.push((prefix.to_string(), Leaf::Num(*n))),
        Value::Str(s) => out.push((prefix.to_string(), Leaf::Text(s.clone()))),
        Value::Bool(b) => out.push((prefix.to_string(), Leaf::Bool(*b))),
        Value::Null => out.push((prefix.to_string(), Leaf::Null)),
    }
}

/// The leaf key a path ends in: `runs[2].wall_seconds` → `wall_seconds`.
fn leaf_key(path: &str) -> &str {
    let seg = path.rsplit('.').next().unwrap_or(path);
    match seg.find('[') {
        Some(i) => &seg[..i],
        None => seg,
    }
}

/// The comparison rule for one leaf, chosen by key name.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Rule {
    /// Exact equality, fatal on divergence.
    Exact,
    /// `new > old * (1 + tol)` flags (bigger is worse).
    Slower(f64),
    /// `new < old * (1 - tol)` flags (smaller is worse).
    LowerRatio(f64),
    /// `new < old - tol` flags (absolute drop).
    LowerAbs(f64),
    /// `new < floor` flags regardless of the old value.
    FloorAbs(f64),
    /// Never compared numerically.
    Info,
}

fn rule_for(path: &str, t: &Thresholds) -> Rule {
    // Per-stage host-time attribution varies run to run by design.
    if path.contains("stages.") || path.contains("stage_breakdown") {
        return Rule::Info;
    }
    match leaf_key(path) {
        "content_hash" | "name" | "preset" | "workload" => Rule::Exact,
        "simulated_cycles" | "cycles" | "instructions" | "grid_points" | "skipped" | "num_sms"
        | "tick_threads" | "nodes" | "degree" | "hits" | "misses" | "stores" => Rule::Exact,
        // Serve-suite determinism: dedup and execution counts are
        // simulation-pure and must reproduce exactly on any host.
        "clients" | "executed_points" | "deduped_jobs" | "deduped_points" | "recovered_jobs" => {
            Rule::Exact
        }
        // Validation-suite determinism: published reference values, the
        // analytic model and the chase plateaus are all pure functions of
        // committed data and the deterministic simulation.
        "token" | "source" | "level" | "reference" | "analytic" | "measured"
        | "tolerance_percent" => Rule::Exact,
        "wall_seconds" | "total_wall_seconds" => Rule::Slower(t.wall_slowdown),
        "cycles_per_second" => Rule::LowerRatio(t.throughput_drop),
        "speedup_vs_serial" => Rule::LowerRatio(t.speedup_drop),
        "warm_hit_rate" => Rule::LowerAbs(t.hit_rate_drop),
        "speedup" => Rule::FloorAbs(t.cache_speedup_floor),
        // Serve-suite throughput and latency percentiles: thresholded like
        // every other wall-clock metric (warn-only on 1-CPU hosts).
        "jobs_per_second" => Rule::LowerRatio(t.throughput_drop),
        "job_seconds_p50" | "job_seconds_p95" => Rule::Slower(t.wall_slowdown),
        _ => Rule::Info,
    }
}

/// How a committed baseline field is treated, for auditing suite schemas:
/// everything a suite emits should be either simulation-pure (`Exact`) or
/// an explicitly thresholded wall-clock metric (`Timing`) — a field landing
/// in `Informational` is invisible to `--check` and needs either a rule
/// here or a reason to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Must reproduce exactly on any host (simulation-pure).
    Exact,
    /// Wall-clock-derived, threshold-compared, warn-only on 1-CPU hosts.
    Timing,
    /// Never compared numerically.
    Informational,
}

/// Classifies one flattened leaf path under the default thresholds.
#[must_use]
pub fn metric_class(path: &str) -> MetricClass {
    match rule_for(path, &Thresholds::default()) {
        Rule::Exact => MetricClass::Exact,
        Rule::Info => MetricClass::Informational,
        _ => MetricClass::Timing,
    }
}

/// Flattens a JSON document and classifies every leaf, so suite tests can
/// assert their whole committed schema is covered by `--check`.
///
/// # Errors
///
/// Propagates the JSON parse error.
pub fn classify_document(doc: &str) -> Result<Vec<(String, MetricClass)>, String> {
    let v = json::parse(doc)?;
    let mut leaves = Vec::new();
    flatten(&v, "", &mut leaves);
    Ok(leaves
        .into_iter()
        .map(|(path, _)| {
            let class = metric_class(&path);
            (path, class)
        })
        .collect())
}

fn leaf_display(leaf: &Leaf) -> String {
    match leaf {
        Leaf::Num(n) => format!("{n}"),
        Leaf::Text(s) => format!("\"{s}\""),
        Leaf::Bool(b) => format!("{b}"),
        Leaf::Null => "null".to_string(),
    }
}

/// Compares two parsed documents. See the module docs for the rules;
/// `timing_warn_only` downgrades timing regressions from fatal to warn and
/// is forced on when the documents record different `host_cpus`.
pub fn compare_values(
    baseline: &Value,
    current: &Value,
    thresholds: &Thresholds,
    mut timing_warn_only: bool,
) -> Comparison {
    let mut bleaves = Vec::new();
    let mut cleaves = Vec::new();
    flatten(baseline, "", &mut bleaves);
    flatten(current, "", &mut cleaves);
    let cmap: std::collections::BTreeMap<&str, &Leaf> =
        cleaves.iter().map(|(p, l)| (p.as_str(), l)).collect();
    let bmap: std::collections::BTreeMap<&str, &Leaf> =
        bleaves.iter().map(|(p, l)| (p.as_str(), l)).collect();

    let mut cmp = Comparison::default();
    if let (Some(Leaf::Num(hb)), Some(Leaf::Num(hc))) = (
        bmap.get("host_cpus").copied(),
        cmap.get("host_cpus").copied(),
    ) {
        if hb != hc {
            timing_warn_only = true;
            cmp.findings.push(Finding {
                path: "host_cpus".to_string(),
                severity: Severity::Info,
                message: format!(
                    "baseline measured on {hb} CPUs, this host has {hc}: \
                     timing deltas downgraded to warnings"
                ),
            });
        }
    }
    let timing_severity = if timing_warn_only {
        Severity::Warn
    } else {
        Severity::Fatal
    };

    for (path, old) in &bleaves {
        let rule = rule_for(path, thresholds);
        let Some(new) = cmap.get(path.as_str()).copied() else {
            cmp.findings.push(Finding {
                path: path.clone(),
                severity: presence_severity(path),
                message: "present in baseline but missing from this run \
                          (schema divergence; --update-baselines if intentional)"
                    .to_string(),
            });
            continue;
        };
        if rule == Rule::Info {
            continue;
        }
        // Numeric rules on non-numeric leaves (and vice versa) mean the
        // schema changed shape, which Exact catches and ratio rules treat
        // as fatal too.
        let finding = match (rule, old, new) {
            (Rule::Exact, a, b) => (a != b).then(|| {
                (
                    Severity::Fatal,
                    format!(
                        "must reproduce exactly: baseline {} vs {}",
                        leaf_display(a),
                        leaf_display(b)
                    ),
                )
            }),
            (Rule::Slower(tol), Leaf::Num(a), Leaf::Num(b)) => (*b > a * (1.0 + tol)).then(|| {
                (
                    timing_severity,
                    format!(
                        "{b:.4} is {:.0}% slower than baseline {a:.4}",
                        (b / a - 1.0) * 100.0
                    ),
                )
            }),
            (Rule::LowerRatio(tol), Leaf::Num(a), Leaf::Num(b)) => {
                (*b < a * (1.0 - tol)).then(|| {
                    (
                        timing_severity,
                        format!(
                            "{b:.4} is {:.0}% below baseline {a:.4}",
                            (1.0 - b / a) * 100.0
                        ),
                    )
                })
            }
            (Rule::LowerAbs(tol), Leaf::Num(a), Leaf::Num(b)) => (*b < a - tol).then(|| {
                (
                    timing_severity,
                    format!("{b:.4} dropped from baseline {a:.4}"),
                )
            }),
            (Rule::FloorAbs(floor), Leaf::Num(_), Leaf::Num(b)) => (*b < floor).then(|| {
                (
                    timing_severity,
                    format!("{b:.4} fell below the absolute floor {floor:.1}"),
                )
            }),
            // Shape change under a numeric rule.
            (_, a, b) => Some((
                Severity::Fatal,
                format!(
                    "type changed: baseline {} vs {}",
                    leaf_display(a),
                    leaf_display(b)
                ),
            )),
        };
        if let Some((severity, message)) = finding {
            cmp.findings.push(Finding {
                path: path.clone(),
                severity,
                message,
            });
        }
    }
    for (path, _) in &cleaves {
        if bmap.contains_key(path.as_str()) {
            continue;
        }
        cmp.findings.push(Finding {
            path: path.clone(),
            severity: presence_severity(path),
            message: "present in this run but not in the baseline \
                      (schema divergence; --update-baselines if intentional)"
                .to_string(),
        });
    }
    cmp
}

/// Severity when a path exists in only one document. The schemas are
/// fixed, so any asymmetry is fatal — except the profiler's optional
/// stage breakdowns, which honestly disappear when profiling is off.
fn presence_severity(path: &str) -> Severity {
    if path.contains("stages.") || path.contains("stage_breakdown") {
        Severity::Warn
    } else {
        Severity::Fatal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "name": "tick", "preset": "GF100", "host_cpus": 4,
        "content_hash": "6bb54b1962cb6f45",
        "runs": [
            {"tick_threads": 1, "wall_seconds": 1.0, "simulated_cycles": 104548,
             "cycles_per_second": 104548, "speedup_vs_serial": 1.0,
             "stages": {"tick_sms": 900}},
            {"tick_threads": 2, "wall_seconds": 0.5, "simulated_cycles": 104548,
             "cycles_per_second": 209096, "speedup_vs_serial": 2.0,
             "stages": {"tick_sms": 700}}
        ]
    }"#;

    fn check(current: &str, warn_only: bool) -> Comparison {
        compare_json(BASE, current, &Thresholds::default(), warn_only).expect("parses")
    }

    #[test]
    fn identical_documents_produce_no_findings() {
        let cmp = check(BASE, false);
        assert!(cmp.findings.is_empty(), "{}", cmp.render());
    }

    #[test]
    fn stage_nanos_differences_are_ignored() {
        let cur = BASE.replace("\"tick_sms\": 900", "\"tick_sms\": 123456");
        let cmp = check(&cur, false);
        assert!(cmp.findings.is_empty(), "{}", cmp.render());
    }

    #[test]
    fn hash_divergence_is_fatal_even_when_timing_is_warn_only() {
        let cur = BASE.replace("6bb54b1962cb6f45", "0000000000000000");
        let cmp = check(&cur, true);
        assert!(cmp.fatal(), "{}", cmp.render());
    }

    #[test]
    fn cycle_divergence_is_fatal() {
        let cur = BASE.replace(
            "\"simulated_cycles\": 104548,",
            "\"simulated_cycles\": 104549,",
        );
        assert!(check(&cur, true).fatal());
    }

    #[test]
    fn timing_regression_severity_tracks_host_comparability() {
        // 1.0s -> 2.0s is beyond the 50% tolerance.
        let cur = BASE.replace("\"wall_seconds\": 1.0", "\"wall_seconds\": 2.0");
        let fatal = check(&cur, false);
        assert!(fatal.fatal(), "{}", fatal.render());
        let warned = check(&cur, true);
        assert!(!warned.fatal(), "{}", warned.render());
        assert_eq!(warned.warnings(), 1);
    }

    #[test]
    fn timing_within_tolerance_is_silent() {
        let cur = BASE.replace("\"wall_seconds\": 1.0", "\"wall_seconds\": 1.3");
        let cmp = check(&cur, false);
        assert!(cmp.findings.is_empty(), "{}", cmp.render());
    }

    #[test]
    fn host_cpu_drift_downgrades_timing_to_warn() {
        let cur = BASE
            .replace("\"host_cpus\": 4", "\"host_cpus\": 1")
            .replace("\"wall_seconds\": 1.0", "\"wall_seconds\": 10.0");
        let cmp = check(&cur, false);
        assert!(!cmp.fatal(), "{}", cmp.render());
        assert!(cmp.warnings() >= 1);
    }

    #[test]
    fn missing_metric_is_schema_divergence() {
        let cur = BASE.replace("\"content_hash\": \"6bb54b1962cb6f45\",", "");
        assert!(check(&cur, true).fatal());
    }

    #[test]
    fn extra_metric_is_schema_divergence() {
        let cur = BASE.replace(
            "\"name\": \"tick\",",
            "\"name\": \"tick\", \"extra_cycles\": 1,",
        );
        assert!(check(&cur, true).fatal());
    }

    #[test]
    fn cache_speedup_floor_is_absolute() {
        let base = r#"{"name": "sweep", "speedup": 45601.0, "warm_hit_rate": 1.0}"#;
        let fast = r#"{"name": "sweep", "speedup": 3.5, "warm_hit_rate": 1.0}"#;
        let slow = r#"{"name": "sweep", "speedup": 1.2, "warm_hit_rate": 1.0}"#;
        let t = Thresholds::default();
        assert!(
            !compare_json(base, fast, &t, false).unwrap().fatal(),
            "a huge ratio drop is fine while the cache still clearly wins"
        );
        assert!(compare_json(base, slow, &t, false).unwrap().fatal());
    }

    #[test]
    fn hit_rate_drop_flags() {
        let base = r#"{"warm_hit_rate": 1.0}"#;
        let bad = r#"{"warm_hit_rate": 0.5}"#;
        assert!(compare_json(base, bad, &Thresholds::default(), false)
            .unwrap()
            .fatal());
    }

    #[test]
    fn corrupt_baseline_is_an_error_not_a_regression() {
        assert!(compare_json("{not json", BASE, &Thresholds::default(), false).is_err());
    }
}
