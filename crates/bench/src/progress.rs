//! `--progress`: a bounded-interval heartbeat for the long-running bins.
//!
//! The heartbeat is a background thread that polls the host-side
//! self-profiler's counters (`gpu_sim::profile`) and the sweep cache's
//! global statistics, and prints one status line to stderr at a bounded
//! interval — simulated cycles and throughput, the in-flight request gauge,
//! cache hits, and (when the caller declared a goal) an ETA. It observes
//! only process-global atomics, so it needs no plumbing through the run
//! paths: any bin can wrap any workload with [`ProgressHeartbeat::start`].
//!
//! Groundwork for the job-server roadmap item: the same counters a human
//! watches here are what a scheduler would poll.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpu_sim::profile::{self, ProfCounter};

/// Minimum time between heartbeat lines. Two seconds keeps even a long
/// sweep's stderr to a screenful while still showing liveness.
const BEAT_INTERVAL: Duration = Duration::from_secs(2);

/// Poll granularity for the stop flag, so dropping the heartbeat never
/// blocks a bin for a full beat interval.
const POLL: Duration = Duration::from_millis(100);

/// A running heartbeat; printing stops (and the thread joins) on drop.
#[derive(Debug)]
pub struct ProgressHeartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ProgressHeartbeat {
    /// Starts a heartbeat tagged `tag` with no completion goal (no ETA —
    /// a single simulated run's cycle count is open-ended).
    ///
    /// The self-profiler must already be enabled; the cycle counters the
    /// heartbeat reads are recorded only while it is on.
    pub fn start(tag: &str) -> Self {
        Self::with_goal(tag, None)
    }

    /// Starts a heartbeat that also reports progress toward `goal` =
    /// `(counter, total)` — e.g. `(ProfCounter::GridTasks, points)` for a
    /// sweep — and estimates time to completion from the counter's rate.
    pub fn with_goal(tag: &str, goal: Option<(ProfCounter, u64)>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let tag = tag.to_string();
        let handle = std::thread::Builder::new()
            .name("progress-heartbeat".to_string())
            .spawn(move || beat_loop(&tag, goal, &flag))
            .expect("spawn progress heartbeat");
        ProgressHeartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for ProgressHeartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn beat_loop(tag: &str, goal: Option<(ProfCounter, u64)>, stop: &AtomicBool) {
    let started = Instant::now();
    let mut last_beat = started;
    let mut last_cycles = profile::value(ProfCounter::CyclesTicked);
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(POLL);
        let now = Instant::now();
        if now.duration_since(last_beat) < BEAT_INTERVAL {
            continue;
        }
        let cycles = profile::value(ProfCounter::CyclesTicked);
        let rate = (cycles - last_cycles) as f64 / now.duration_since(last_beat).as_secs_f64();
        last_beat = now;
        last_cycles = cycles;
        eprintln!(
            "[{tag}] {}",
            status_line(
                started.elapsed(),
                cycles,
                rate,
                profile::value(ProfCounter::Outstanding),
                latency_core::cache_stats(),
                goal.map(|(c, total)| (profile::value(c), total)),
            )
        );
    }
}

/// Renders one heartbeat line. Pure, so the format is unit-testable:
/// elapsed wall time, cycles simulated with current throughput, the
/// in-flight request gauge, sweep-cache hit/miss counts, and — when a goal
/// is declared — `done/total` with a rate-extrapolated ETA.
fn status_line(
    elapsed: Duration,
    cycles: u64,
    cycles_per_sec: f64,
    in_flight: u64,
    cache: latency_core::CacheStats,
    goal: Option<(u64, u64)>,
) -> String {
    let mut line = format!(
        "{:>6.1}s  {} cycles ({}/s)  {in_flight} in flight  cache {}/{} hit",
        elapsed.as_secs_f64(),
        group_thousands(cycles),
        group_thousands(cycles_per_sec as u64),
        cache.hits,
        cache.hits + cache.misses,
    );
    if let Some((done, total)) = goal {
        line.push_str(&format!("  {done}/{total} tasks"));
        if done > 0 && done < total {
            let eta = elapsed.as_secs_f64() * (total - done) as f64 / done as f64;
            line.push_str(&format!("  ETA {eta:.0}s"));
        }
    }
    line
}

/// `1234567` → `"1,234,567"`: keeps nine-digit cycle counts readable.
fn group_thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1_000), "1,000");
        assert_eq!(group_thousands(1_234_567), "1,234,567");
    }

    #[test]
    fn status_line_has_every_field() {
        let cache = latency_core::CacheStats {
            hits: 3,
            misses: 5,
            stores: 5,
        };
        let line = status_line(
            Duration::from_secs(10),
            2_000_000,
            500_000.0,
            42,
            cache,
            Some((4, 16)),
        );
        assert!(line.contains("2,000,000 cycles"), "{line}");
        assert!(line.contains("(500,000/s)"), "{line}");
        assert!(line.contains("42 in flight"), "{line}");
        assert!(line.contains("cache 3/8 hit"), "{line}");
        assert!(line.contains("4/16 tasks"), "{line}");
        // 4 done in 10s -> 12 left at 2.5s each.
        assert!(line.contains("ETA 30s"), "{line}");
    }

    #[test]
    fn heartbeat_starts_and_stops_quickly() {
        let t0 = Instant::now();
        let hb = ProgressHeartbeat::start("test");
        drop(hb);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
