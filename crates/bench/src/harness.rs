//! Minimal std-only benchmark harness.
//!
//! The workspace builds fully offline, so the benches under `benches/` are
//! plain `fn main()` programs (`harness = false`) timed with
//! [`std::time::Instant`] instead of an external framework. The harness
//! keeps the part that matters for this repo — stable median-of-N wall-clock
//! reports and a `black_box` to keep results alive — and drops the rest.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so benches can keep results observable without pulling in
/// anything beyond std.
pub use std::hint::black_box as keep;

/// One benchmark's timing summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Samples actually measured.
    pub samples: usize,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// Runs `f` for `samples` timed iterations (after one untimed warm-up) and
/// returns median/min/max wall-clock times. The closure's result is passed
/// through [`black_box`] so the work cannot be optimized away.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn time<R>(samples: usize, mut f: impl FnMut() -> R) -> Timing {
    assert!(samples > 0, "need at least one sample");
    black_box(f());
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    times.sort_unstable();
    Timing {
        samples,
        median: times[times.len() / 2],
        min: times[0],
        max: times[times.len() - 1],
    }
}

/// Times `f` and prints one aligned report line, Criterion-style:
/// `name  median [min .. max]`.
pub fn bench<R>(name: &str, samples: usize, f: impl FnMut() -> R) -> Timing {
    let t = time(samples, f);
    println!(
        "{name:<40} {:>12} [{} .. {}] ({} samples)",
        fmt_duration(t.median),
        fmt_duration(t.min),
        fmt_duration(t.max),
        t.samples,
    );
    t
}

/// Like [`bench`], but also reports throughput as elements/second.
pub fn bench_throughput<R>(
    name: &str,
    samples: usize,
    elements: u64,
    f: impl FnMut() -> R,
) -> Timing {
    let t = time(samples, f);
    let secs = t.median.as_secs_f64();
    let rate = if secs > 0.0 {
        elements as f64 / secs
    } else {
        f64::INFINITY
    };
    println!(
        "{name:<40} {:>12} [{} .. {}] {:>14}/s ({} samples)",
        fmt_duration(t.median),
        fmt_duration(t.min),
        fmt_duration(t.max),
        fmt_rate(rate),
        t.samples,
    );
    t
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2} G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2} M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.2} K", r / 1e3)
    } else {
        format!("{r:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_reports_ordered_stats() {
        let t = time(5, || (0..1000u64).sum::<u64>());
        assert_eq!(t.samples, 5);
        assert!(t.min <= t.median && t.median <= t.max);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let _ = time(0, || ());
    }

    #[test]
    fn formats_cover_magnitudes() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.000 s");
        assert_eq!(fmt_rate(2.5e9), "2.50 G");
        assert_eq!(fmt_rate(2.5e6), "2.50 M");
        assert_eq!(fmt_rate(2.5e3), "2.50 K");
        assert_eq!(fmt_rate(25.0), "25.0");
    }
}
