//! The benchmark suite behind `bin/bench`, `bin/sweep --bench-out` and
//! `bin/tick`: each benchmark is a plain function returning a struct that
//! renders the committed `BENCH_*.json` schema, so the measuring bins and
//! the regression harness share one implementation instead of three
//! hand-rolled JSON writers.
//!
//! Three benchmarks:
//!
//! - [`run_sweep_bench`]: the §II stride × footprint grid measured cold and
//!   then warm from the content-addressed sweep cache (`BENCH_sweep.json`).
//! - [`run_tick_bench`]: one mask BFS per tick-thread count, verifying
//!   bit-identity while timing each; when the self-profiler is on, each run
//!   also records its per-[`TickStage`](gpu_sim::TickStage) host-time
//!   breakdown, so the scaling numbers show where the serial fractions
//!   live (`BENCH_tick.json`).
//! - [`run_workload_bench`]: end-to-end throughput over the E4 workload
//!   set, one simulated run each, pinning `content_hash`, cycle and
//!   instruction counts exactly (`BENCH_workloads.json`).
//!
//! Wall-clock fields are honest measurements of this host — the committed
//! baselines record `host_cpus` where timing depends on parallelism, and
//! the regression harness ([`crate::regression`]) treats timing as
//! warn-only when the hosts are not comparable. Everything derived from
//! the simulation alone (hashes, cycles, instructions, grid shape) must
//! reproduce exactly.

use std::path::{Path, PathBuf};
use std::time::Instant;

use gpu_serve::{Client, ServerConfig, ServerHandle};
use gpu_sim::profile::{self, ProfSpan};
use gpu_sim::{Gpu, SimError};
use gpu_trace::cycles_per_second;
use gpu_trace::json;
use gpu_workloads::bfs::{read_costs, run_bfs_mask, upload_graph_mask};
use gpu_workloads::Graph;
use latency_core::{
    cache_stats, pow2_range, reset_cache_stats, set_cache_dir, ArchPreset, CacheStats, ChaseSpace,
    Sweep,
};

use crate::experiments::{run_workload_traced, Workload};

/// Host CPU count recorded alongside timing so a baseline measured on one
/// machine is never silently compared against another shape of machine.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Converts a measured wall-clock duration to the nanosecond count the
/// shared [`cycles_per_second`] contract expects.
fn wall_nanos(seconds: f64) -> u64 {
    (seconds * 1e9) as u64
}

// ---------------------------------------------------------------------------
// Sweep-cache benchmark
// ---------------------------------------------------------------------------

/// The sweep grid shared by every output mode of the sweep bin and the
/// bench harness: 2 KiB–512 KiB footprints × four strides.
pub fn sweep_grid_spec() -> (Vec<u64>, [u64; 4]) {
    (pow2_range(2 * 1024, 512 * 1024), [128u64, 512, 2048, 8192])
}

/// Cold-vs-warm measurement of the full sweep grid (`BENCH_sweep.json`).
#[derive(Debug, Clone)]
pub struct SweepBench {
    /// Architecture the grid was measured on.
    pub preset: ArchPreset,
    /// Measured grid points (excluding skipped combinations).
    pub grid_points: usize,
    /// Grid combinations skipped as unmeasurable (chain shorter than 2).
    pub skipped: usize,
    /// Total simulated cycles the cold pass spent.
    pub simulated_cycles: u64,
    /// Cold-pass wall clock (empty cache: every point simulated).
    pub cold_wall_seconds: f64,
    /// Cache traffic of the cold pass (all misses, then stores).
    pub cold_cache: CacheStats,
    /// Warm-pass wall clock (fully populated cache: no simulation).
    pub warm_wall_seconds: f64,
    /// Cache traffic of the warm pass (all hits if the cache works).
    pub warm_cache: CacheStats,
}

impl SweepBench {
    /// Fraction of warm-pass lookups served from the cache.
    pub fn warm_hit_rate(&self) -> f64 {
        self.warm_cache.hit_rate()
    }

    /// Cold wall clock over warm wall clock.
    pub fn speedup(&self) -> f64 {
        self.cold_wall_seconds / self.warm_wall_seconds.max(1e-9)
    }

    /// Renders the committed `BENCH_sweep.json` schema.
    pub fn json(&self) -> String {
        format!(
            "{{\n  \"name\": \"sweep\",\n  \"preset\": \"{}\",\n  \"grid_points\": {},\n  \
             \"skipped\": {},\n  \"simulated_cycles\": {},\n  \
             \"cold\": {{\"wall_seconds\": {:.6}, \"cycles_per_second\": {:.0}, \"cache\": {}}},\n  \
             \"warm\": {{\"wall_seconds\": {:.6}, \"cache\": {}}},\n  \
             \"warm_hit_rate\": {:.4},\n  \"speedup\": {:.2}\n}}\n",
            self.preset.name(),
            self.grid_points,
            self.skipped,
            self.simulated_cycles,
            self.cold_wall_seconds,
            cycles_per_second(self.simulated_cycles, wall_nanos(self.cold_wall_seconds)),
            json_cache_stats(self.cold_cache),
            self.warm_wall_seconds,
            json_cache_stats(self.warm_cache),
            self.warm_hit_rate(),
            self.speedup(),
        )
    }

    /// The sweep bench's own invariant: the warm pass must actually have
    /// been carried by the cache, and must have been faster for it.
    pub fn check(&self) -> Result<(), String> {
        if self.warm_hit_rate() < 0.95 {
            return Err(format!(
                "warm pass hit rate {:.2}% < 95%",
                self.warm_hit_rate() * 100.0
            ));
        }
        if self.warm_wall_seconds >= self.cold_wall_seconds {
            return Err(format!(
                "warm pass ({:.3}s) not faster than cold ({:.3}s)",
                self.warm_wall_seconds, self.cold_wall_seconds
            ));
        }
        Ok(())
    }
}

fn json_cache_stats(s: CacheStats) -> String {
    format!(
        "{{\"hits\": {}, \"misses\": {}, \"stores\": {}}}",
        s.hits, s.misses, s.stores
    )
}

/// Measures the sweep grid cold (empty cache) and warm (fully populated),
/// panicking if the warm pass fails to reproduce the cold grid bit-for-bit.
///
/// With `cache: None` a per-process temporary directory is used and wiped
/// first, so the cold pass's cache traffic is deterministic (zero hits).
pub fn run_sweep_bench(preset: ArchPreset, cache: Option<PathBuf>) -> SweepBench {
    let cfg = preset.config_microbench();
    let (footprints, strides) = sweep_grid_spec();
    let dir = cache.unwrap_or_else(|| {
        let dir = std::env::temp_dir().join(format!("latency-sweep-bench-{}", std::process::id()));
        // A recycled pid must not hand the "cold" pass a warm cache.
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    set_cache_dir(&dir);

    reset_cache_stats();
    let t0 = Instant::now();
    let cold = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &strides).expect("cold sweep");
    let cold_wall_seconds = t0.elapsed().as_secs_f64();
    let cold_cache = cache_stats();

    reset_cache_stats();
    let t1 = Instant::now();
    let warm = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &strides).expect("warm sweep");
    let warm_wall_seconds = t1.elapsed().as_secs_f64();
    let warm_cache = cache_stats();

    assert_eq!(
        cold.points(),
        warm.points(),
        "warm-cache sweep must reproduce the cold sweep bit-for-bit"
    );
    SweepBench {
        preset,
        grid_points: cold.points().len(),
        skipped: cold.skipped_count(),
        simulated_cycles: cold_grid_cycles(&cfg, &footprints, &strides),
        cold_wall_seconds,
        cold_cache,
        warm_wall_seconds,
        warm_cache,
    }
}

/// Total simulated cycles the cold pass spent, recovered from the cached
/// measurements themselves (each grid point runs the microbench twice).
fn cold_grid_cycles(cfg: &gpu_sim::GpuConfig, footprints: &[u64], strides: &[u64]) -> u64 {
    use latency_core::{measure_chase, ChaseParams};
    let mut total = 0u64;
    for &f in footprints {
        for &s in strides {
            if f / s < 2 {
                continue;
            }
            // Served from the just-populated cache: no simulation here.
            if let Ok(m) = measure_chase(cfg, &ChaseParams::global(f, s)) {
                total += m.cycles_short + m.cycles_long;
            }
        }
    }
    total
}

// ---------------------------------------------------------------------------
// Tick-scaling benchmark
// ---------------------------------------------------------------------------

/// One timed BFS run at a fixed tick-thread count.
#[derive(Debug, Clone)]
pub struct TickRun {
    /// Intra-run tick threads used (1 = serial reference).
    pub tick_threads: usize,
    /// Wall clock of the simulated traversal.
    pub wall_seconds: f64,
    /// Simulated cycles (must match the serial run exactly).
    pub cycles: u64,
    /// `RunSummary::content_hash` (must match the serial run exactly).
    pub content_hash: u64,
    /// Host nanoseconds per [`ProfSpan::STAGES`] entry, measured by the
    /// self-profiler as a before/after delta around this run; all zeros
    /// when profiling is off.
    pub stage_nanos: Vec<u64>,
}

/// Tick-parallelism scaling record (`BENCH_tick.json`).
#[derive(Debug, Clone)]
pub struct TickBench {
    /// Architecture (full config, all SMs).
    pub preset: ArchPreset,
    /// SMs in the simulated machine.
    pub num_sms: usize,
    /// Host CPUs available to the tick pool.
    pub host_cpus: usize,
    /// BFS graph nodes.
    pub nodes: u32,
    /// BFS graph out-degree.
    pub degree: u32,
    /// Whether the self-profiler was on (stage breakdowns are real).
    pub profiled: bool,
    /// One entry per tick-thread count, serial first.
    pub runs: Vec<TickRun>,
}

impl TickBench {
    /// Renders the committed `BENCH_tick.json` schema. When [`profiled`]
    /// (see [`TickBench::profiled`]) each run carries a `stages` object
    /// mapping tick-stage labels to host nanoseconds — the per-stage
    /// breakdown that shows where a non-scaling run's serial fraction
    /// lives.
    pub fn json(&self) -> String {
        let serial = &self.runs[0];
        let mut json = String::from("{\n  \"name\": \"tick\",\n");
        json.push_str(&format!("  \"preset\": \"{}\",\n", self.preset.name()));
        json.push_str(&format!("  \"num_sms\": {},\n", self.num_sms));
        json.push_str(&format!("  \"host_cpus\": {},\n", self.host_cpus));
        json.push_str(&format!(
            "  \"workload\": \"bfs nodes={} degree={}\",\n",
            self.nodes, self.degree
        ));
        json.push_str(&format!(
            "  \"content_hash\": \"{:016x}\",\n  \"runs\": [\n",
            serial.content_hash
        ));
        for (i, m) in self.runs.iter().enumerate() {
            let sep = if i + 1 == self.runs.len() { "" } else { "," };
            json.push_str(&format!(
                "    {{\"tick_threads\": {}, \"wall_seconds\": {:.6}, \"simulated_cycles\": {}, \
                 \"cycles_per_second\": {:.0}, \"speedup_vs_serial\": {:.3}",
                m.tick_threads,
                m.wall_seconds,
                m.cycles,
                cycles_per_second(m.cycles, wall_nanos(m.wall_seconds)),
                serial.wall_seconds / m.wall_seconds.max(1e-9),
            ));
            if self.profiled {
                json.push_str(",\n     \"stages\": {");
                for (j, &stage) in ProfSpan::STAGES.iter().enumerate() {
                    let sep = if j + 1 == ProfSpan::STAGES.len() {
                        ""
                    } else {
                        ", "
                    };
                    json.push_str(&format!("\"{}\": {}{sep}", stage.label(), m.stage_nanos[j]));
                }
                json.push('}');
            }
            json.push_str(&format!("}}{sep}\n"));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Determinism invariant: every parallel run must reproduce the serial
    /// run's `content_hash` and cycle count exactly.
    pub fn check(&self) -> Result<(), String> {
        let serial = &self.runs[0];
        for m in &self.runs[1..] {
            if m.content_hash != serial.content_hash || m.cycles != serial.cycles {
                return Err(format!(
                    "{} tick threads diverged from serial (hash {:016x} vs {:016x}, \
                     cycles {} vs {})",
                    m.tick_threads, m.content_hash, serial.content_hash, m.cycles, serial.cycles
                ));
            }
        }
        Ok(())
    }
}

/// Runs the tick-scaling benchmark: one mask BFS per entry in `threads`
/// (serial first), timing each and — when the self-profiler is enabled —
/// attributing each run's host time to the nine tick stages.
pub fn run_tick_bench(preset: ArchPreset, nodes: u32, degree: u32, threads: &[usize]) -> TickBench {
    assert!(!threads.is_empty(), "need at least one tick-thread count");
    let graph = Graph::uniform_random(nodes, degree, 20150301);
    let runs = threads
        .iter()
        .map(|&t| measure_tick(preset, &graph, t))
        .collect();
    TickBench {
        preset,
        num_sms: preset.config().num_sms,
        host_cpus: host_cpus(),
        nodes,
        degree,
        profiled: profile::enabled(),
        runs,
    }
}

fn measure_tick(preset: ArchPreset, graph: &Graph, tick_threads: usize) -> TickRun {
    let cfg = preset.config();
    let mut gpu = Gpu::new(cfg);
    gpu.set_tick_threads(tick_threads);
    let dev = upload_graph_mask(&mut gpu, graph);
    // Snapshot the (cumulative, process-global) profiler around the run so
    // this run's stage times are a clean delta — no reset, so the whole
    // bench process still adds up in the final profile.json.
    let before = profile::report();
    let t0 = Instant::now();
    run_bfs_mask(&mut gpu, &dev, 0, 128).expect("bfs runs");
    let wall_seconds = t0.elapsed().as_secs_f64();
    let after = profile::report();
    assert_eq!(
        read_costs(&gpu, &dev),
        graph.bfs_levels(0),
        "BFS answer wrong at {tick_threads} tick threads"
    );
    let summary = gpu.summary();
    let stage_nanos = ProfSpan::STAGES
        .iter()
        .map(|&s| after.span(s).nanos.saturating_sub(before.span(s).nanos))
        .collect();
    TickRun {
        tick_threads,
        wall_seconds,
        cycles: summary.cycles,
        content_hash: summary.content_hash,
        stage_nanos,
    }
}

// ---------------------------------------------------------------------------
// Workload-throughput benchmark
// ---------------------------------------------------------------------------

/// One end-to-end workload run.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Which E4 workload.
    pub workload: Workload,
    /// Simulated cycles (exact-reproduce).
    pub cycles: u64,
    /// Warp instructions issued (exact-reproduce).
    pub instructions: u64,
    /// `RunSummary::content_hash` (exact-reproduce).
    pub content_hash: u64,
    /// Host wall clock including setup and result verification.
    pub wall_seconds: f64,
}

/// End-to-end workload throughput record for one preset — one *section* of
/// the committed `BENCH_workloads.json`.
#[derive(Debug, Clone)]
pub struct WorkloadBench {
    /// Architecture every workload ran on.
    pub preset: ArchPreset,
    /// Host CPUs during the measurement.
    pub host_cpus: usize,
    /// One entry per workload, in the order they were run.
    pub runs: Vec<WorkloadRun>,
}

impl WorkloadBench {
    /// Sum of per-workload wall clocks.
    pub fn total_wall_seconds(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_seconds).sum()
    }

    /// Renders this preset's section of the `BENCH_workloads.json` schema.
    fn section_json(&self) -> String {
        let mut json = String::from("    {\n");
        json.push_str(&format!("      \"preset\": \"{}\",\n", self.preset.name()));
        json.push_str(&format!(
            "      \"total_wall_seconds\": {:.6},\n      \"runs\": [\n",
            self.total_wall_seconds()
        ));
        for (i, r) in self.runs.iter().enumerate() {
            let sep = if i + 1 == self.runs.len() { "" } else { "," };
            json.push_str(&format!(
                "        {{\"workload\": \"{}\", \"simulated_cycles\": {}, \"instructions\": {}, \
                 \"content_hash\": \"{:016x}\", \"wall_seconds\": {:.6}, \
                 \"cycles_per_second\": {:.0}}}{sep}\n",
                r.workload.name(),
                r.cycles,
                r.instructions,
                r.content_hash,
                r.wall_seconds,
                cycles_per_second(r.cycles, wall_nanos(r.wall_seconds)),
            ));
        }
        json.push_str("      ]\n    }");
        json
    }

    /// Renders a single-section `BENCH_workloads.json` document.
    pub fn json(&self) -> String {
        workloads_json(std::slice::from_ref(self))
    }
}

/// Renders the committed `BENCH_workloads.json` schema: one section per
/// measured preset (the paper-era full machine plus the modern sectored
/// generation), so a cycle-count or hash change on *any* generation fails
/// the exact-reproduce regression check.
///
/// # Panics
///
/// Panics on an empty slice — an empty benchmark document is a caller bug.
pub fn workloads_json(benches: &[WorkloadBench]) -> String {
    assert!(!benches.is_empty(), "need at least one workload section");
    let mut json = String::from("{\n  \"name\": \"workloads\",\n");
    json.push_str(&format!("  \"host_cpus\": {},\n", benches[0].host_cpus));
    json.push_str("  \"sections\": [\n");
    for (i, b) in benches.iter().enumerate() {
        let sep = if i + 1 == benches.len() { "" } else { "," };
        json.push_str(&b.section_json());
        json.push_str(sep);
        json.push('\n');
    }
    json.push_str("  ]\n}\n");
    json
}

/// Runs every workload in `workloads` once on `preset`'s full config,
/// timing each end to end (setup, simulation, verification).
///
/// # Errors
///
/// Propagates the first simulator failure.
pub fn run_workload_bench(
    preset: ArchPreset,
    workloads: &[Workload],
) -> Result<WorkloadBench, SimError> {
    let mut runs = Vec::with_capacity(workloads.len());
    for &workload in workloads {
        let t0 = Instant::now();
        let traced = run_workload_traced(preset.config(), workload)?;
        runs.push(WorkloadRun {
            workload,
            cycles: traced.cycles,
            instructions: traced.instructions,
            content_hash: traced.content_hash,
            wall_seconds: t0.elapsed().as_secs_f64(),
        });
    }
    Ok(WorkloadBench {
        preset,
        host_cpus: host_cpus(),
        runs,
    })
}

// ---------------------------------------------------------------------------
// Serve daemon benchmark
// ---------------------------------------------------------------------------

/// The sweep grid every serve-bench client submits: ten grid points, small
/// enough that the cold pass stays in seconds but wide enough that dedup
/// and cache behaviour are visible in the counters.
pub fn serve_grid_spec() -> (Vec<u64>, [u64; 2]) {
    (pow2_range(4 * 1024, 64 * 1024), [128u64, 2048])
}

/// Concurrent clients the serve bench races against the daemon.
pub const SERVE_CLIENTS: usize = 4;

/// One pass (cold or warm) of the serve bench: [`SERVE_CLIENTS`] concurrent
/// clients submitting the identical sweep job against a freshly booted
/// daemon, so all but the first join the in-flight job.
#[derive(Debug, Clone)]
pub struct ServePass {
    /// Wall clock from first connect to last terminal line.
    pub wall_seconds: f64,
    /// Per-client submit→terminal latencies, sorted ascending.
    pub job_seconds: Vec<f64>,
    /// `points_executed` daemon counter after the pass: every grid point
    /// exactly once, regardless of client count.
    pub executed_points: u64,
    /// `jobs_deduped` daemon counter after the pass: all but one client
    /// joined the first submission's job.
    pub deduped_jobs: u64,
    /// Chase-cache traffic of the pass (all misses cold, all hits warm).
    pub cache: CacheStats,
}

impl ServePass {
    /// Client-visible completed submissions per second of wall clock.
    pub fn jobs_per_second(&self) -> f64 {
        self.job_seconds.len() as f64 / self.wall_seconds.max(1e-9)
    }

    /// Nearest-rank percentile of the per-client latencies.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.job_seconds.is_empty() {
            return 0.0;
        }
        let idx = ((self.job_seconds.len() - 1) as f64 * q).round() as usize;
        self.job_seconds[idx]
    }

    fn json(&self) -> String {
        format!(
            "{{\"wall_seconds\": {:.6}, \"jobs_per_second\": {:.2}, \
             \"job_seconds_p50\": {:.6}, \"job_seconds_p95\": {:.6}, \
             \"executed_points\": {}, \"deduped_jobs\": {}, \"cache\": {}}}",
            self.wall_seconds,
            self.jobs_per_second(),
            self.percentile(0.50),
            self.percentile(0.95),
            self.executed_points,
            self.deduped_jobs,
            json_cache_stats(self.cache),
        )
    }
}

/// Cold-vs-cache-hit measurement of the serve daemon (`BENCH_serve.json`).
///
/// Every committed field is either simulation-pure (name, preset, client
/// and point counts, content hash, dedup counters, cache traffic — compared
/// exactly by `--check` on any host) or an explicitly thresholded
/// wall-clock metric; `host_cpus` is the one informational field, recorded
/// so timing comparisons across machines downgrade to warnings. The suite
/// test pins that audit via [`crate::regression::classify_document`].
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Architecture the submitted sweep targets.
    pub preset: ArchPreset,
    /// Host CPUs during the measurement.
    pub host_cpus: usize,
    /// Concurrent clients per pass.
    pub clients: usize,
    /// Grid points in the submitted sweep (from the result line).
    pub grid_points: usize,
    /// The result line's content hash (exact-reproduce).
    pub content_hash: String,
    /// Full terminal result line of the cold pass (not committed; held for
    /// the byte-identity self-check).
    pub cold_result: String,
    /// Full terminal result line of the warm pass.
    pub warm_result: String,
    /// Cold pass: empty cache, every point simulated.
    pub cold: ServePass,
    /// Warm pass: fresh daemon, jobs wiped, cache kept — every point
    /// re-executed but served from disk.
    pub warm: ServePass,
}

impl ServeBench {
    /// Renders the committed `BENCH_serve.json` schema.
    pub fn json(&self) -> String {
        format!(
            "{{\n  \"name\": \"serve\",\n  \"preset\": \"{}\",\n  \"host_cpus\": {},\n  \
             \"clients\": {},\n  \"grid_points\": {},\n  \"content_hash\": \"{}\",\n  \
             \"cold\": {},\n  \"warm\": {}\n}}\n",
            self.preset.name(),
            self.host_cpus,
            self.clients,
            self.grid_points,
            self.content_hash,
            self.cold.json(),
            self.warm.json(),
        )
    }

    /// The serve bench's own invariants: clients and passes agree byte for
    /// byte, each pass executed every point exactly once with all other
    /// clients deduped, and the cache carried the warm pass.
    pub fn check(&self) -> Result<(), String> {
        if self.cold_result != self.warm_result {
            return Err("warm-pass result line diverged from the cold pass".to_string());
        }
        let gp = self.grid_points as u64;
        let expect_dedup = (self.clients - 1) as u64;
        for (label, pass) in [("cold", &self.cold), ("warm", &self.warm)] {
            if pass.executed_points != gp {
                return Err(format!(
                    "{label} pass executed {} points, expected {gp}",
                    pass.executed_points
                ));
            }
            if pass.deduped_jobs != expect_dedup {
                return Err(format!(
                    "{label} pass deduped {} jobs, expected {expect_dedup}",
                    pass.deduped_jobs
                ));
            }
        }
        let c = self.cold.cache;
        if c.hits != 0 || c.misses != gp || c.stores != gp {
            return Err(format!(
                "cold pass cache traffic {c:?}, expected 0 hits / {gp} misses / {gp} stores"
            ));
        }
        let w = self.warm.cache;
        if w.hits != gp || w.misses != 0 {
            return Err(format!(
                "warm pass cache traffic {w:?}, expected {gp} hits / 0 misses"
            ));
        }
        Ok(())
    }
}

/// One daemon boot + `clients` concurrent watched submissions of `spec`,
/// returning the pass record and the (asserted-identical) result line.
fn serve_pass(state: &Path, spec: &str, clients: usize) -> (ServePass, String) {
    reset_cache_stats();
    let handle =
        ServerHandle::spawn(ServerConfig::new(state), "127.0.0.1:0").expect("spawn serve daemon");
    let addr = handle.addr.to_string();
    let t0 = Instant::now();
    let mut runs: Vec<(f64, String)> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.as_str();
                scope.spawn(move || {
                    let t = Instant::now();
                    let mut client = Client::connect_tcp(addr).expect("connect to daemon");
                    let run = client.submit_watched(spec).expect("watched submit");
                    (t.elapsed().as_secs_f64(), run.terminal)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .collect()
    });
    let wall_seconds = t0.elapsed().as_secs_f64();

    let mut stats_client = Client::connect_tcp(&addr).expect("connect for stats");
    let stats = json::parse(
        &stats_client
            .request("{\"cmd\":\"stats\"}")
            .expect("stats request"),
    )
    .expect("stats line is JSON");
    let counter = |key: &str| {
        stats
            .get(key)
            .and_then(json::Value::as_num)
            .unwrap_or_else(|| panic!("stats line lacks {key:?}")) as u64
    };
    let executed_points = counter("points_executed");
    let deduped_jobs = counter("jobs_deduped");
    handle.shutdown();

    let result = runs[0].1.clone();
    for (_, line) in &runs {
        assert_eq!(
            line, &result,
            "every client must receive bit-identical result lines"
        );
    }
    let mut job_seconds: Vec<f64> = runs.drain(..).map(|(s, _)| s).collect();
    job_seconds.sort_by(f64::total_cmp);
    (
        ServePass {
            wall_seconds,
            job_seconds,
            executed_points,
            deduped_jobs,
            cache: cache_stats(),
        },
        result,
    )
}

/// Measures the serve daemon cold (empty state dir: every grid point
/// simulated once) and then warm (jobs wiped, content cache kept: every
/// point re-executed from disk), with `clients` concurrent clients racing
/// the identical submission in both passes.
///
/// With `state: None` a per-process temporary directory is used and wiped
/// first. Panics if any client's result line diverges within a pass; the
/// cross-pass byte-identity is left to [`ServeBench::check`] so `--check`
/// reports it as a finding rather than a crash.
pub fn run_serve_bench(preset: ArchPreset, clients: usize, state: Option<PathBuf>) -> ServeBench {
    let state = state.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("latency-serve-bench-{}", std::process::id()))
    });
    // A recycled pid (or a reused explicit dir) must not hand the cold
    // pass a warm cache or finished job records.
    let _ = std::fs::remove_dir_all(&state);
    let (footprints, strides) = serve_grid_spec();
    let spec = format!(
        "{{\"preset\":\"{}\",\"sweep\":{{\"footprints\":{footprints:?},\"strides\":{strides:?}}}}}",
        gpu_serve::preset_token(preset)
    );

    let (cold, cold_result) = serve_pass(&state, &spec, clients);
    // Wipe the finished job records but keep the content cache: the warm
    // daemon recovers nothing and re-executes every grid point, each
    // served by one disk read instead of a simulation.
    let _ = std::fs::remove_dir_all(state.join("jobs"));
    let (warm, warm_result) = serve_pass(&state, &spec, clients);

    let doc = json::parse(&cold_result).expect("result line is JSON");
    let grid_points = doc
        .get("points")
        .and_then(json::Value::as_arr)
        .map_or(0, <[json::Value]>::len);
    let content_hash = doc
        .get("content_hash")
        .and_then(json::Value::as_str)
        .unwrap_or_default()
        .to_string();
    ServeBench {
        preset,
        host_cpus: host_cpus(),
        clients,
        grid_points,
        content_hash,
        cold_result,
        warm_result,
        cold,
        warm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_sweep() -> SweepBench {
        SweepBench {
            preset: ArchPreset::FermiGf106,
            grid_points: 32,
            skipped: 4,
            simulated_cycles: 1_000_000,
            cold_wall_seconds: 2.0,
            cold_cache: CacheStats {
                hits: 0,
                misses: 32,
                stores: 32,
            },
            warm_wall_seconds: 0.1,
            warm_cache: CacheStats {
                hits: 32,
                misses: 0,
                stores: 0,
            },
        }
    }

    fn fake_tick() -> TickBench {
        let run = |t: usize, wall: f64, hash: u64| TickRun {
            tick_threads: t,
            wall_seconds: wall,
            cycles: 104_548,
            content_hash: hash,
            stage_nanos: vec![7; ProfSpan::STAGES.len()],
        };
        TickBench {
            preset: ArchPreset::FermiGf100,
            num_sms: 14,
            host_cpus: 1,
            nodes: 4096,
            degree: 8,
            profiled: true,
            runs: vec![run(1, 2.0, 0xabcd), run(2, 1.0, 0xabcd)],
        }
    }

    #[test]
    fn sweep_json_parses_and_keeps_schema() {
        let doc = gpu_trace::json::parse(&fake_sweep().json()).expect("valid json");
        assert_eq!(doc.get("name").and_then(|v| v.as_str()), Some("sweep"));
        assert_eq!(doc.get("grid_points").and_then(|v| v.as_num()), Some(32.0));
        let cold = doc.get("cold").expect("cold");
        assert_eq!(
            cold.get("cycles_per_second").and_then(|v| v.as_num()),
            Some(500_000.0)
        );
        assert_eq!(doc.get("speedup").and_then(|v| v.as_num()), Some(20.0));
    }

    #[test]
    fn sweep_check_requires_a_working_cache() {
        assert!(fake_sweep().check().is_ok());
        let mut cold_cache_only = fake_sweep();
        cold_cache_only.warm_cache.hits = 1;
        cold_cache_only.warm_cache.misses = 31;
        assert!(cold_cache_only.check().is_err());
        let mut slow_warm = fake_sweep();
        slow_warm.warm_wall_seconds = 3.0;
        assert!(slow_warm.check().is_err());
    }

    #[test]
    fn tick_json_carries_stage_breakdown_when_profiled() {
        let bench = fake_tick();
        let json = bench.json();
        let doc = gpu_trace::json::parse(&json).expect("valid json");
        assert_eq!(
            doc.get("content_hash").and_then(|v| v.as_str()),
            Some("000000000000abcd")
        );
        let runs = doc.get("runs").and_then(|v| v.as_arr()).expect("runs");
        assert_eq!(runs.len(), 2);
        let stages = runs[0].get("stages").expect("stages object");
        assert_eq!(stages.get("tick_sms").and_then(|v| v.as_num()), Some(7.0));
        assert_eq!(
            runs[1].get("speedup_vs_serial").and_then(|v| v.as_num()),
            Some(2.0)
        );

        let mut unprofiled = bench;
        unprofiled.profiled = false;
        assert!(!unprofiled.json().contains("\"stages\""));
    }

    #[test]
    fn tick_check_rejects_divergent_hash() {
        assert!(fake_tick().check().is_ok());
        let mut bad = fake_tick();
        bad.runs[1].content_hash ^= 1;
        assert!(bad.check().is_err());
        let mut bad_cycles = fake_tick();
        bad_cycles.runs[1].cycles += 1;
        assert!(bad_cycles.check().is_err());
    }

    #[test]
    fn workload_json_parses_with_exact_fields() {
        let bench = |preset, hash| WorkloadBench {
            preset,
            host_cpus: 4,
            runs: vec![WorkloadRun {
                workload: Workload::VecAdd,
                cycles: 1000,
                instructions: 5000,
                content_hash: hash,
                wall_seconds: 0.5,
            }],
        };
        let json = workloads_json(&[
            bench(ArchPreset::FermiGf100, 0xfeed),
            bench(ArchPreset::VoltaGv100, 0xbeef),
        ]);
        let doc = gpu_trace::json::parse(&json).expect("valid json");
        assert_eq!(doc.get("name").and_then(|v| v.as_str()), Some("workloads"));
        let sections = doc
            .get("sections")
            .and_then(|v| v.as_arr())
            .expect("sections");
        assert_eq!(sections.len(), 2);
        assert_eq!(
            sections[1].get("preset").and_then(|v| v.as_str()),
            Some("GV100 (Volta)")
        );
        let runs = sections[0]
            .get("runs")
            .and_then(|v| v.as_arr())
            .expect("runs");
        assert_eq!(
            runs[0].get("workload").and_then(|v| v.as_str()),
            Some("vecadd")
        );
        assert_eq!(
            runs[0].get("content_hash").and_then(|v| v.as_str()),
            Some("000000000000feed")
        );
        assert_eq!(
            runs[0].get("cycles_per_second").and_then(|v| v.as_num()),
            Some(2000.0)
        );
        // The single-section wrapper emits the same schema.
        let single =
            gpu_trace::json::parse(&bench(ArchPreset::FermiGf100, 1).json()).expect("valid json");
        assert_eq!(
            single
                .get("sections")
                .and_then(|v| v.as_arr())
                .map(<[gpu_trace::json::Value]>::len),
            Some(1)
        );
    }

    fn fake_serve() -> ServeBench {
        let pass = |wall: f64, cache: CacheStats| ServePass {
            wall_seconds: wall,
            job_seconds: vec![wall * 0.7, wall * 0.8, wall * 0.9, wall],
            executed_points: 10,
            deduped_jobs: 3,
            cache,
        };
        ServeBench {
            preset: ArchPreset::FermiGf106,
            host_cpus: 1,
            clients: 4,
            grid_points: 10,
            content_hash: "00000000deadbeef".to_string(),
            cold_result: "{\"event\":\"result\"}".to_string(),
            warm_result: "{\"event\":\"result\"}".to_string(),
            cold: pass(
                2.0,
                CacheStats {
                    hits: 0,
                    misses: 10,
                    stores: 10,
                },
            ),
            warm: pass(
                0.2,
                CacheStats {
                    hits: 10,
                    misses: 0,
                    stores: 0,
                },
            ),
        }
    }

    #[test]
    fn serve_json_parses_and_keeps_schema() {
        let doc = gpu_trace::json::parse(&fake_serve().json()).expect("valid json");
        assert_eq!(doc.get("name").and_then(|v| v.as_str()), Some("serve"));
        assert_eq!(doc.get("clients").and_then(|v| v.as_num()), Some(4.0));
        assert_eq!(
            doc.get("content_hash").and_then(|v| v.as_str()),
            Some("00000000deadbeef")
        );
        let cold = doc.get("cold").expect("cold");
        assert_eq!(
            cold.get("executed_points").and_then(|v| v.as_num()),
            Some(10.0)
        );
        assert_eq!(
            cold.get("jobs_per_second").and_then(|v| v.as_num()),
            Some(2.0)
        );
        let warm = doc.get("warm").expect("warm");
        assert_eq!(
            warm.get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(|v| v.as_num()),
            Some(10.0)
        );
        // The raw result lines are self-check state, never committed.
        assert!(doc.get("cold_result").is_none());
    }

    #[test]
    fn serve_check_requires_dedup_cache_and_byte_identity() {
        assert!(fake_serve().check().is_ok());
        let mut diverged = fake_serve();
        diverged.warm_result = "{\"event\":\"result\",\"tampered\":true}".to_string();
        assert!(diverged.check().is_err());
        let mut reran = fake_serve();
        reran.cold.executed_points = 20; // dedup failure: points ran twice
        assert!(reran.check().is_err());
        let mut no_dedup = fake_serve();
        no_dedup.warm.deduped_jobs = 0;
        assert!(no_dedup.check().is_err());
        let mut cache_missed = fake_serve();
        cache_missed.warm.cache.hits = 9;
        cache_missed.warm.cache.misses = 1;
        assert!(cache_missed.check().is_err());
    }

    #[test]
    fn serve_percentiles_are_nearest_rank() {
        let bench = fake_serve();
        assert!((bench.cold.percentile(0.50) - 1.8).abs() < 1e-9);
        assert!((bench.cold.percentile(0.95) - 2.0).abs() < 1e-9);
        assert!((bench.cold.percentile(0.0) - 1.4).abs() < 1e-9);
    }

    #[test]
    fn serve_schema_is_fully_audited() {
        // Satellite pin: every leaf the serve suite commits is either
        // simulation-pure (compared exactly) or an explicitly thresholded
        // timing metric. `host_cpus` is the single allowed informational
        // field — anything else invisible to `--check` is a schema bug.
        let classes =
            crate::regression::classify_document(&fake_serve().json()).expect("classifiable");
        assert!(!classes.is_empty());
        for (path, class) in classes {
            if path == "host_cpus" {
                assert_eq!(class, crate::regression::MetricClass::Informational);
                continue;
            }
            assert_ne!(
                class,
                crate::regression::MetricClass::Informational,
                "leaf {path:?} is invisible to --check; add a rule in regression::rule_for"
            );
        }
    }
}
