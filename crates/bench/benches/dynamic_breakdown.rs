//! Bench for **Figure 1** (experiment E2): regenerates a small-scale
//! breakdown once, then measures (a) the instrumented BFS simulation and
//! (b) the breakdown analysis itself.

use latency_bench::harness::{bench, keep};
use latency_bench::{run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, Component, LatencyBreakdown};

fn small_exp() -> BfsExperiment {
    BfsExperiment {
        nodes: 1024,
        degree: 8,
        seed: 7,
        block_dim: 128,
    }
}

fn small_cfg() -> gpu_sim::GpuConfig {
    let mut cfg = ArchPreset::FermiGf100.config();
    cfg.num_sms = 4;
    cfg.num_partitions = 2;
    cfg
}

fn main() {
    // The artifact, at reduced scale, printed into the bench log.
    let run = run_bfs_traced(small_cfg(), &small_exp()).expect("BFS runs");
    let (breakdown, _) = LatencyBreakdown::from_requests_clipped(&run.requests, 24, 0.99);
    println!("\n=== Figure 1 (regenerated, reduced scale) ===\n{breakdown}");
    println!("overall shares:");
    for (comp, share) in breakdown.ranked_components() {
        println!("  {:>12}: {share:>5.1}%", comp.label());
    }

    bench("fig1/instrumented_bfs_sim", 10, || {
        let r = run_bfs_traced(small_cfg(), &small_exp()).unwrap();
        keep(r.requests.len())
    });
    bench("fig1/breakdown_analysis", 10, || {
        let bd = LatencyBreakdown::from_requests(&run.requests, 48);
        keep(bd.overall_percentages()[Component::DramQToSch.index()])
    });
}
