//! Bench for **Figure 1** (experiment E2): regenerates a small-scale
//! breakdown once, then measures (a) the instrumented BFS simulation and
//! (b) the breakdown analysis itself.

use criterion::{criterion_group, criterion_main, Criterion};
use latency_bench::{run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, Component, LatencyBreakdown};
use std::hint::black_box;

fn small_exp() -> BfsExperiment {
    BfsExperiment {
        nodes: 1024,
        degree: 8,
        seed: 7,
        block_dim: 128,
    }
}

fn small_cfg() -> gpu_sim::GpuConfig {
    let mut cfg = ArchPreset::FermiGf100.config();
    cfg.num_sms = 4;
    cfg.num_partitions = 2;
    cfg
}

fn bench_fig1(c: &mut Criterion) {
    // The artifact, at reduced scale, printed into the bench log.
    let run = run_bfs_traced(small_cfg(), &small_exp()).expect("BFS runs");
    let (breakdown, _) = LatencyBreakdown::from_requests_clipped(&run.requests, 24, 0.99);
    println!("\n=== Figure 1 (regenerated, reduced scale) ===\n{breakdown}");
    println!("overall shares:");
    for (comp, share) in breakdown.ranked_components() {
        println!("  {:>12}: {share:>5.1}%", comp.label());
    }

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("instrumented_bfs_sim", |b| {
        b.iter(|| {
            let r = run_bfs_traced(small_cfg(), &small_exp()).unwrap();
            black_box(r.requests.len())
        })
    });
    group.bench_function("breakdown_analysis", |b| {
        b.iter(|| {
            let bd = LatencyBreakdown::from_requests(&run.requests, 48);
            black_box(bd.overall_percentages()[Component::DramQToSch.index()])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
