//! Bench for **Figure 2** (experiment E3): regenerates a small-scale
//! exposed/hidden split once, then measures the exposure analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use latency_bench::{run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, ExposureAnalysis};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut cfg = ArchPreset::FermiGf100.config();
    cfg.num_sms = 4;
    cfg.num_partitions = 2;
    let exp = BfsExperiment {
        nodes: 1024,
        degree: 8,
        seed: 7,
        block_dim: 128,
    };
    let run = run_bfs_traced(cfg, &exp).expect("BFS runs");
    let (analysis, _) = ExposureAnalysis::from_loads_clipped(&run.loads, 24, 0.99);
    println!("\n=== Figure 2 (regenerated, reduced scale) ===\n{analysis}");
    println!(
        "overall exposed fraction: {:.1}%\n",
        100.0 * analysis.overall_exposed_fraction()
    );

    let mut group = c.benchmark_group("fig2");
    group.bench_function("exposure_analysis", |b| {
        b.iter(|| {
            let a = ExposureAnalysis::from_loads(&run.loads, 24);
            black_box(a.overall_exposed_fraction())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
