//! Bench for **Figure 2** (experiment E3): regenerates a small-scale
//! exposed/hidden split once, then measures the exposure analysis.

use latency_bench::harness::{bench, keep};
use latency_bench::{run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, ExposureAnalysis};

fn main() {
    let mut cfg = ArchPreset::FermiGf100.config();
    cfg.num_sms = 4;
    cfg.num_partitions = 2;
    let exp = BfsExperiment {
        nodes: 1024,
        degree: 8,
        seed: 7,
        block_dim: 128,
    };
    let run = run_bfs_traced(cfg, &exp).expect("BFS runs");
    let (analysis, _) = ExposureAnalysis::from_loads_clipped(&run.loads, 24, 0.99);
    println!("\n=== Figure 2 (regenerated, reduced scale) ===\n{analysis}");
    println!(
        "overall exposed fraction: {:.1}%\n",
        100.0 * analysis.overall_exposed_fraction()
    );

    bench("fig2/exposure_analysis", 100, || {
        let a = ExposureAnalysis::from_loads(&run.loads, 24);
        keep(a.overall_exposed_fraction())
    });
}
