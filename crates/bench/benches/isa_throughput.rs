//! Functional-executor performance: warp-instructions per second of the
//! SIMT interpreter, on straight-line, divergent, and memory-bound kernels
//! — the floor under every simulation in the workspace.

use std::sync::Arc;

use gpu_isa::{
    AluOp, CmpOp, Kernel, KernelBuilder, LocalMap, MemBackend, Operand, Space, Special, ThreadCtx,
    WarpExec, Width,
};
use gpu_types::Addr;
use latency_bench::harness::{bench_throughput, keep};

struct FlatMem(Vec<u8>);

impl MemBackend for FlatMem {
    fn load(&mut self, _: Space, addr: Addr, width: Width) -> u64 {
        let mut v = 0u64;
        for i in 0..width.bytes() {
            v |= (self.0[(addr.get() + i) as usize % self.0.len()] as u64) << (8 * i);
        }
        v
    }
    fn store(&mut self, _: Space, addr: Addr, width: Width, value: u64) {
        let len = self.0.len();
        for i in 0..width.bytes() {
            self.0[(addr.get() + i) as usize % len] = (value >> (8 * i)) as u8;
        }
    }
    fn atomic_add(&mut self, addr: Addr, width: Width, value: u64) -> u64 {
        let old = self.load(Space::Global, addr, width);
        self.store(Space::Global, addr, width, old.wrapping_add(value));
        old
    }
}

fn alu_kernel(iters: i64) -> Kernel {
    let mut b = KernelBuilder::new("alu_loop");
    let acc = b.mov(1i64);
    b.for_range(Operand::Imm(0), Operand::Imm(iters), 1, |b, i| {
        b.alu_to(AluOp::Add, acc, acc, i);
        b.alu_to(AluOp::Xor, acc, acc, 0x5555);
        b.alu_to(AluOp::Mul, acc, acc, 3);
        b.alu_to(AluOp::Shr, acc, acc, 1);
    });
    b.exit();
    b.build().unwrap()
}

fn divergent_kernel(iters: i64) -> Kernel {
    let mut b = KernelBuilder::new("divergent_loop");
    let lane = b.special(Special::LaneId);
    let acc = b.mov(0i64);
    b.for_range(Operand::Imm(0), Operand::Imm(iters), 1, |b, i| {
        let parity = b.and(lane, 1);
        let p = b.setp(CmpOp::Eq, parity, 0);
        b.if_then_else(
            p,
            |b| b.alu_to(AluOp::Add, acc, acc, i),
            |b| b.alu_to(AluOp::Sub, acc, acc, i),
        );
    });
    b.exit();
    b.build().unwrap()
}

fn memory_kernel(iters: i64) -> Kernel {
    let mut b = KernelBuilder::new("memory_loop");
    let lane = b.special(Special::LaneId);
    let addr = b.shl(lane, 3);
    b.for_range(Operand::Imm(0), Operand::Imm(iters), 1, |b, _| {
        let v = b.ld_global(Width::W8, addr, 0);
        let v2 = b.add(v, 1);
        b.st_global(Width::W8, addr, 0, v2);
    });
    b.exit();
    b.build().unwrap()
}

fn run_to_completion(kernel: &Arc<Kernel>, mem: &mut FlatMem) -> u64 {
    let ctxs: Vec<ThreadCtx> = (0..32)
        .map(|i| ThreadCtx {
            tid: i,
            ctaid: 0,
            ntid: 32,
            nctaid: 1,
            lane: i,
        })
        .collect();
    let mut w = WarpExec::new(Arc::clone(kernel), Arc::from([]), ctxs, LocalMap::default());
    while !w.is_finished() {
        if w.at_barrier() {
            w.release_barrier();
        }
        w.step(mem);
    }
    w.instructions_executed()
}

fn main() {
    for (name, kernel) in [
        ("alu", alu_kernel(256)),
        ("divergent", divergent_kernel(256)),
        ("memory", memory_kernel(256)),
    ] {
        let kernel = Arc::new(kernel);
        let mut mem = FlatMem(vec![0u8; 4096]);
        let instrs = run_to_completion(&kernel, &mut mem);
        bench_throughput(&format!("warp_exec/{name}"), 20, instrs, || {
            keep(run_to_completion(&kernel, &mut mem))
        });
    }
}
