//! Simulator performance bench: simulated cycles per wall-clock second on
//! the core workloads — the number that decides how big an experiment the
//! harness can afford. Also covers the E6 latency-hiding machinery.

use gpu_sim::{Gpu, GpuConfig, SchedPolicy};
use gpu_workloads::vecadd;
use latency_bench::harness::{bench_throughput, keep};
use latency_bench::{hiding_sweep, BfsExperiment};
use latency_core::ArchPreset;

fn run_vecadd(cfg: GpuConfig, n: u64) -> u64 {
    let mut gpu = Gpu::new(cfg);
    let dev = vecadd::setup(&mut gpu, n);
    let summary = vecadd::run(&mut gpu, &dev, 256).expect("vecadd runs");
    summary.cycles
}

fn main() {
    // Print the E6 sweep (reduced scale) into the bench log.
    let mut cfg = ArchPreset::FermiGf100.config();
    cfg.num_sms = 4;
    cfg.num_partitions = 2;
    let exp = BfsExperiment {
        nodes: 1024,
        degree: 8,
        seed: 7,
        block_dim: 128,
    };
    println!("\n=== E6: latency hiding sweep (reduced scale) ===");
    let points = hiding_sweep(
        cfg,
        &exp,
        &[4, 16, 48],
        &[SchedPolicy::Lrr, SchedPolicy::Gto],
    )
    .expect("sweep runs");
    for p in &points {
        println!(
            "{:>2} warps/SM {:?}: exposed {:>5.1}%  cycles {}",
            p.warps_per_sm,
            p.scheduler,
            100.0 * p.exposed_fraction,
            p.cycles
        );
    }

    for (name, build) in [
        ("gf100_full", GpuConfig::fermi_gf100 as fn() -> GpuConfig),
        ("gt200_cacheless", || ArchPreset::TeslaGt200.config()),
    ] {
        // Report simulated cycles as "elements" so the harness prints
        // cycles/second.
        let cycles = run_vecadd(build(), 32 * 1024);
        bench_throughput(
            &format!("sim_throughput/vecadd_32k/{name}"),
            10,
            cycles,
            || keep(run_vecadd(build(), 32 * 1024)),
        );
    }
}
