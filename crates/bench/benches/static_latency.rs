//! Bench for **Table I** (experiment E1): regenerates the table once, then
//! measures the cost of each chase operating point so changes to the
//! simulator's memory pipeline show up as latency-measurement regressions.

use latency_bench::harness::{bench, keep};
use latency_core::{measure_chase, ArchPreset, ChaseParams, Table1};

fn print_table1_once() {
    // The actual artifact: the paper's Table I, printed into the bench log.
    match Table1::measure() {
        Ok(t) => {
            println!("\n=== Table I (regenerated) ===\n{t}");
            println!(
                "max relative error vs. paper: {:.2}%\n",
                100.0 * t.max_rel_error()
            );
        }
        Err(e) => eprintln!("table1 regeneration failed: {e}"),
    }
}

fn main() {
    print_table1_once();

    let fermi = ArchPreset::FermiGf106.config_microbench();
    bench("table1_chase/fermi_l1_point", 10, || {
        let m = measure_chase(&fermi, &ChaseParams::global(4096, 128)).unwrap();
        keep(m.per_access)
    });
    bench("table1_chase/fermi_l2_point", 10, || {
        let m = measure_chase(&fermi, &ChaseParams::global(64 * 1024, 512)).unwrap();
        keep(m.per_access)
    });

    let kepler = ArchPreset::KeplerGk104.config_microbench();
    bench("table1_chase/kepler_local_l1_point", 10, || {
        let m = measure_chase(&kepler, &ChaseParams::local(4096, 128)).unwrap();
        keep(m.per_access)
    });

    let tesla = ArchPreset::TeslaGt200.config_microbench();
    bench("table1_chase/tesla_dram_point", 10, || {
        let m = measure_chase(&tesla, &ChaseParams::global(32 * 1024, 4096)).unwrap();
        keep(m.per_access)
    });
}
