//! Bench for **Table I** (experiment E1): regenerates the table once, then
//! measures the cost of each chase operating point so changes to the
//! simulator's memory pipeline show up as latency-measurement regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use latency_core::{measure_chase, ArchPreset, ChaseParams, Table1};
use std::hint::black_box;

fn print_table1_once() {
    // The actual artifact: the paper's Table I, printed into the bench log.
    match Table1::measure() {
        Ok(t) => {
            println!("\n=== Table I (regenerated) ===\n{t}");
            println!(
                "max relative error vs. paper: {:.2}%\n",
                100.0 * t.max_rel_error()
            );
        }
        Err(e) => eprintln!("table1 regeneration failed: {e}"),
    }
}

fn bench_chase_points(c: &mut Criterion) {
    print_table1_once();
    let mut group = c.benchmark_group("table1_chase");
    group.sample_size(10);

    let fermi = ArchPreset::FermiGf106.config_microbench();
    group.bench_function("fermi_l1_point", |b| {
        b.iter(|| {
            let m = measure_chase(&fermi, &ChaseParams::global(4096, 128)).unwrap();
            black_box(m.per_access)
        })
    });
    group.bench_function("fermi_l2_point", |b| {
        b.iter(|| {
            let m = measure_chase(&fermi, &ChaseParams::global(64 * 1024, 512)).unwrap();
            black_box(m.per_access)
        })
    });

    let kepler = ArchPreset::KeplerGk104.config_microbench();
    group.bench_function("kepler_local_l1_point", |b| {
        b.iter(|| {
            let m = measure_chase(&kepler, &ChaseParams::local(4096, 128)).unwrap();
            black_box(m.per_access)
        })
    });

    let tesla = ArchPreset::TeslaGt200.config_microbench();
    group.bench_function("tesla_dram_point", |b| {
        b.iter(|| {
            let m = measure_chase(&tesla, &ChaseParams::global(32 * 1024, 4096)).unwrap();
            black_box(m.per_access)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chase_points);
criterion_main!(benches);
