//! Bench for the DRAM-scheduler ablation (experiment E5): drives the DRAM
//! controller directly with synthetic request streams and compares FR-FCFS
//! against FCFS on throughput and on the row-hit rate that motivates
//! first-ready scheduling.

use gpu_mem::{
    AccessKind, AddressMap, DramConfig, DramController, DramSched, DramTiming, MemRequest,
    PipelineSpace, RequestId,
};
use gpu_types::{Addr, Cycle, SmId};
use latency_bench::harness::{bench, keep};

fn controller(sched: DramSched) -> DramController {
    DramController::new(
        DramConfig {
            timing: DramTiming {
                t_rcd: 80,
                t_rp: 80,
                t_cl: 321,
                burst: 8,
            },
            queue_capacity: 64,
            sched,
        },
        AddressMap::new(1, 256, 16, 2048),
    )
}

fn request(i: u64, addr: u64) -> MemRequest {
    MemRequest::new(
        RequestId::new(i),
        Addr::new(addr),
        128,
        AccessKind::Load,
        PipelineSpace::Global,
        SmId::new(0),
        0,
        Cycle::ZERO,
    )
}

/// Mixed stream: bursts of row-local accesses interleaved across banks —
/// the pattern where FR-FCFS pays off.
fn drain(sched: DramSched, n: u64) -> (u64, gpu_mem::DramStats) {
    let mut ctrl = controller(sched);
    let mut now = Cycle::ZERO;
    let mut next = 0u64;
    let mut done = 0u64;
    while done < n {
        while next < n && ctrl.can_accept() {
            // Ping-pong between two rows of the same bank: strict FCFS pays
            // a row conflict on every request, while first-ready scheduling
            // batches each row into hits.
            let row = next % 2;
            let col = (next / 2) % 16;
            let addr = row * 32768 + col * 128;
            ctrl.enqueue(request(next, addr), now);
            next += 1;
        }
        done += ctrl.tick(now).len() as u64;
        now.tick();
        assert!(now.get() < 100_000_000, "runaway drain");
    }
    (now.get(), ctrl.stats())
}

fn main() {
    // Print the ablation series into the bench log.
    println!("\n=== E5: DRAM scheduler ablation (synthetic stream) ===");
    for sched in [DramSched::FrFcfs, DramSched::Fcfs] {
        let (cycles, stats) = drain(sched, 2000);
        println!(
            "{sched:?}: {cycles} cycles for 2000 reqs; row hits {}, conflicts {}, queue wait {} cyc",
            stats.row_hits, stats.row_conflicts, stats.queue_wait_cycles
        );
    }

    for sched in [DramSched::FrFcfs, DramSched::Fcfs] {
        bench(&format!("dram_sched/drain_2000/{sched:?}"), 20, || {
            keep(drain(sched, 2000).0)
        });
    }
}
