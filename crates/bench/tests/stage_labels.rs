//! Pins the Chrome-trace stage labels to the Figure-1 component labels.
//!
//! `gpu-trace` cannot depend on `latency-core` (the dependency points the
//! other way), so its `stage_label` table duplicates the component legend.
//! This cross-crate test is the guard that keeps the two in lockstep.

use gpu_mem::Stamp;
use latency_core::Component;

#[test]
fn chrome_stage_labels_match_figure1_components() {
    for stamp in Stamp::ALL {
        let expected = Component::ending_at(stamp).map(Component::label);
        assert_eq!(
            gpu_trace::stage_label(stamp),
            expected,
            "stage label for {stamp:?} diverged from the Figure-1 legend"
        );
    }
}
