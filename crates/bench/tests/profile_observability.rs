//! The self-profiler's observer guarantees, end to end:
//!
//! 1. Profiling is invisible to the simulation — the same workload produces
//!    a bit-identical `content_hash` (and cycle count) with profiling off
//!    and on.
//! 2. The per-stage host times are a real decomposition — the nine stage
//!    spans (plus the drain check) sum to the `run` span's wall clock
//!    within slack, because consecutive stage deltas tile the tick loop.
//! 3. The exported trace bundle carries host-clock profile tracks, and its
//!    process/counter tracks are named from the `ArchDesc` the run used.
//!
//! One #[test] runs all three in sequence: the profiler is process-global
//! state, so parallel tests would race on the enabled flag.

use gpu_sim::profile::{self, ProfSpan};
use latency_bench::{
    run_bfs_traced, stage_labels_for, track_names_for, BfsExperiment, TraceBundle,
};
use latency_core::ArchPreset;

fn small_cfg() -> gpu_sim::GpuConfig {
    let mut cfg = ArchPreset::FermiGf100.config();
    cfg.num_sms = 2;
    cfg.num_partitions = 2;
    cfg
}

fn small_exp() -> BfsExperiment {
    BfsExperiment {
        nodes: 256,
        degree: 4,
        seed: 20150301,
        block_dim: 64,
    }
}

#[test]
fn profiling_is_invisible_and_stage_times_tile_the_run() {
    // --- Off: the reference run. ---
    profile::set_enabled(false);
    let off = run_bfs_traced(small_cfg(), &small_exp()).expect("unprofiled run");

    // --- On: same workload under the profiler. ---
    profile::set_enabled(true);
    profile::reset();
    let on = run_bfs_traced(small_cfg(), &small_exp()).expect("profiled run");
    // Force a final sample so the bundle's per-sample host tracks exist
    // even when the whole run fits inside one sampling interval.
    profile::sample_at_interval(0);
    let report = profile::report();
    profile::set_enabled(false);

    // 1. Bit-identical simulation either way.
    assert_eq!(
        off.content_hash, on.content_hash,
        "profiling changed the simulation's content_hash"
    );
    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.instructions, on.instructions);

    // 2. The stage decomposition accounts for the run's host time: the
    //    stage deltas tile the tick loop, so stages + drain checks must
    //    recover most of the `run` span and never (much) exceed it. Wide
    //    slack: this asserts accounting, not speed, and CI hosts are noisy.
    let run_nanos = report.span(ProfSpan::Run).nanos;
    let accounted = report.stage_nanos_sum() + report.span(ProfSpan::DrainCheck).nanos;
    assert!(run_nanos > 0, "run span never measured");
    assert!(
        accounted as f64 >= run_nanos as f64 * 0.5,
        "stages + drain = {accounted}ns account for under half of run = {run_nanos}ns"
    );
    assert!(
        accounted as f64 <= run_nanos as f64 * 1.10,
        "stages + drain = {accounted}ns exceed run = {run_nanos}ns beyond clock slack"
    );
    // Every stage ticked as many times as the machine did.
    for &stage in &ProfSpan::STAGES {
        assert_eq!(
            report.span(stage).count,
            report.counter(gpu_trace::ProfCounter::CyclesTicked),
            "stage {} count != cycles ticked",
            stage.label()
        );
    }

    // The machine-readable report is valid JSON with the same numbers.
    let report_doc = gpu_trace::json::parse(&report.json()).expect("profile.json parses");
    assert_eq!(
        report_doc
            .get("total_nanos")
            .and_then(|v| v.as_num())
            .map(|n| n as u64),
        Some(report.total_nanos)
    );

    // 3. The bundle's Chrome trace carries ArchDesc-named simulated tracks
    //    and host-clock profile tracks side by side.
    let cfg = small_cfg();
    let bundle = TraceBundle {
        requests: &on.requests,
        loads: &on.loads,
        trace: &on.trace,
        metrics: &on.metrics,
        cycles: on.cycles,
        content_hash: on.content_hash,
        num_sms: cfg.num_sms as u32,
        num_partitions: cfg.num_partitions as u32,
        stage_labels: stage_labels_for(&cfg),
        track_names: track_names_for(&cfg),
        profile: Some(report.clone()),
    };
    let chrome = bundle.chrome_json();
    gpu_trace::json::parse(&chrome).expect("trace.json parses");
    let desc_name = cfg.arch_desc().name;
    assert!(
        chrome.contains(&format!("{desc_name} SMs")),
        "SM process not named from ArchDesc"
    );
    assert!(
        chrome.contains(&format!("Host self-profile ({desc_name})")),
        "host profile process not named from ArchDesc"
    );
    assert!(
        chrome.contains("host us: run/tick_sms"),
        "missing host-clock per-stage sample track"
    );
    assert!(
        chrome.contains("host: cycles_ticked"),
        "missing host-clock counter track"
    );
}
